"""SIM-PERF — simulator cost characterization.

Not a paper figure: documents the cost of the substrate itself so users
can size experiments.  Timed paths: operation execution through the
cache manager, dynamic write-graph maintenance under adversarial copy
chains, full-cache checkpointing, long-log replay, and the B-tree.
"""

import random

import pytest

from repro.db import Database
from repro.btree import BTree
from repro.workloads import copy_chain_workload, mixed_logical_workload


class TestExecutionPath:
    def test_benchmark_mixed_execute(self, benchmark):
        db = Database(pages_per_partition=[512], policy="general")
        source = mixed_logical_workload(db.layout, seed=1, count=10**9)

        def run_batch():
            for _ in range(200):
                db.execute(next(source))
            db.checkpoint()

        benchmark(run_batch)

    def test_benchmark_copy_chain_graph_pressure(self, benchmark):
        """Copy chains build deep write-graph paths before collapsing."""
        db = Database(pages_per_partition=[256], policy="general")

        def run_chains():
            for op in copy_chain_workload(
                db.layout, seed=2, count=150, chain_length=8
            ):
                db.execute(op)
            db.checkpoint()

        benchmark(run_chains)

    def test_benchmark_replay_throughput(self, benchmark):
        db = Database(pages_per_partition=[256], policy="general")
        for op in mixed_logical_workload(db.layout, seed=3, count=3000):
            db.execute(op)
        db.crash()

        from repro.recovery.crash_recovery import run_crash_recovery

        def replay():
            return run_crash_recovery(
                db.stable, db.log, scan_start_lsn=1, apply_to_stable=False
            )

        outcome = benchmark(replay)
        assert outcome.replayed + outcome.skipped == 3000

    def test_benchmark_btree_inserts(self, benchmark):
        rng = random.Random(4)
        keys = list(range(2000))
        rng.shuffle(keys)

        def build():
            db = Database(pages_per_partition=[2048], policy="tree")
            tree = BTree(db, order=32, logging="tree").create()
            for key in keys:
                tree.insert(key, key)
            return tree

        tree = benchmark.pedantic(build, rounds=3, iterations=1)
        assert tree.check_invariants() == 2000

    def test_benchmark_backup_sweep_throughput(self, benchmark):
        db = Database(pages_per_partition=[4096], policy="general")

        def sweep():
            db.engine.completed.clear()
            db.start_backup(steps=8)
            return db.run_backup(pages_per_tick=256)

        backup = benchmark(sweep)
        assert backup.copied_count() == 4096


class TestGraphGrowth:
    def test_write_graph_stays_bounded_under_churn(self):
        """Installing keeps the live graph proportional to the dirty
        set, not to history — no leak across 5k operations."""
        db = Database(pages_per_partition=[128], policy="general")
        rng = random.Random(5)
        source = mixed_logical_workload(db.layout, seed=5, count=5000)
        peak = 0
        for i, op in enumerate(source):
            db.execute(op)
            db.install_some(2, rng)
            if i % 500 == 0:
                peak = max(peak, len(db.cm.graph.nodes()))
        assert peak < 200  # bounded by the dirty set, not 5000 ops
        db.checkpoint()
        assert len(db.cm.graph.nodes()) == 0
