"""A-LINK — the linked-flush strawman vs the asynchronous engine (§1.3).

The paper dismisses staging all copying through the cache manager with
synchronous "linked" flushes as "completely unrealistic".  This bench
quantifies why on the simulator: the strawman forces the entire dirty
set through the cache manager (stalling update processing), while the
asynchronous engine copies directly from S and pays only a few Iw/oF
log records.

Expected shape: linked forced-flushes ≫ engine Iw/oF records; both
recover.
"""

import pytest

from repro.harness.experiments import linked_flush_experiment
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def result():
    return linked_flush_experiment(pages=256, ops=400, seed=13)


class TestLinkedFlush:
    def test_print_table(self, result):
        print()
        print("A-LINK — linked-flush strawman vs asynchronous engine")
        print(
            format_table(
                ["metric", "linked flush", "engine"],
                [
                    (
                        "forced CM flushes / Iw/oF records",
                        result.linked_forced_flushes,
                        result.engine_iwof_records,
                    ),
                    (
                        "pages copied",
                        result.linked_pages_copied,
                        result.engine_pages_copied,
                    ),
                ],
            )
        )

    def test_engine_pays_far_less_cm_work(self, result):
        assert (
            result.engine_iwof_records < result.linked_forced_flushes / 2
        )

    def test_both_recover(self, result):
        assert result.both_recovered


class TestLinkedTiming:
    def test_benchmark(self, benchmark):
        outcome = benchmark.pedantic(
            lambda: linked_flush_experiment(pages=128, ops=200),
            rounds=3,
            iterations=1,
        )
        assert outcome.both_recovered
