"""FIG1 — the motivating correctness result.

The exact Figure 1 interleaving (a B-tree split straddling the backup
frontier, logged logically as MovRec/RmvRec):

* conventional fuzzy dump  → backup unrecoverable (moved records exist
  neither in B nor on the log);
* the paper's engine       → recoverable (Iw/oF put the value on the
  media log).
"""

import pytest

from repro.harness.experiments import fig1_scenario
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def outcomes():
    return {kind: fig1_scenario(kind) for kind in ("naive", "engine")}


class TestFigure1:
    def test_print_figure1(self, outcomes):
        print()
        print("FIG1 — B-tree split straddling the backup frontier")
        print(
            format_table(
                ["backup method", "media recovery", "diffs"],
                [
                    (
                        kind,
                        "OK" if result.recovered else "FAILED",
                        result.diffs,
                    )
                    for kind, result in outcomes.items()
                ],
            )
        )

    def test_naive_fails(self, outcomes):
        assert not outcomes["naive"].recovered
        assert outcomes["naive"].diffs >= 1

    def test_engine_succeeds(self, outcomes):
        assert outcomes["engine"].recovered
        assert outcomes["engine"].diffs == 0


class TestFig1Timing:
    def test_benchmark_scenario(self, benchmark):
        outcome = benchmark.pedantic(
            lambda: fig1_scenario("engine"), rounds=5, iterations=1
        )
        assert outcome.recovered
