"""T-SPEED — the "full speed" claim: what does an online backup cost?

Section 1.4 promises a backup "similar to current online backups" —
i.e. the update path keeps running at (nearly) full speed while the
sweep proceeds, paying only the occasional Iw/oF record.  This bench
runs an identical update workload three ways and compares the work the
update path had to do:

* **no backup** — the floor;
* **engine backup** — the paper's protocol (adds Iw/oF records only);
* **linked-flush backup** — the strawman (forces the dirty set through
  the cache manager).

Measured in simulator work units (log records and page writes issued by
the update path) and in wall-clock time via pytest-benchmark.
"""

import random

import pytest

from repro.db import Database
from repro.harness.reporting import format_table
from repro.workloads import mixed_logical_workload

OPS = 400
PAGES = 256


def run_workload(mode, seed=21):
    db = Database(pages_per_partition=[PAGES], policy="general")
    workload = mixed_logical_workload(db.layout, seed=seed, count=OPS)
    rng = random.Random(seed)
    if mode == "engine":
        db.start_backup(steps=8)
    executed = 0
    for op in workload:
        db.execute(op)
        executed += 1
        if executed % 3 == 0:
            db.install_some(1, rng)
        if mode == "engine" and db.backup_in_progress():
            db.backup_step(2)
    if mode == "engine":
        while db.backup_in_progress():
            db.backup_step(16)
    elif mode == "linked":
        db.linked.run()
    return {
        "mode": mode,
        "executed": executed,
        "log_records": db.log.end_lsn,
        "iwof": db.metrics.iwof_records,
        "page_writes": db.stable.page_writes,
        "forced_flushes": db.linked.forced_flushes,
        "records_per_op": db.log.end_lsn / executed,
    }


@pytest.fixture(scope="module")
def results():
    return {mode: run_workload(mode) for mode in ("none", "engine", "linked")}


class TestBackupOverhead:
    def test_print_table(self, results):
        print()
        print("T-SPEED — update-path cost of an online backup")
        print(
            format_table(
                ["mode", "ops", "log records", "iwof", "page writes",
                 "CM-forced flushes", "records/op"],
                [
                    (
                        r["mode"], r["executed"], r["log_records"],
                        r["iwof"], r["page_writes"], r["forced_flushes"],
                        r["records_per_op"],
                    )
                    for r in results.values()
                ],
            )
        )

    def test_engine_overhead_is_modest(self, results):
        """The engine's extra log records per op stay well under 2×."""
        floor = results["none"]["records_per_op"]
        engine = results["engine"]["records_per_op"]
        assert engine < floor * 2.0
        assert results["engine"]["iwof"] > 0  # it did pay something

    def test_linked_stalls_the_cache_manager(self, results):
        """The strawman forces dirty pages through the CM synchronously
        at backup time; the engine and the floor never do."""
        assert results["linked"]["forced_flushes"] > 0
        assert results["engine"]["forced_flushes"] == 0
        assert results["none"]["forced_flushes"] == 0

    def test_no_backup_pays_zero_iwof(self, results):
        assert results["none"]["iwof"] == 0


class TestWallClock:
    @pytest.mark.parametrize("mode", ["none", "engine"])
    def test_benchmark_update_path(self, benchmark, mode):
        result = benchmark.pedantic(
            lambda: run_workload(mode), rounds=3, iterations=1
        )
        assert result["executed"] == OPS
