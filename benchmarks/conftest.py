"""Benchmark-suite configuration.

Every benchmark prints the rows/series the corresponding paper figure
shows (via ``repro.harness.reporting``) and uses pytest-benchmark to time
the underlying measurement once — the printed tables are the scientific
output, the timings document simulator cost.
"""
