"""FIG5 (per-step) — measured Prob_m{log} at each backup step m.

Section 5 derives the per-step probabilities before averaging:

* general: ``Prob_m{log} = m/N``
* tree:    ``Prob_m{log} = (m/N)(1 − (m−1)/N) − 1/(2N²)``

This bench measures both at every step of an N=8 backup and overlays
the closed forms — a finer-grained validation than the Figure 5 average.
"""

import pytest

from repro.core import analysis
from repro.db import Database
from repro.harness.reporting import format_table
from repro.sim.runner import InterleavedRun
from repro.workloads import fresh_copy_workload

STEPS = 8


def measure_steps(kind, pages=2048, seeds=(1, 2, 3, 4)):
    decisions = {}
    iwof = {}
    for seed in seeds:
        policy = "tree" if kind == "tree" else "general"
        db = Database(pages_per_partition=[pages], policy=policy)
        workload = fresh_copy_workload(
            db.layout,
            seed=seed,
            tree_ops=(kind == "tree"),
            is_clean=lambda p: not db.cm.is_dirty(p),
        )
        run = InterleavedRun(
            db, workload, seed=seed, ops_per_tick=3, installs_per_tick=3,
            backup_pages_per_tick=8, backup_steps=STEPS,
        )
        result = run.run(max_ticks=20_000)
        assert result.backup is not None
        for step, count in db.metrics.decisions_by_step.items():
            decisions[step] = decisions.get(step, 0) + count
            iwof[step] = iwof.get(step, 0) + db.metrics.iwof_by_step.get(
                step, 0
            )
    return {
        step: iwof.get(step, 0) / total
        for step, total in sorted(decisions.items())
    }


@pytest.fixture(scope="module")
def per_step():
    return {
        "general": measure_steps("general"),
        "tree": measure_steps("tree"),
    }


class TestPerStepCurves:
    def test_print_per_step_table(self, per_step):
        print()
        print(f"FIG5 (per step) — measured Prob_m(log) at N={STEPS}")
        rows = []
        for m in range(1, STEPS + 1):
            rows.append(
                (
                    m,
                    per_step["general"].get(m, float("nan")),
                    analysis.general_step_probability(m, STEPS),
                    per_step["tree"].get(m, float("nan")),
                    analysis.tree_step_probability(m, STEPS),
                )
            )
        print(
            format_table(
                ["step m", "general meas", "general calc",
                 "tree meas", "tree calc"],
                rows,
            )
        )

    def test_general_rises_linearly_with_step(self, per_step):
        measured = per_step["general"]
        for m in range(1, STEPS + 1):
            assert measured[m] == pytest.approx(
                analysis.general_step_probability(m, STEPS), abs=0.12
            ), f"step {m}"

    def test_tree_is_unimodal_and_matches(self, per_step):
        measured = per_step["tree"]
        for m in range(1, STEPS + 1):
            assert measured[m] == pytest.approx(
                analysis.tree_step_probability(m, STEPS), abs=0.12
            ), f"step {m}"
        # The tree curve peaks mid-backup and falls at both ends.
        values = [measured[m] for m in range(1, STEPS + 1)]
        peak = values.index(max(values))
        assert 1 <= peak <= STEPS - 2
        assert values[0] < max(values)
        assert values[-1] < max(values)

    def test_benchmark_one_seed(self, benchmark):
        result = benchmark.pedantic(
            lambda: measure_steps("general", pages=512, seeds=(1,)),
            rounds=2,
            iterations=1,
        )
        assert result
