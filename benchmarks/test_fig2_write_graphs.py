"""FIG2 — write graphs W and rW when an object becomes unexposed.

The paper's Figure 2: operation A writes {X, Y}; a blind write C of X
makes X unexposed.  W keeps one node requiring the atomic flush of
{X, Y}; rW splits into separate nodes and removes X from vars(1).
"""

import pytest

from repro.ids import PageId
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.recovery.refined_write_graph import build_refined_graph
from repro.recovery.write_graph import build_intersecting_writes_graph
from repro.harness.reporting import format_table
from repro.wal.log_manager import LogManager

X, Y, SRC = PageId(0, 0), PageId(0, 1), PageId(0, 5)


@pytest.fixture(scope="module")
def figure2_log():
    log = LogManager()
    return [
        log.append(GeneralLogicalOp([SRC], [X, Y], "copy_value")),  # A
        log.append(PhysicalWrite(X, 42)),                           # C
    ]


class TestFigure2:
    def test_print_figure2(self, figure2_log):
        w_nodes = build_intersecting_writes_graph(figure2_log)
        rw = build_refined_graph(figure2_log)
        print()
        print("FIG2 — W vs rW after a blind write of X")
        rows = [
            (
                "W",
                len(w_nodes),
                max(len(n.vars) for n in w_nodes),
                "; ".join(sorted(str(sorted(map(str, n.vars)))
                                  for n in w_nodes)),
            ),
            (
                "rW",
                len(rw),
                max(len(n.vars) for n in rw.nodes()),
                "; ".join(sorted(str(sorted(map(str, n.vars)))
                                  for n in rw.nodes())),
            ),
        ]
        print(
            format_table(
                ["graph", "nodes", "max |vars|", "vars sets"], rows
            )
        )

    def test_w_forces_atomic_multi_page_flush(self, figure2_log):
        nodes = build_intersecting_writes_graph(figure2_log)
        assert len(nodes) == 1
        assert nodes[0].vars == {X, Y}

    def test_rw_removes_unexposed_object(self, figure2_log):
        graph = build_refined_graph(figure2_log)
        node_a = next(n for n in graph.nodes() if n.op_lsns == [1])
        node_c = next(n for n in graph.nodes() if n.op_lsns == [2])
        assert node_a.vars == {Y}
        assert node_c.vars == {X}


class TestFig2Timing:
    def test_benchmark_graph_construction(self, benchmark):
        import random

        from repro.workloads import mixed_logical_workload
        from repro.storage.layout import Layout

        layout = Layout([64])
        log = LogManager()
        records = [
            log.append(op)
            for op in mixed_logical_workload(layout, seed=1, count=300)
        ]

        def build():
            return build_refined_graph(records)

        graph = benchmark(build)
        assert len(graph) > 0
