#!/usr/bin/env python
"""Standalone entry point for the SIM-PERF baseline driver.

Equivalent to ``python -m repro bench``; exists so the benchmark suite
can be driven without installing the package::

    python benchmarks/run_bench.py --rounds 40 --label after
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "src"),
)

from repro.harness.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
