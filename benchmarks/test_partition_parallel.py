"""A-PAR — partitioned parallel backup (§3.4).

"It is possible to divide the database into disjoint partitions, and to
independently track backup progress in each partition.  This permits us
to back up partitions in parallel."

The bench compares one 512-page partition against 4×128 swept in
parallel (round-robin), under the same partition-local workload:

* same number of pages copied; per-partition latches instead of one;
* the extra-logging fraction stays in the same band (the analysis is
  per-partition);
* recovery works in both configurations.
"""

import random

import pytest

from repro.db import Database
from repro.harness.reporting import format_table
from repro.ids import PageId
from repro.ops.physiological import PhysiologicalWrite


def run_config(pages_per_partition, seed=17, steps=4):
    db = Database(pages_per_partition=pages_per_partition, policy="general")
    rng = random.Random(seed)
    layout = db.layout
    db.start_backup(steps=steps)
    ticks = 0
    while db.backup_in_progress():
        db.backup_step(8)
        ticks += 1
        for _ in range(3):
            partition = rng.randrange(layout.num_partitions)
            slot = rng.randrange(layout.partition_size(partition))
            db.execute(
                PhysiologicalWrite(
                    PageId(partition, slot), "stamp",
                    (rng.randrange(1 << 16),),
                )
            )
        db.install_some(3, rng)
    # Snapshot latch counters before the media failure resets volatiles.
    exclusive_latches = sum(
        latch.exclusive_acquisitions for latch in db.cm.latches.values()
    )
    db.media_failure()
    ok = db.media_recover().ok
    return {
        "partitions": len(pages_per_partition),
        "ticks": ticks,
        "pages_copied": db.metrics.backup_pages_copied,
        "iwof_fraction": db.metrics.extra_logging_fraction,
        "exclusive_latches": exclusive_latches,
        "recovered": ok,
    }


@pytest.fixture(scope="module")
def configs():
    return {
        "1 x 512": run_config([512]),
        "4 x 128": run_config([128, 128, 128, 128]),
    }


class TestParallelPartitions:
    def test_print_table(self, configs):
        print()
        print("A-PAR — single partition vs 4 partitions in parallel")
        print(
            format_table(
                ["layout", "ticks", "pages", "iwof fraction",
                 "latch x-acquisitions", "recovered"],
                [
                    (
                        name, c["ticks"], c["pages_copied"],
                        c["iwof_fraction"], c["exclusive_latches"],
                        c["recovered"],
                    )
                    for name, c in configs.items()
                ],
            )
        )

    def test_both_copy_everything_and_recover(self, configs):
        for config in configs.values():
            assert config["pages_copied"] == 512
            assert config["recovered"]

    def test_parallel_uses_per_partition_latches(self, configs):
        # Each partition takes its own begin/advance/finish latch cycle.
        assert (
            configs["4 x 128"]["exclusive_latches"]
            > configs["1 x 512"]["exclusive_latches"]
        )

    def test_extra_logging_band_comparable(self, configs):
        single = configs["1 x 512"]["iwof_fraction"]
        parallel = configs["4 x 128"]["iwof_fraction"]
        assert abs(single - parallel) < 0.2

    def test_benchmark_parallel_sweep(self, benchmark):
        result = benchmark.pedantic(
            lambda: run_config([64, 64, 64, 64]), rounds=3, iterations=1
        )
        assert result["recovered"]
