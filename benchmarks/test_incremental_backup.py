"""E-INC — incremental backup (section 6.1).

An incremental backup copies only the pages updated since the base
backup, with the same progress tracking and Iw/oF machinery; the chain
[full, incremental] plus the media log restores the current state.

Expected shape: incremental volume ≈ updated fraction of the database;
recoverability unchanged.
"""

import pytest

from repro.harness.experiments import incremental_experiment
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def results():
    return {
        fraction: incremental_experiment(
            pages=256, update_fraction=fraction, seed=9
        )
        for fraction in (0.05, 0.2, 0.5)
    }


class TestIncremental:
    def test_print_table(self, results):
        print()
        print("E-INC — incremental backup volume vs update fraction")
        print(
            format_table(
                [
                    "updated frac",
                    "full pages",
                    "incr pages",
                    "incr iwof",
                    "recovered",
                ],
                [
                    (
                        fraction,
                        r.full_pages,
                        r.incremental_pages,
                        r.iwof_during_incremental,
                        r.recovered,
                    )
                    for fraction, r in results.items()
                ],
            )
        )

    def test_volume_tracks_update_fraction(self, results):
        for fraction, r in results.items():
            expected = int(r.full_pages * fraction)
            # Concurrent updates during the sweep add a few pages.
            assert expected <= r.incremental_pages <= expected + 40

    def test_all_chains_recover(self, results):
        assert all(r.recovered for r in results.values())

    def test_incremental_far_smaller_than_full(self, results):
        r = results[0.05]
        assert r.incremental_pages < r.full_pages / 4


class TestIncrementalTiming:
    def test_benchmark_chain_recovery(self, benchmark):
        result = benchmark.pedantic(
            lambda: incremental_experiment(pages=128, update_fraction=0.2),
            rounds=3,
            iterations=1,
        )
        assert result.recovered
