"""E-APP — application-read operations and backup order (section 6.2).

With only application-read operations, applications are the only
write-graph predecessors.  Placing application state pages *last* in the
backup order makes the † property always hold: zero Iw/oF logging.
Placing them first destroys the property and logging returns.
"""

import pytest

from repro.harness.experiments import app_read_experiment
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def results():
    return {
        "apps last": app_read_experiment(at_end=True),
        "apps first": app_read_experiment(at_end=False),
    }


class TestAppReadBackup:
    def test_print_table(self, results):
        print()
        print("E-APP — Iw/oF during backup vs application placement (§6.2)")
        print(
            format_table(
                ["placement", "iwof", "flush decisions", "recovered"],
                [
                    (name, r.iwof, r.decisions, r.recovered)
                    for name, r in results.items()
                ],
            )
        )

    def test_apps_last_incur_zero_iwof(self, results):
        assert results["apps last"].iwof == 0
        assert results["apps last"].decisions > 50

    def test_apps_first_incur_logging(self, results):
        assert results["apps first"].iwof > 0

    def test_both_placements_recover(self, results):
        assert all(r.recovered for r in results.values())


class TestAppTiming:
    def test_benchmark_experiment(self, benchmark):
        result = benchmark.pedantic(
            lambda: app_read_experiment(at_end=True, pages=64),
            rounds=3,
            iterations=1,
        )
        assert result.recovered
