"""FIG4 — the regions of (#X, #S(X)) space that require Iw/oF.

Sweeps the full (#X, #S(X)) grid at a fixed mid-backup frontier and
compares the TreeOpsPolicy decision against the paper's shaded region:
logging is needed unless Pend(X), Done(S(X)), or both are in doubt and
the † property holds (#S(X) < #X).
"""

import pytest

from repro.harness.experiments import fig4_grid
from repro.harness.reporting import format_table

SIZE, DONE, PENDING = 24, 8, 16


@pytest.fixture(scope="module")
def grids():
    return fig4_grid(size=SIZE, done=DONE, pending=PENDING)


class TestFigure4:
    def test_print_region_map(self, grids):
        print()
        print(
            f"FIG4 — Iw/oF region over (#X, #S(X)); D={DONE}, P={PENDING} "
            "('#' = extra logging needed)"
        )
        header = "      #S(X): " + "".join(
            f"{s:>2}" for s in range(0, SIZE, 4)
        )
        print(header)
        for x_pos in range(SIZE):
            row = "".join(
                "#" if grids["policy"][x_pos][s] else "."
                for s in range(SIZE)
            )
            print(f"  #X={x_pos:>3}  {row}")

    def test_policy_matches_analytic_region_exactly(self, grids):
        mismatches = [
            (x, s)
            for x in range(SIZE)
            for s in range(SIZE)
            if grids["policy"][x][s] != grids["analytic"][x][s]
        ]
        assert mismatches == []

    def test_pend_column_never_logs(self, grids):
        for x_pos in range(PENDING, SIZE):
            assert not any(grids["policy"][x_pos]), f"#X={x_pos}"

    def test_done_successors_never_log(self, grids):
        for x_pos in range(SIZE):
            for succ in range(DONE):
                assert not grids["policy"][x_pos][succ]

    def test_doubt_doubt_split_by_dagger(self, grids):
        """Within Doubt×Doubt the diagonal splits log/no-log (≈half)."""
        cells = [
            grids["policy"][x][s]
            for x in range(DONE, PENDING)
            for s in range(DONE, PENDING)
            if x != s
        ]
        fraction = sum(cells) / len(cells)
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_logging_fraction_of_whole_grid(self, grids):
        """At D=size/3, P=2size/3 (step 2 of 3), the shaded fraction
        should match Prob_m{log} for tree ops at m=2, N=3."""
        from repro.core import analysis

        cells = [
            grids["policy"][x][s]
            for x in range(SIZE)
            for s in range(SIZE)
            if x != s
        ]
        measured = sum(cells) / len(cells)
        analytic = analysis.tree_step_probability(2, 3)
        assert measured == pytest.approx(analytic, abs=0.05)


class TestFig4Timing:
    def test_benchmark_grid(self, benchmark):
        grids = benchmark(lambda: fig4_grid(size=48, done=16, pending=32))
        assert len(grids["policy"]) == 48
