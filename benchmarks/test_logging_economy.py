"""T-ECON — the logging economy of logical operations (section 1.1/4.1).

Inserts the same key sequence into two B-trees, one logging splits as the
MovRec/RmvRec tree-operation pair, one logging the new node's full image
physically, and compares the bytes attributable to splits.

Expected shape: tree-operation split records are O(identifiers) while
page-oriented split records are O(page) — an order of magnitude or more
at realistic node sizes, growing with the order (page capacity).
"""

import pytest

from repro.harness.experiments import logging_economy
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def economy():
    return {
        order: logging_economy(keys=900, order=order, seed=11)
        for order in (16, 64, 128)
    }


class TestLoggingEconomy:
    def test_print_table(self, economy):
        print()
        print("T-ECON — bytes logged for B-tree splits, tree vs page-oriented")
        rows = []
        for order, pair in economy.items():
            tree_row = next(r for r in pair if r.logging == "tree")
            page_row = next(r for r in pair if r.logging == "page")
            rows.append(
                (
                    order,
                    tree_row.split_bytes,
                    page_row.split_bytes,
                    page_row.split_bytes / max(tree_row.split_bytes, 1),
                    tree_row.total_bytes,
                    page_row.total_bytes,
                )
            )
        print(
            format_table(
                [
                    "order",
                    "tree split B",
                    "page split B",
                    "split ratio",
                    "tree total B",
                    "page total B",
                ],
                rows,
            )
        )

    def test_tree_split_logging_is_much_smaller(self, economy):
        for order, pair in economy.items():
            tree_row = next(r for r in pair if r.logging == "tree")
            page_row = next(r for r in pair if r.logging == "page")
            ratio = page_row.split_bytes / max(tree_row.split_bytes, 1)
            assert ratio > 4, f"order={order}: ratio {ratio:.1f}"

    def test_ratio_grows_with_page_capacity(self, economy):
        ratios = []
        for order in (16, 64, 128):
            pair = economy[order]
            tree_row = next(r for r in pair if r.logging == "tree")
            page_row = next(r for r in pair if r.logging == "page")
            ratios.append(page_row.split_bytes / max(tree_row.split_bytes, 1))
        assert ratios == sorted(ratios)

    def test_total_log_volume_smaller_with_tree_ops(self, economy):
        for pair in economy.values():
            tree_row = next(r for r in pair if r.logging == "tree")
            page_row = next(r for r in pair if r.logging == "page")
            assert tree_row.total_bytes < page_row.total_bytes

    def test_same_number_of_splits_both_modes(self, economy):
        for pair in economy.values():
            tree_row, page_row = pair
            assert tree_row.splits == page_row.splits > 0


class TestEconomyTiming:
    def test_benchmark_insert_workload(self, benchmark):
        rows = benchmark.pedantic(
            lambda: logging_economy(keys=300, order=32),
            rounds=3,
            iterations=1,
        )
        assert len(rows) == 2
