"""FIG5 + A-STEP — extra-logging probability vs number of backup steps.

Regenerates Figure 5: the frequency with which an object flush requires
Iw/oF logging, for general and tree operations, as a function of the
number of backup steps N — measured by simulation and compared with the
paper's closed forms (1/2)(1+1/N) and 1/6 + 1/(2N) − 1/(6N²).

Expected shape (§5.3):
* N=1 general: every flush logs (measured 1.0);
* general → ~0.5 asymptote, tree → ~1/6;
* tree is below general everywhere (a half-to-two-thirds reduction);
* ~90 % of each curve's total reduction is reached by N=8 (A-STEP).
"""

import pytest

from repro.core import analysis
from repro.harness.experiments import fig5_measure, fig5_sweep
from repro.harness.reporting import format_table

STEP_COUNTS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def sweep():
    return fig5_sweep(step_counts=STEP_COUNTS, seeds=(1, 2, 3), pages=1024)


class TestFigure5:
    def test_print_figure5(self, sweep):
        rows = []
        by_kind = {"general": {}, "tree": {}}
        for point in sweep:
            by_kind[point.kind][point.steps] = point
        for steps in STEP_COUNTS:
            general = by_kind["general"][steps]
            tree = by_kind["tree"][steps]
            rows.append(
                (
                    steps,
                    general.measured,
                    general.analytic,
                    tree.measured,
                    tree.analytic,
                    general.samples + tree.samples,
                )
            )
        print()
        print("FIG5 — Prob{extra logging} per object flush vs backup steps")
        print(
            format_table(
                [
                    "steps N",
                    "general meas",
                    "general analytic",
                    "tree meas",
                    "tree analytic",
                    "samples",
                ],
                rows,
            )
        )

    def test_general_matches_analytic_curve(self, sweep):
        for point in sweep:
            if point.kind == "general":
                assert point.measured == pytest.approx(
                    point.analytic, abs=0.06
                ), f"N={point.steps}"

    def test_tree_matches_analytic_curve(self, sweep):
        for point in sweep:
            if point.kind == "tree":
                assert point.measured == pytest.approx(
                    point.analytic, abs=0.06
                ), f"N={point.steps}"

    def test_n1_logs_every_flush_for_general_ops(self, sweep):
        point = next(
            p for p in sweep if p.kind == "general" and p.steps == 1
        )
        assert point.measured == pytest.approx(1.0)

    def test_tree_below_general_everywhere(self, sweep):
        general = {p.steps: p.measured for p in sweep if p.kind == "general"}
        tree = {p.steps: p.measured for p in sweep if p.kind == "tree"}
        for steps in STEP_COUNTS:
            assert tree[steps] < general[steps]

    def test_reduction_mostly_achieved_by_eight_steps(self, sweep):
        """A-STEP: the §5.3 'little incentive beyond eight steps' claim,
        on the measured series."""
        print()
        rows = [
            (
                n,
                analysis.reduction_fraction(n, "general"),
                analysis.reduction_fraction(n, "tree"),
            )
            for n in STEP_COUNTS
        ]
        print("A-STEP — fraction of total logging reduction achieved by N")
        print(format_table(["steps N", "general", "tree"], rows))
        for kind in ("general", "tree"):
            measured = {
                p.steps: p.measured for p in sweep if p.kind == kind
            }
            total_reduction = measured[1] - measured[32]
            by_eight = measured[1] - measured[8]
            assert by_eight / total_reduction > 0.75


class TestFig5Timing:
    def test_benchmark_single_measurement(self, benchmark):
        point = benchmark.pedantic(
            lambda: fig5_measure("tree", 8, pages=256, seed=1),
            rounds=3,
            iterations=1,
        )
        assert point.samples > 0
