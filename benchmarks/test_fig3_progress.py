"""FIG3 — tracking backup progress with D and P.

Regenerates the Figure 3 walk: at each step the previously in-doubt part
of S becomes Done, and the Pending part is split into a new Doubt region
and the remaining Pend — verified against a live backup run.
"""

import pytest

from repro.core.progress import BackupRegion
from repro.db import Database
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def walk():
    db = Database(pages_per_partition=[128], policy="general")
    db.start_backup(steps=4)
    size = db.layout.partition_size(0)
    progress = db.cm.progress[0]
    snapshots = []

    def snap(label):
        counts = {region: 0 for region in BackupRegion}
        for pos in range(size):
            counts[progress.classify(pos)] += 1
        snapshots.append(
            (
                label,
                progress.done,
                progress.pending,
                counts[BackupRegion.DONE],
                counts[BackupRegion.DOUBT],
                counts[BackupRegion.PEND],
            )
        )

    snap("step 1 begins")
    while db.backup_in_progress():
        before = progress.steps_taken
        db.backup_step(8)
        if db.backup_in_progress() and progress.steps_taken != before:
            snap(f"step {progress.steps_taken} begins")
    snap("complete (reset)")
    return snapshots, size


class TestFigure3:
    def test_print_progress_walk(self, walk):
        snapshots, _ = walk
        print()
        print("FIG3 — D/P progress and Done/Doubt/Pend page counts")
        print(
            format_table(
                ["moment", "D", "P", "done", "doubt", "pend"], snapshots
            )
        )

    def test_counts_always_partition_the_database(self, walk):
        snapshots, size = walk
        for _, _, _, done, doubt, pend in snapshots:
            assert done + doubt + pend == size

    def test_doubt_region_is_one_step_wide(self, walk):
        snapshots, size = walk
        for label, _, _, _, doubt, _ in snapshots[:-1]:
            assert doubt == size // 4, label

    def test_reset_after_completion(self, walk):
        snapshots, size = walk
        label, done_bound, pend_bound, done, doubt, pend = snapshots[-1]
        assert (done_bound, pend_bound) == (0, 0)
        assert pend == size  # everything pending for the next backup


class TestFig3Timing:
    def test_benchmark_full_sweep(self, benchmark):
        def sweep():
            db = Database(pages_per_partition=[512], policy="general")
            db.start_backup(steps=8)
            return db.run_backup(pages_per_tick=64)

        backup = benchmark(sweep)
        assert backup.is_complete
