"""A-HOT — amortizing Iw/oF over hot pages (§5.3).

Two of the paper's §5.3 observations, quantified:

1. **Amortization** — "multiple updates can accumulate in each object
   before we log or flush it": under a hotspot workload, installing
   less often amortizes both flushes and Iw/oF records over more
   updates, so the extra-logging cost *per executed operation* falls
   even though the per-flush probability (Figure 5) is unchanged.

2. **Logging instead of flushing for S itself** — a hot dirty page can
   be installed by an identity write without being flushed
   (``identity_install``), advancing the log truncation point while the
   page keeps absorbing updates in the cache.
"""

import random

import pytest

from repro.db import Database
from repro.harness.reporting import format_table
from repro.workloads.skewed import hotspot_workload


def run_with_install_rate(installs_per_tick, ops=600, seed=3):
    db = Database(pages_per_partition=[256], policy="general")
    workload = hotspot_workload(db.layout, seed=seed, count=None)
    rng = random.Random(seed)
    db.start_backup(steps=8)
    executed = 0
    while db.backup_in_progress():
        db.backup_step(2)
        for _ in range(3):
            db.execute(next(workload))
            executed += 1
        db.install_some(installs_per_tick, rng)
    db.media_failure()
    assert db.media_recover().ok
    return {
        "installs_per_tick": installs_per_tick,
        "executed": executed,
        "iwof": db.metrics.iwof_records,
        "flushes": db.metrics.page_flushes,
        "iwof_per_op": db.metrics.iwof_records / executed,
        "per_flush": db.metrics.extra_logging_fraction,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_with_install_rate(rate) for rate in (1, 2, 4, 8)]


class TestAmortization:
    def test_print_table(self, sweep):
        print()
        print("A-HOT — Iw/oF per executed op vs cache-manager install rate")
        print(
            format_table(
                [
                    "installs/tick",
                    "ops",
                    "iwof records",
                    "iwof per op",
                    "per-flush fraction",
                ],
                [
                    (
                        row["installs_per_tick"],
                        row["executed"],
                        row["iwof"],
                        row["iwof_per_op"],
                        row["per_flush"],
                    )
                    for row in sweep
                ],
            )
        )

    def test_lazier_installs_log_less_per_op(self, sweep):
        per_op = [row["iwof_per_op"] for row in sweep]
        # installs/tick 1 (laziest) should beat 8 (most eager) clearly.
        assert per_op[0] < per_op[-1] * 0.8

    def test_per_flush_probability_is_rate_independent(self, sweep):
        """Figure 5's quantity is per FLUSH; amortization does not change
        it much — the saving is in flushing less often."""
        fractions = [row["per_flush"] for row in sweep]
        assert max(fractions) - min(fractions) < 0.25

    def test_all_rates_recover(self, sweep):
        assert all(row["executed"] > 0 for row in sweep)


class TestIdentityInstallForHotPages:
    def test_hot_page_served_from_log_not_flushes(self):
        """identity_install keeps a hot page cache-resident while still
        advancing the truncation point (§5.3, second bullet)."""
        from repro.ids import PageId
        from repro.ops.physiological import PhysiologicalWrite

        db = Database(pages_per_partition=[64], policy="general")
        hot = PageId(0, 0)
        truncation_points = []
        for round_number in range(5):
            for i in range(10):
                db.execute(
                    PhysiologicalWrite(hot, "stamp", (round_number * 10 + i,))
                )
            db.cm.identity_install(hot)
            truncation_points.append(
                db.cm.rec.truncation_point(db.log.end_lsn)
            )
        # Ten updates amortized per identity write; truncation advances
        # every round without a single flush of the hot page.
        assert truncation_points == sorted(truncation_points)
        assert db.metrics.page_flushes == 0
        assert db.metrics.identity_installs == 5
        db.crash()
        assert db.recover().ok

    def test_benchmark_identity_install(self, benchmark):
        from repro.ids import PageId
        from repro.ops.physiological import PhysiologicalWrite

        db = Database(pages_per_partition=[64], policy="general")
        hot = PageId(0, 0)

        def one_round():
            for i in range(10):
                db.execute(PhysiologicalWrite(hot, "stamp", (i,)))
            db.cm.identity_install(hot)

        benchmark.pedantic(one_round, rounds=10, iterations=1)
