#!/usr/bin/env python3
"""Reproduce every figure of the paper in one run.

Prints, in order: FIG1 (naive vs engine), FIG2 (W vs rW), FIG3 (D/P
progress walk), FIG4 (Iw/oF regions), FIG5 (extra logging vs steps,
measured vs analytic), plus the T-ECON / E-APP / E-INC / A-LINK tables.

Run:  python examples/reproduce_figures.py          (full, ~1 min)
      python examples/reproduce_figures.py --quick  (smaller configs)
"""

import sys

from repro import BackupConfig
from repro.core import analysis
from repro.core.progress import BackupRegion
from repro.db import Database
from repro.harness import experiments as exp
from repro.harness.reporting import format_table

QUICK = "--quick" in sys.argv


def fig1():
    print("\n## FIG1 — naive fuzzy dump vs the engine (B-tree split)")
    rows = []
    for kind in ("naive", "engine"):
        outcome = exp.fig1_scenario(kind)
        rows.append((kind, "OK" if outcome.recovered else "FAILED",
                     outcome.diffs))
    print(format_table(["method", "media recovery", "wrong pages"], rows))


def fig2():
    print("\n## FIG2 — W vs rW when a blind write makes X unexposed")
    from repro.ids import PageId
    from repro.ops.logical import GeneralLogicalOp
    from repro.ops.physical import PhysicalWrite
    from repro.recovery.refined_write_graph import build_refined_graph
    from repro.recovery.write_graph import build_intersecting_writes_graph
    from repro.wal.log_manager import LogManager

    X, Y, SRC = PageId(0, 0), PageId(0, 1), PageId(0, 5)
    log = LogManager()
    records = [
        log.append(GeneralLogicalOp([SRC], [X, Y], "copy_value")),
        log.append(PhysicalWrite(X, 42)),
    ]
    w = build_intersecting_writes_graph(records)
    rw = build_refined_graph(records)
    print(format_table(
        ["graph", "nodes", "max atomic flush set"],
        [("W", len(w), max(len(n.vars) for n in w)),
         ("rW", len(rw), max(len(n.vars) for n in rw.nodes()))],
    ))


def fig3():
    print("\n## FIG3 — backup progress (D, P) and region sizes")
    db = Database(pages_per_partition=[128], policy="general")
    db.start_backup(BackupConfig(steps=4))
    progress = db.cm.progress[0]
    rows = []

    def snap(label):
        counts = {region: 0 for region in BackupRegion}
        for pos in range(128):
            counts[progress.classify(pos)] += 1
        rows.append((label, progress.done, progress.pending,
                     counts[BackupRegion.DONE], counts[BackupRegion.DOUBT],
                     counts[BackupRegion.PEND]))

    snap("step 1")
    while db.backup_in_progress():
        before = progress.steps_taken
        db.backup_step(8)
        if db.backup_in_progress() and progress.steps_taken != before:
            snap(f"step {progress.steps_taken}")
    snap("complete")
    print(format_table(["moment", "D", "P", "done", "doubt", "pend"], rows))


def fig4():
    print("\n## FIG4 — Iw/oF regions over (#X, #S(X)) ('#' = log)")
    size = 16 if QUICK else 24
    grids = exp.fig4_grid(size=size, done=size // 3, pending=2 * size // 3)
    for x_pos in range(size):
        row = "".join(
            "#" if grids["policy"][x_pos][s] else "." for s in range(size)
        )
        print(f"  #X={x_pos:>3}  {row}")


def fig5():
    print("\n## FIG5 — extra-logging probability vs backup steps")
    steps = (1, 2, 4, 8) if QUICK else (1, 2, 4, 8, 16, 32)
    seeds = (1,) if QUICK else (1, 2, 3)
    pages = 512 if QUICK else 1024
    points = exp.fig5_sweep(step_counts=steps, seeds=seeds, pages=pages)
    by = {(p.kind, p.steps): p for p in points}
    rows = [
        (
            n,
            by[("general", n)].measured,
            analysis.general_extra_logging(n),
            by[("tree", n)].measured,
            analysis.tree_extra_logging(n),
        )
        for n in steps
    ]
    print(format_table(
        ["N", "general meas", "general calc", "tree meas", "tree calc"],
        rows,
    ))


def tables():
    print("\n## T-ECON — split logging bytes (tree vs page-oriented)")
    rows = []
    for row in exp.logging_economy(keys=600 if QUICK else 1200, order=64):
        rows.append((row.logging, row.splits, row.split_bytes,
                     row.total_bytes))
    print(format_table(
        ["logging", "splits", "split bytes", "total bytes"], rows))

    print("\n## E-APP — application placement (§6.2)")
    rows = []
    for at_end in (True, False):
        result = exp.app_read_experiment(at_end)
        rows.append(("last" if at_end else "first", result.iwof,
                     result.decisions, result.recovered))
    print(format_table(
        ["apps placed", "iwof", "decisions", "recovered"], rows))

    print("\n## E-INC — incremental backup (§6.1)")
    result = exp.incremental_experiment()
    print(format_table(
        ["full pages", "incremental pages", "recovered"],
        [(result.full_pages, result.incremental_pages, result.recovered)],
    ))

    print("\n## A-LINK — linked-flush strawman cost")
    result = exp.linked_flush_experiment()
    print(format_table(
        ["metric", "linked", "engine"],
        [("CM forced flushes / Iw/oF", result.linked_forced_flushes,
          result.engine_iwof_records)],
    ))


def main():
    fig1()
    fig2()
    fig3()
    fig4()
    fig5()
    tables()
    print("\nAll figures reproduced.")


if __name__ == "__main__":
    main()
