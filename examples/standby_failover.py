#!/usr/bin/env python3
"""A warm standby fed by log shipping, seeded from an online backup.

Disaster-recovery topology: the primary takes a high-speed online
backup (never stalling), a standby seeds itself from that backup plus
the media log, then tracks the primary by applying shipped log records.
When the primary site is lost, the standby promotes and serves.

The subtle dependency on the paper: the *seed* is a fuzzy backup taken
while logical operations ran — only the engine's Iw/oF discipline makes
that seed correct (a naive-dump seed is silently wrong; see
tests/integration/test_standby.py).

Run:  python examples/standby_failover.py
"""

import random

from repro import BackupConfig
from repro.core.standby import StandbyReplica
from repro.db import Database
from repro.workloads import mixed_logical_workload


def main():
    primary = Database(pages_per_partition=[128], policy="general")
    rng = random.Random(11)
    workload = mixed_logical_workload(primary.layout, seed=11, count=100_000)

    print("=== primary serving; online backup for the standby seed ===")
    for _ in range(60):
        primary.execute(next(workload))
        primary.install_some(1, rng)
    primary.start_backup(BackupConfig(steps=8))
    while primary.backup_in_progress():
        primary.backup_step(8)
        primary.execute(next(workload))
        primary.install_some(1, rng)
    backup = primary.latest_backup()
    print(f"  seed backup: {backup.copied_count()} pages, "
          f"scan start LSN {backup.media_scan_start_lsn}")

    print("\n=== standby seeds and tracks ===")
    standby = StandbyReplica.seed_from_backup(
        backup, primary.log, primary.layout
    )
    print(f"  seeded: {standby}")
    for round_number in range(3):
        for _ in range(25):
            primary.execute(next(workload))
            primary.install_some(1, rng)
        print(f"  round {round_number}: lag={standby.lag()} LSNs", end="")
        standby.catch_up()
        print(f" -> applied, lag={standby.lag()}")
    assert standby.is_consistent_with(primary.oracle_state())
    print("  standby state verified against the primary ✓")

    print("\n=== disaster: primary site lost; standby promotes ===")
    final_primary_state = primary.oracle_state()
    promoted = standby.promote()
    matches = all(
        promoted.stable.read_page(page).value == value
        for page, value in final_primary_state.items()
    )
    print(f"  promoted database matches the lost primary: {matches}")

    print("\n=== the new primary is a full citizen ===")
    new_workload = mixed_logical_workload(
        promoted.layout, seed=99, count=100_000
    )
    for _ in range(40):
        promoted.execute(next(new_workload))
        promoted.install_some(1, rng)
    promoted.start_backup(BackupConfig(steps=8))
    promoted.run_backup(BackupConfig(pages_per_tick=16))
    promoted.media_failure()
    outcome = promoted.media_recover()
    print(f"  new backup + media recovery on the new primary: "
          f"{outcome.summary()}")
    assert outcome.ok


if __name__ == "__main__":
    main()
