#!/usr/bin/env python3
"""Application recovery and backup order (sections 1.1 and 6.2).

Applications whose volatile state is itself recoverable log three cheap
logical operations: Ex(A), R(X, A), W_L(A, X) — none of which puts data
values on the log.  Section 6.2 observes that if application state pages
are the *last* objects in the backup order, the † property always holds
and online backup incurs zero Iw/oF logging for application reads.

This example runs the same workload with applications placed last vs
first in the backup order and shows the difference, then recovers the
application states after a media failure.

Run:  python examples/application_recovery.py
"""

import random

from repro import BackupConfig
from repro import Database, PhysiologicalWrite
from repro.appfs import ApplicationManager
from repro.ids import PageId


def run(at_end, seed=5):
    db = Database(pages_per_partition=[128], policy="tree")
    manager = ApplicationManager(db, app_slots=4, at_end=at_end)
    apps = []
    for i in range(4):
        name = f"worker-{i}"
        manager.launch(name, initial_state=("boot", name))
        apps.append(name)

    rng = random.Random(seed)
    data_pages = [PageId(0, slot) for slot in range(10, 60)]
    for page in data_pages:
        db.execute(PhysiologicalWrite(page, "increment", (1,)))

    db.start_backup(BackupConfig(steps=8))
    while db.backup_in_progress():
        db.backup_step(2)
        for _ in range(2):
            app = rng.choice(apps)
            source = rng.choice(data_pages)
            manager.read_into(app, source)       # R(X, A): ids only
            manager.execute_step(app, "compute")  # Ex(A)
            db.execute(PhysiologicalWrite(source, "increment", (1,)))
        db.install_some(3, rng)
    return db, manager, apps


def main():
    print("=== Iw/oF during backup vs application placement (§6.2) ===")
    for at_end, label in ((True, "apps LAST in backup order"),
                          (False, "apps FIRST in backup order")):
        db, _, _ = run(at_end)
        print(
            f"  {label:28s} iwof={db.metrics.iwof_during_backup:3d} "
            f"of {db.metrics.flush_decisions_during_backup} flush decisions"
        )

    print("\n=== application state survives media failure ===")
    db, manager, apps = run(at_end=True)
    before = {app: manager.state_of(app) for app in apps}
    db.media_failure()
    outcome = db.media_recover()
    print(f"  {outcome.summary()}")
    for app in apps:
        assert manager.state_of(app) == before[app]
    print(f"  all {len(apps)} application states recovered exactly ✓")

    print("\n=== a resumable pipeline application ===")
    resumable_pipeline()


def resumable_pipeline():
    """A long computation that survives a crash mid-stream and resumes
    from its exact program counter (the [8] application-recovery story)."""
    from repro.appfs import RecoverableApplication, register_logic
    from repro.ops.physical import PhysicalWrite

    def running_max(state, item):
        best = state if state is not None else float("-inf")
        best = max(best, item if isinstance(item, (int, float)) else 0)
        return best, best

    try:
        register_logic("running-max", running_max)
    except Exception:
        pass  # already registered on repeat runs

    db = Database(pages_per_partition=[64], policy="tree")
    inputs = [PageId(0, slot) for slot in range(10)]
    values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
    for page, value in zip(inputs, values):
        db.execute(PhysicalWrite(page, value))

    app_page = PageId(0, 60)
    app = RecoverableApplication.launch(db, app_page, "running-max")
    for page in inputs[:5]:
        app.feed(page)
        app.advance()
    print(f"  processed 5/10 inputs; running max = {app.user_state}")

    db.crash()
    db.recover()
    resumed = RecoverableApplication.resume(db, app_page)
    print(f"  after crash: resumed at step {resumed.step_number} "
          f"with state {resumed.user_state} (no re-reading)")
    for page in inputs[5:]:
        resumed.feed(page)
        resumed.advance()
    resumed.emit(PageId(0, 61))
    assert db.read(PageId(0, 61)) == max(values)
    print(f"  pipeline completed: max = {db.read(PageId(0, 61))} ✓")


if __name__ == "__main__":
    main()
