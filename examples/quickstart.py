#!/usr/bin/env python3
"""Quickstart: an online backup that survives logical log operations.

Builds a small database, runs logical operations (copies — only
identifiers hit the log), takes a high-speed online backup *while
updates continue*, then destroys the stable medium and recovers from
the backup plus the media recovery log.

Run:  python examples/quickstart.py
"""

from repro import BackupConfig
from repro import CopyOp, Database, PhysicalWrite, PhysiologicalWrite
from repro.ids import PageId


def main():
    # One partition of 64 pages; the general-operation flush policy
    # (section 3.5 of the paper).
    db = Database(pages_per_partition=[64], policy="general")

    # Seed a few pages (physical writes: the value is on the log).
    for slot in range(8):
        db.execute(PhysicalWrite(PageId(0, slot), ("record", slot)))

    # Start an online backup in 4 steps, interleaved with updates.
    db.start_backup(BackupConfig(steps=4))
    slot = 8
    while db.backup_in_progress():
        db.backup_step(pages=4)  # the backup copies a few pages...
        # ...while transactions keep running, including *logical*
        # operations whose log records carry no data values:
        db.execute(CopyOp(PageId(0, slot % 8), PageId(0, 8 + slot % 40)))
        db.execute(
            PhysiologicalWrite(PageId(0, slot % 8), "stamp", (slot,))
        )
        db.install_some(2)  # background cache flushing
        slot += 1

    backup = db.latest_backup()
    print(f"backup complete: {backup}")
    print(f"pages copied:    {backup.copied_count()}")
    print(f"Iw/oF records:   {db.metrics.iwof_records} "
          f"(extra logging that kept the backup recoverable)")

    # Catastrophe: the stable medium fails entirely.
    db.media_failure()
    print("\nstable database lost — restoring from backup + media log...")

    outcome = db.media_recover()
    print(outcome.summary())
    assert outcome.ok, "media recovery must reproduce the current state"
    print("state after recovery matches the pre-failure state. ✓")


if __name__ == "__main__":
    main()
