#!/usr/bin/env python3
"""File-system recovery with logical copy/sort, and why naive dumps fail.

The paper's file-system example (section 1.1): ``copy(X, Y)`` and
``sort(X, Y)`` log only the two file identifiers.  This example:

1. runs a recoverable filesystem with copies and sorts;
2. demonstrates the Figure 1 failure mode on the filesystem: a
   *conventional* fuzzy dump taken while a copy's flush dependencies are
   in flight produces an unrecoverable backup, while the paper's engine
   handles the identical interleaving;
3. restores the namespace and file contents after a media failure.

Run:  python examples/filesystem_copy_sort.py
"""

from repro import BackupConfig
from repro import Database
from repro.appfs import FileSystem
from repro.ids import PageId


def build_fs(db):
    fs = FileSystem(db)
    # Place the copy target at a low slot (copied early by the sweep)
    # and the source at a high slot (copied late) — the Figure 1 shape.
    fs.create("archive")
    for i in range(8):
        fs.create(f"filler-{i}")
    fs.create("measurements")
    fs.write(
        "measurements",
        tuple((k, f"sample-{k}") for k in (5, 3, 9, 1, 7)),
    )
    return fs


def straddling_copy(db, fs, backup_driver, copy_some, finish):
    """Copy a file while the backup frontier sits between source and
    target locations — the Figure 1 interleaving, filesystem flavoured."""
    backup_driver()
    copy_some(3)  # frontier passes the low slots (directory + dst)...
    fs.copy("measurements", "archive")  # ...then the logical copy runs
    # Source keeps changing after the copy (flush dependency!).
    fs.append_record("measurements", 11, "sample-11")
    db.checkpoint()
    return finish()


def main():
    print("=== naive fuzzy dump vs the engine on the same interleaving ===")
    results = {}
    for kind in ("naive", "engine"):
        db = Database(pages_per_partition=[16], policy="general")
        fs = build_fs(db)
        db.checkpoint()
        if kind == "naive":
            backup = straddling_copy(
                db, fs,
                db.naive.start_backup, db.naive.copy_some,
                db.naive.run_to_completion,
            )
        else:
            backup = straddling_copy(
                db, fs,
                lambda: db.start_backup(BackupConfig(steps=4)), db.backup_step,
                db.run_backup,
            )
        db.media_failure()
        outcome = db.media_recover(backup=backup)
        results[kind] = outcome
        print(f"  {kind:7s} backup -> media recovery "
              f"{'OK' if outcome.ok else 'FAILED'} "
              f"({len(outcome.diffs)} wrong pages)")
    assert not results["naive"].ok and results["engine"].ok

    print("\n=== full filesystem session with online backup ===")
    db = Database(pages_per_partition=[16], policy="general")
    fs = build_fs(db)
    db.start_backup(BackupConfig(steps=4))
    while db.backup_in_progress():
        db.backup_step(2)
        fs.append_record("measurements", 20 + db.log.end_lsn % 10, "late")
        db.install_some(1)
    fs.sort("measurements", "sorted")
    fs.copy("sorted", "sorted-copy")
    db.media_failure()
    outcome = db.media_recover()
    print(f"  {outcome.summary()}")
    fresh = FileSystem(db)
    print(f"  namespace after recovery: {fresh.listdir()}")
    assert fresh.read("sorted-copy") == fresh.read("sorted")
    print("  sorted copy matches — logical ops replayed correctly ✓")


if __name__ == "__main__":
    main()
