#!/usr/bin/env python3
"""The §6 toolkit: incremental backup, partition recovery, selective redo.

Three advanced recovery flows the paper sketches in its Discussion
section, all on one database:

1. **Incremental backup** (§6.1) — after the nightly full backup, only
   changed pages are swept; restore = full + incremental + media log.
2. **Partition as the unit of media recovery** (§6.3, direction 2) —
   one partition's media fails; only it is restored and rolled forward,
   never touching healthy partitions.
3. **Selective redo** (§6.3, direction 3) — a buggy application writes
   garbage after the backup; recovery excludes its operations *and* the
   operations that consumed the garbage, reporting the collateral.

Run:  python examples/disaster_recovery_toolkit.py
"""

from repro import BackupConfig
from repro import CopyOp, Database, PhysicalWrite, PhysiologicalWrite
from repro.ids import PageId


def seed(db):
    for partition in range(db.layout.num_partitions):
        for slot in range(db.layout.partition_size(partition)):
            db.execute(
                PhysicalWrite(
                    PageId(partition, slot), ("base", partition, slot)
                ),
                source="loader",
            )
    db.checkpoint()


def main():
    db = Database(pages_per_partition=[32, 32], policy="general")
    seed(db)

    print("=== 1. full + incremental backup (§6.1) ===")
    db.start_backup(BackupConfig(steps=4))
    full = db.run_backup(BackupConfig(pages_per_tick=16))
    print(f"  full backup: {full.copied_count()} pages")
    for slot in (1, 5, 9):
        db.execute(
            PhysiologicalWrite(PageId(0, slot), "stamp", ("evening",)),
            source="app",
        )
    db.start_backup(BackupConfig(steps=4, incremental=True))
    incremental = db.run_backup(BackupConfig(pages_per_tick=16))
    print(f"  incremental: {incremental.copied_count()} pages "
          f"(only the updated ones)")
    db.media_failure()
    outcome = db.media_recover_chain([full, incremental])
    print(f"  chain restore: {outcome.summary()}")
    assert outcome.ok

    print("\n=== 2. partition-level media recovery (§6.3) ===")
    # Keep operations partition-confined from here on.
    db.start_backup(BackupConfig(steps=4))
    backup = db.run_backup(BackupConfig(pages_per_tick=16))
    db.execute(
        PhysiologicalWrite(PageId(1, 7), "stamp", ("late",)), source="app"
    )
    db.checkpoint()
    db.fail_partition(1)
    print("  partition 1 failed; partition 0 still serving reads:",
          db.stable.read_page(PageId(0, 3)).value)
    outcome = db.recover_partition(1, backup=backup)
    print(f"  partition restore: {outcome.summary()}")
    assert outcome.ok
    assert db.stable.read_page(PageId(1, 7)).value[1] == "late"
    print("  partition 1 rolled forward to the current state ✓")

    print("\n=== 3. selective redo past a corrupting application (§6.3) ===")
    db.start_backup(BackupConfig(steps=4))
    clean_backup = db.run_backup(BackupConfig(pages_per_tick=16))
    # The intruder writes garbage; an innocent app copies it onward.
    db.execute(PhysicalWrite(PageId(0, 2), "!!corrupt!!"), source="intruder")
    db.execute(CopyOp(PageId(0, 2), PageId(0, 30)), source="app")
    db.execute(
        PhysiologicalWrite(PageId(0, 4), "stamp", ("innocent",)),
        source="app",
    )
    result = db.selective_recover("intruder", backup=clean_backup)
    analysis = result.analysis
    print(f"  excluded {len(analysis.directly_corrupt)} corrupt and "
          f"{len(analysis.collateral)} collateral operation(s)")
    print(f"  {result.summary()}")
    assert result.ok
    assert db.read(PageId(0, 2)) == ("base", 0, 2)      # corruption gone
    assert db.read(PageId(0, 30)) == ("base", 0, 30)    # collateral gone
    assert db.read(PageId(0, 4))[1] == "innocent"       # kept op present
    print("  corruption and its taint excluded; innocent work kept ✓")


if __name__ == "__main__":
    main()
