#!/usr/bin/env python3
"""A key-value service with transactions, online backup, and recovery.

The adoption story: an ordered KV store (B+-tree with logically logged
splits) serving writes while backups run online, surviving a crash, an
aborted transaction, and a total media failure — all on the machinery
of the paper.

Run:  python examples/kv_service.py
"""

import random

from repro import BackupConfig
from repro.ids import PageId
from repro.kvstore import KVStore
from repro.ops.physical import PhysicalWrite
from repro.txn import TransactionManager


def main():
    store = KVStore.create(capacity_pages=256, order=16, policy="tree")
    txns = TransactionManager(store.db)
    rng = random.Random(2026)

    print("=== loading ===")
    for key in range(100):
        store.put(key, ("account", key, 100.0))
    print(f"  loaded: {store.stats()['keys']} keys, "
          f"height {store.tree.height()}")

    print("\n=== online backup while serving ===")
    store.db.start_backup(BackupConfig(steps=8))
    key = 100
    while store.db.backup_in_progress():
        store.db.backup_step(4)
        store.put(key, ("account", key, 50.0))   # new accounts
        store.delete(rng.randrange(50))          # closures
        key += 1
        store.db.install_some(2, rng)
    stats = store.stats()
    print(f"  backup done; Iw/oF records paid: {stats['iwof_records']}")

    print("\n=== crash mid-service ===")
    outcome = store.simulate_crash()
    print(f"  {outcome.summary()}")
    print(f"  keys after crash recovery: {len(store)}")

    print("\n=== atomic transactions: abort leaves no trace ===")
    log_before = store.db.log.end_lsn
    try:
        with txns.begin("doomed-batch") as txn:
            txn.execute(PhysicalWrite(PageId(0, 200), "half-done"))
            txn.execute(PhysicalWrite(PageId(0, 201), "other-half"))
            raise RuntimeError("client disconnected mid-batch")
    except RuntimeError:
        pass
    assert store.db.log.end_lsn == log_before
    assert store.db.read(PageId(0, 200)) is None
    print(f"  nothing logged, nothing applied "
          f"(committed={txns.committed}, aborted={txns.aborted})")

    with txns.begin("committed-batch") as txn:
        txn.execute(PhysicalWrite(PageId(0, 200), ("meta", "setting-a")))
        txn.execute(PhysicalWrite(PageId(0, 201), ("meta", "setting-b")))
    assert store.db.read(PageId(0, 200)) == ("meta", "setting-a")
    print("  committed batch fully applied ✓")

    print("\n=== total media failure ===")
    store.simulate_media_failure()
    outcome = store.restore_from_backup()
    print(f"  {outcome.summary()}")
    print(f"  keys after media recovery: {len(store)} "
          f"(backup + media-log roll-forward)")

    print("\n=== final state spot checks ===")
    print(f"  accounts 100-104: {list(store.range(100, 104))}")
    print(f"  final stats: {store.stats()}")


if __name__ == "__main__":
    main()
