#!/usr/bin/env python3
"""B-tree with logically logged splits, backed up online.

The paper's motivating database example: B-tree node splits logged as
``MovRec(old, key, new)`` / ``RmvRec(old, key)`` — no record data on the
log.  This example:

1. builds a B-tree and inserts keys while an online backup runs,
   comparing the tree-operation flush policy (section 4.2) against the
   general policy (section 3.5) on Iw/oF volume;
2. crashes mid-run and recovers;
3. fails the medium and media-recovers from the online backup;
4. shows the log-volume win of logical split logging vs page-oriented.

Run:  python examples/btree_online_backup.py
"""

import random

from repro import BackupConfig
from repro import Database
from repro.btree import BTree


def insert_with_online_backup(policy, logging, keys, seed=7):
    db = Database(pages_per_partition=[512], policy=policy)
    tree = BTree(db, order=16, logging=logging).create()
    rng = random.Random(seed)
    key_list = list(range(keys))
    rng.shuffle(key_list)
    source = iter(key_list)

    # Warm up, then back up online while inserting.
    for _ in range(keys // 4):
        key = next(source)
        tree.insert(key, ("payload", key))
    db.start_backup(BackupConfig(steps=8))
    while db.backup_in_progress():
        db.backup_step(8)
        for _ in range(4):
            key = next(source, None)
            if key is not None:
                tree.insert(key, ("payload", key))
        db.install_some(3, rng)
    for key in source:
        tree.insert(key, ("payload", key))
    return db, tree


def main():
    keys = 1500

    print("=== Iw/oF volume: tree policy vs general policy ===")
    for policy in ("tree", "general"):
        db, tree = insert_with_online_backup(policy, "tree", keys)
        metrics = db.metrics
        fraction = metrics.extra_logging_fraction
        print(
            f"  policy={policy:8s} flush decisions={metrics.flush_decisions_during_backup:5d}"
            f"  iwof={metrics.iwof_during_backup:4d}"
            f"  fraction={fraction:.3f}"
        )

    print("\n=== crash recovery ===")
    db, tree = insert_with_online_backup("tree", "tree", keys)
    db.crash()
    outcome = db.recover()
    print(f"  {outcome.summary()}")
    reopened = BTree.attach(db, order=16)
    count = reopened.check_invariants()
    print(f"  tree intact after crash: {count} keys, "
          f"height {reopened.height()} ✓")

    print("\n=== media recovery from the online backup ===")
    db, tree = insert_with_online_backup("tree", "tree", keys)
    db.media_failure()
    outcome = db.media_recover()
    print(f"  {outcome.summary()}")
    reopened = BTree.attach(db, order=16)
    print(f"  tree intact after media failure: "
          f"{reopened.check_invariants()} keys ✓")

    print("\n=== logging economy: tree ops vs page-oriented splits ===")
    for logging in ("tree", "page"):
        db, tree = insert_with_online_backup("tree" if logging == "tree"
                                             else "general", logging, keys)
        print(
            f"  logging={logging:5s} total log bytes="
            f"{db.log.bytes_logged():8d}"
        )


if __name__ == "__main__":
    main()
