"""The oracle: a shadow copy of the logical database state.

The oracle applies every logged operation, in log order, to a plain
value map the moment the operation is appended.  It is the ground truth
recovery outcomes are compared against: after a crash or media failure,
correct recovery must reproduce the oracle state exactly.

It also doubles as an execution cross-check: operation effects computed by
the cache manager and by the oracle must agree (they share the operation's
pure ``compute``), so any nondeterminism in a transform would surface as
an immediate test failure rather than a confusing recovery diff.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.ids import PageId
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class Oracle:
    def __init__(self, log: LogManager, initial_value: Any = None):
        self._state: Dict[PageId, Any] = {}
        self._initial = initial_value
        self._applied_through = 0
        log.on_append(self.apply_record)

    def apply_record(self, record: LogRecord) -> None:
        lsn = record.lsn
        if lsn != self._applied_through + 1:
            raise AssertionError(
                f"oracle saw LSN {lsn}, expected {self._applied_through + 1}"
            )
        op = record.op
        readset = op.readset
        state = self._state
        if readset:
            get = state.get
            initial = self._initial
            reads = {pid: get(pid, initial) for pid in readset}
        else:
            reads = {}
        # ``compute`` directly rather than the checked ``apply``: the reads
        # dict is built from op.readset above (check_reads is vacuous), and
        # the cache manager validated this same record's operation against
        # its read/write sets when it executed it.
        state.update(op.compute(reads))
        self._applied_through = lsn

    def rebuild(self, log: LogManager) -> None:
        """Recompute the oracle from the log's current contents.

        Used after a crash simulation discards the unflushed log tail:
        operations that never became durable never happened.
        """
        self._state = {}
        self._applied_through = 0
        for record in log.merge_scan():
            self.apply_record(record)

    def value(self, page: PageId) -> Any:
        return self._state.get(page, self._initial)

    def state(self) -> Dict[PageId, Any]:
        return dict(self._state)

    @property
    def applied_through(self) -> int:
        return self._applied_through


def oracle_state_at(
    log: LogManager, to_lsn: int, initial_value: Any = None
) -> Dict[PageId, Any]:
    """The logical database state after applying records 1..to_lsn.

    Standalone recomputation (no listener registration) for comparing
    recovery outcomes at historical points.
    """
    state: Dict[PageId, Any] = {}
    for record in log.merge_scan(1, to_lsn):
        op = record.op
        reads = {pid: state.get(pid, initial_value) for pid in op.readset}
        for pid, value in op.apply(reads).items():
            state[pid] = value
    return state
