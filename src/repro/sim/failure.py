"""Failure injection: scheduled crashes, media failures, and I/O faults.

Two granularities:

* :class:`CrashPlan` names a **tick** at which a whole-device failure
  fires (system crash or media loss); :class:`FailureInjector` applies
  it to a :class:`~repro.db.Database` during an interleaved run.
  Integration and property tests sweep the tick across a run to validate
  recoverability at every interleaving point.
* :class:`IOFaultPlan` names an **I/O operation** (by global index on
  the database's :class:`~repro.sim.faults.FaultPlane`) at which a
  storage-level fault fires — a torn multi-page write, a transient
  ``IOError`` absorbed by bounded retries, or a crash at that exact I/O
  point.  The injector arms these on construction, so a single plan
  list can mix both granularities.

Helpers: :func:`crash_sweep_plans` builds the exhaustive
"crash after every Nth I/O" schedule; :meth:`FailureInjector.seeded`
draws a deterministic random fault schedule from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.sim.faults import FaultKind, FaultSpec, IOPoint, seeded_fault_specs


class FailureKind:
    CRASH = "crash"
    MEDIA = "media"


@dataclass(frozen=True)
class CrashPlan:
    """Fire a failure of ``kind`` when the run reaches ``at_tick``."""

    at_tick: int
    kind: str = FailureKind.CRASH

    def __post_init__(self):
        if self.kind not in (FailureKind.CRASH, FailureKind.MEDIA):
            raise ReproError(f"unknown failure kind {self.kind!r}")
        if self.at_tick < 0:
            raise ReproError("at_tick must be >= 0")


@dataclass(frozen=True)
class IOFaultPlan:
    """Fire a storage-level fault at the ``at_io``-th matching I/O.

    ``kind`` is a :class:`~repro.sim.faults.FaultKind` value; ``point``
    restricts the plan to one I/O boundary (default: any).  ``times``
    repeats a transient fault on consecutive attempts; ``keep`` is the
    landed-prefix size of a torn write.
    """

    at_io: int
    kind: str = FaultKind.CRASH
    point: str = IOPoint.ANY
    times: int = 1
    keep: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.at_io < 1:
            raise ReproError("at_io must be >= 1 (I/Os are 1-indexed)")
        # Validation of kind/point/times/keep is delegated to FaultSpec.
        self.to_spec()

    def to_spec(self) -> FaultSpec:
        return FaultSpec(
            kind=self.kind,
            point=self.point,
            at_io=self.at_io,
            times=self.times,
            keep=self.keep,
            seed=self.seed,
        )


AnyPlan = Union[CrashPlan, IOFaultPlan]


def crash_sweep_plans(
    io_budget: int, stride: int = 1, start: int = 1
) -> List[IOFaultPlan]:
    """The exhaustive sweep schedule: one crash plan per Nth I/O point.

    Run the scenario once with a bare fault plane to measure
    ``io_budget`` (``plane.io_count``), then re-run it once per returned
    plan — each run crashes at a different I/O — and assert recovery
    after every one.
    """
    if io_budget < 1:
        raise ReproError("io_budget must be >= 1")
    if stride < 1:
        raise ReproError("stride must be >= 1")
    return [
        IOFaultPlan(at_io=i, kind=FaultKind.CRASH)
        for i in range(start, io_budget + 1, stride)
    ]


class FailureInjector:
    """Applies a mixed schedule of tick-level and I/O-level failures.

    Tick-level :class:`CrashPlan`\\ s fire from :meth:`check` (called by
    the interleaved runner once per tick); I/O-level
    :class:`IOFaultPlan`\\ s are armed immediately on the database's
    fault plane and fire from inside the storage stack.
    """

    def __init__(self, db, plans: Optional[Sequence[AnyPlan]] = None):
        self.db = db
        tick_plans = [p for p in (plans or []) if isinstance(p, CrashPlan)]
        self.io_plans: List[IOFaultPlan] = [
            p for p in (plans or []) if isinstance(p, IOFaultPlan)
        ]
        self.plans = sorted(tick_plans, key=lambda p: p.at_tick)
        self.fired: List[CrashPlan] = []
        if self.io_plans:
            plane = db.ensure_fault_plane()
            plane.arm_all(plan.to_spec() for plan in self.io_plans)

    @classmethod
    def seeded(
        cls,
        db,
        seed: int,
        io_budget: int,
        count: int = 3,
        kinds: Sequence[str] = (FaultKind.TRANSIENT, FaultKind.TORN),
        point_budgets=None,
    ) -> "FailureInjector":
        """A deterministic random I/O fault schedule drawn from ``seed``.

        ``point_budgets`` (a baseline plane's ``count_by_point``) keeps
        point-specific draws within each point's reachable range.
        """
        rng = random.Random(seed)
        injector = cls(db)
        specs = seeded_fault_specs(rng, io_budget, count=count, kinds=kinds,
                                   point_budgets=point_budgets)
        db.ensure_fault_plane().arm_all(specs)
        injector.io_plans = [
            IOFaultPlan(
                at_io=s.at_io, kind=s.kind, point=s.point,
                times=s.times, keep=s.keep,
            )
            for s in specs
        ]
        return injector

    @property
    def faults_injected(self) -> int:
        """Total storage-level faults the armed plane has fired so far."""
        plane = getattr(self.db, "faults", None)
        return plane.injected_total if plane is not None else 0

    def check(self, tick: int) -> Optional[CrashPlan]:
        """Fire (at most) the first due tick plan; returns it if fired."""
        while self.plans and self.plans[0].at_tick <= tick:
            plan = self.plans.pop(0)
            if plan.kind == FailureKind.CRASH:
                self.db.crash()
            else:
                self.db.media_failure()
            self.fired.append(plan)
            return plan
        return None
