"""Failure injection: scheduled crashes and media failures.

A :class:`CrashPlan` names a tick at which a failure fires;
:class:`FailureInjector` applies it to a :class:`~repro.db.Database`
during an interleaved run.  Integration and property tests sweep the
tick across a run to validate recoverability at every interleaving point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError


class FailureKind:
    CRASH = "crash"
    MEDIA = "media"


@dataclass(frozen=True)
class CrashPlan:
    """Fire a failure of ``kind`` when the run reaches ``at_tick``."""

    at_tick: int
    kind: str = FailureKind.CRASH

    def __post_init__(self):
        if self.kind not in (FailureKind.CRASH, FailureKind.MEDIA):
            raise ReproError(f"unknown failure kind {self.kind!r}")
        if self.at_tick < 0:
            raise ReproError("at_tick must be >= 0")


class FailureInjector:
    def __init__(self, db, plans: Optional[List[CrashPlan]] = None):
        self.db = db
        self.plans = sorted(plans or [], key=lambda p: p.at_tick)
        self.fired: List[CrashPlan] = []

    def check(self, tick: int) -> Optional[CrashPlan]:
        """Fire (at most) the first due plan; returns it if fired."""
        while self.plans and self.plans[0].at_tick <= tick:
            plan = self.plans.pop(0)
            if plan.kind == FailureKind.CRASH:
                self.db.crash()
            else:
                self.db.media_failure()
            self.fired.append(plan)
            return plan
        return None
