"""Execution counters shared by the cache manager and the backup engines.

``flush_decisions_during_backup`` / ``iwof_during_backup`` measure exactly
the quantity of section 5: the probability that an object flush requires
Iw/oF logging *while a backup is in progress*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Metrics:
    # Cache manager.
    page_flushes: int = 0
    node_installs: int = 0
    multi_page_installs: int = 0
    identity_installs: int = 0  # hot-page Iw/oF without flushing (§5.3)
    cache_hits: int = 0
    cache_misses: int = 0

    # Backup-related logging (the paper's headline quantity).
    flush_decisions_during_backup: int = 0
    iwof_during_backup: int = 0
    iwof_records: int = 0
    iwof_bytes: int = 0
    decisions_by_region: Dict[str, int] = field(default_factory=dict)
    iwof_by_region: Dict[str, int] = field(default_factory=dict)

    # Backup engines.
    backup_pages_copied: int = 0
    backup_bulk_reads: int = 0  # contiguous runs copied by the batched sweep
    backups_completed: int = 0
    backups_aborted: int = 0
    linked_flushes: int = 0

    # Per-backup-step breakdown (step m of section 5's analysis).
    decisions_by_step: Dict[int, int] = field(default_factory=dict)
    iwof_by_step: Dict[int, int] = field(default_factory=dict)

    # Fault injection (see repro.sim.faults): injections by kind, the
    # bounded retries that survived transients, torn backup spans that
    # were resumed, and torn stable installs rolled back at recovery.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    io_retries: int = 0
    simulated_backoff_s: float = 0.0
    torn_spans_resumed: int = 0
    torn_writes_repaired: int = 0

    def record_decision(
        self, region: str, needs_iwof: bool, step: int = 0
    ) -> None:
        self.flush_decisions_during_backup += 1
        self.decisions_by_region[region] = (
            self.decisions_by_region.get(region, 0) + 1
        )
        self.decisions_by_step[step] = (
            self.decisions_by_step.get(step, 0) + 1
        )
        if needs_iwof:
            self.iwof_during_backup += 1
            self.iwof_by_region[region] = (
                self.iwof_by_region.get(region, 0) + 1
            )
            self.iwof_by_step[step] = self.iwof_by_step.get(step, 0) + 1

    def step_fractions(self) -> Dict[int, float]:
        """Measured Prob_m{log} per backup step m (section 5)."""
        return {
            step: self.iwof_by_step.get(step, 0) / total
            for step, total in sorted(self.decisions_by_step.items())
            if total
        }

    @property
    def extra_logging_fraction(self) -> float:
        """Measured Prob{log}: Iw/oF per object flush during backup."""
        if not self.flush_decisions_during_backup:
            return 0.0
        return self.iwof_during_backup / self.flush_decisions_during_backup

    def snapshot(self) -> Dict[str, float]:
        return {
            "page_flushes": self.page_flushes,
            "node_installs": self.node_installs,
            "flush_decisions_during_backup": self.flush_decisions_during_backup,
            "iwof_during_backup": self.iwof_during_backup,
            "extra_logging_fraction": self.extra_logging_fraction,
            "iwof_records": self.iwof_records,
            "iwof_bytes": self.iwof_bytes,
            "backup_pages_copied": self.backup_pages_copied,
            "backups_completed": self.backups_completed,
            "faults_injected": sum(self.faults_injected.values()),
            "io_retries": self.io_retries,
            "torn_spans_resumed": self.torn_spans_resumed,
            "torn_writes_repaired": self.torn_writes_repaired,
        }
