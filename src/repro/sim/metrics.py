"""Execution counters shared by the cache manager and the backup engines.

``flush_decisions_during_backup`` / ``iwof_during_backup`` measure exactly
the quantity of section 5: the probability that an object flush requires
Iw/oF logging *while a backup is in progress*.

``phase_timings`` holds per-phase timing histograms fed by tracer spans
(see :mod:`repro.obs`): each named phase (``backup.sweep``,
``recovery.crash.redo``, …) accumulates count/total/min/max plus a
power-of-two millisecond bucket histogram.

Concurrency contract
--------------------
A ``Metrics`` instance is **not** internally locked; single-thread hot
paths increment plain attributes with zero synchronization overhead.
Multi-threaded producers (the parallel backup sweep's span readers) do
not share the main instance: each worker task gets a fresh **shard**
(:meth:`Metrics.shard`), accumulates into it privately, and the
coordinating thread merges shards deterministically with
:meth:`Metrics.absorb` after joining the workers — sharded counters,
merged on aggregation, never racing.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class PhaseTiming:
    """Timing histogram for one named phase.

    ``buckets`` maps a power-of-two millisecond bucket label
    (``"<1ms"``, ``"<2ms"``, ``"<4ms"``, …) to an observation count —
    coarse but enough to spot a bimodal phase without storing samples.
    """

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    buckets: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def bucket_label(seconds: float) -> str:
        ms = seconds * 1000.0
        if ms < 1.0:
            return "<1ms"
        exponent = math.ceil(math.log2(ms))
        return f"<{2 ** exponent:g}ms"

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        label = self.bucket_label(seconds)
        self.buckets[label] = self.buckets.get(label, 0) + 1

    def absorb(self, other: "PhaseTiming") -> None:
        """Merge another histogram into this one (shard aggregation)."""
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s < self.min_s:
            self.min_s = other.min_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        for label, count in other.buckets.items():
            self.buckets[label] = self.buckets.get(label, 0) + count

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_ms": round(self.total_s * 1000.0, 4),
            "mean_ms": round(self.mean_s * 1000.0, 4),
            "min_ms": round(
                (0.0 if self.count == 0 else self.min_s) * 1000.0, 4
            ),
            "max_ms": round(self.max_s * 1000.0, 4),
            "buckets": dict(self.buckets),
        }


@dataclass
class Metrics:
    # Cache manager.
    page_flushes: int = 0
    node_installs: int = 0
    multi_page_installs: int = 0
    identity_installs: int = 0  # hot-page Iw/oF without flushing (§5.3)
    cache_hits: int = 0
    cache_misses: int = 0

    # Backup-related logging (the paper's headline quantity).
    flush_decisions_during_backup: int = 0
    iwof_during_backup: int = 0
    iwof_records: int = 0
    iwof_bytes: int = 0
    decisions_by_region: Dict[str, int] = field(default_factory=dict)
    iwof_by_region: Dict[str, int] = field(default_factory=dict)

    # Backup engines.
    backup_pages_copied: int = 0
    backup_bulk_reads: int = 0  # contiguous runs copied by the batched sweep
    backups_completed: int = 0
    backups_aborted: int = 0
    linked_flushes: int = 0

    # Per-backup-step breakdown (step m of section 5's analysis).
    decisions_by_step: Dict[int, int] = field(default_factory=dict)
    iwof_by_step: Dict[int, int] = field(default_factory=dict)

    # Fault injection (see repro.sim.faults): injections by kind, the
    # bounded retries that survived transients, torn backup spans that
    # were resumed, and torn stable installs rolled back at recovery.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    io_retries: int = 0
    simulated_backoff_s: float = 0.0
    torn_spans_resumed: int = 0
    torn_writes_repaired: int = 0

    # Group commit (multi-stream WAL): completed durability ticks, force
    # callers coalesced into a tick they did not lead, records dropped by
    # torn-tail repair (mirrors LogManager.tail_repair_dropped), and the
    # per-tick batch-size histogram (batch size -> tick count).
    group_commit_ticks: int = 0
    group_commit_coalesced: int = 0
    tail_repair_dropped: int = 0
    force_batch_sizes: Dict[int, int] = field(default_factory=dict)

    # Corruption robustness: checksum failures observed, damage healed
    # (chain fallback / tail truncation), pages given up on, and log
    # records dropped by torn-tail repair.
    corruption_detected: int = 0
    corruption_healed: int = 0
    pages_quarantined: int = 0
    log_tail_truncated: int = 0

    # Media recovery / instant restore: fallback generations rejected by
    # the selection gate (with trace events carrying why), replayed pages
    # dropped because they fell outside the stable layout, and the
    # instant-restore split between on-demand (lazy, access-triggered)
    # and eager background page restores.  ``time_to_first_query_ms`` is
    # stamped by the RestoreManager when the first on-demand access is
    # served (0.0 until then).
    fallback_rejections: int = 0
    pages_dropped_out_of_layout: int = 0
    pages_restored_on_demand: int = 0
    pages_restored_background: int = 0
    time_to_first_query_ms: float = 0.0

    # Parallel redo (recovery/parallel_redo.py): replayed ops split
    # between the lock-free single-partition fast path (pool threads)
    # and the coordinator-ordered cross-partition lane.  Each worker
    # counts into its own shard; absorbed after the replay joins.
    redo_ops_fast_path: int = 0
    redo_ops_coordinated: int = 0

    # Per-phase timing histograms, fed by tracer spans (repro.obs).
    phase_timings: Dict[str, PhaseTiming] = field(default_factory=dict)

    def record_decision(self, region: str, needs_iwof: bool, step: int) -> None:
        """Record one flush-policy consult during a backup.

        ``step`` is the partition's current backup step (1-based,
        ``PartitionProgress.steps_taken``) and is deliberately required:
        a defaulted step silently lumped every decision into a phantom
        step 0, corrupting :meth:`step_fractions` (§5's Prob_m{log}).
        """
        self.flush_decisions_during_backup += 1
        self.decisions_by_region[region] = (
            self.decisions_by_region.get(region, 0) + 1
        )
        self.decisions_by_step[step] = (
            self.decisions_by_step.get(step, 0) + 1
        )
        if needs_iwof:
            self.iwof_during_backup += 1
            self.iwof_by_region[region] = (
                self.iwof_by_region.get(region, 0) + 1
            )
            self.iwof_by_step[step] = self.iwof_by_step.get(step, 0) + 1

    def step_fractions(self) -> Dict[int, float]:
        """Measured Prob_m{log} per backup step m (section 5)."""
        return {
            step: self.iwof_by_step.get(step, 0) / total
            for step, total in sorted(self.decisions_by_step.items())
            if total
        }

    @property
    def extra_logging_fraction(self) -> float:
        """Measured Prob{log}: Iw/oF per object flush during backup."""
        if not self.flush_decisions_during_backup:
            return 0.0
        return self.iwof_during_backup / self.flush_decisions_during_backup

    # ------------------------------------------------------------ phase times

    def observe_phase(self, name: str, seconds: float) -> None:
        """Feed one span duration into the phase's timing histogram."""
        timing = self.phase_timings.get(name)
        if timing is None:
            timing = self.phase_timings[name] = PhaseTiming()
        timing.observe(seconds)

    def phase_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase timing stats (count / total / mean / min / max ms)."""
        return {
            name: timing.summary()
            for name, timing in sorted(self.phase_timings.items())
        }

    # ---------------------------------------------------------------- shards

    def shard(self) -> "Metrics":
        """A fresh, zeroed ``Metrics`` for one worker task.

        Parallel sweep workers never touch the shared instance: each
        task accumulates into its own shard and the coordinating thread
        calls :meth:`absorb` after the worker is joined, so totals are
        deterministic and the single-thread hot paths stay lock-free.
        """
        return Metrics()

    def absorb(self, other: "Metrics") -> None:
        """Merge a worker shard's counters into this instance.

        Scalar fields add; dict-valued counter fields merge by summing
        per-key; phase timing histograms merge via
        :meth:`PhaseTiming.absorb`.  Must be called from the owning
        thread after the shard's worker has finished.
        """
        for spec in dataclasses.fields(self):
            value = getattr(other, spec.name)
            if isinstance(value, (int, float)):
                if value:
                    setattr(self, spec.name, getattr(self, spec.name) + value)
            elif spec.name == "phase_timings":
                for name, timing in value.items():
                    mine = self.phase_timings.get(name)
                    if mine is None:
                        mine = self.phase_timings[name] = PhaseTiming()
                    mine.absorb(timing)
            else:  # dict counters keyed by region/step/kind
                mine = getattr(self, spec.name)
                for key, count in value.items():
                    mine[key] = mine.get(key, 0) + count

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, float]:
        """Every scalar counter plus the derived headline quantities.

        Enumerated from the dataclass fields so a newly added counter
        can never be silently omitted from faultsweep/bench reports
        (pinned by a test over ``dataclasses.fields``).
        """
        out: Dict[str, float] = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, (int, float)):
                out[spec.name] = value
        # Derived / aggregate quantities (dict-valued fields summarize).
        out["extra_logging_fraction"] = self.extra_logging_fraction
        out["faults_injected"] = sum(self.faults_injected.values())
        return out
