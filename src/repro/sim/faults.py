"""Storage/WAL fault injection: the fault plane.

The paper's recoverability argument must hold not just between ticks of
a simulated run but *inside* every I/O operation: a torn multi-page
install, a transient device error mid-sweep, or a crash halfway through
a log force are exactly where flush-order dependencies break.  This
module provides the machinery to perturb those boundaries
systematically:

* :class:`FaultPlane` — a shared injection point every simulated device
  (:class:`~repro.storage.stable_db.StableDatabase`,
  :class:`~repro.storage.backup_db.BackupDatabase`,
  :class:`~repro.wal.log_manager.LogManager`) consults at each I/O
  boundary.  The plane counts I/O events deterministically and fires
  armed :class:`FaultSpec`\\ s when their trigger count is reached.
* :class:`FaultSpec` — one armed fault: *transient* (a bounded number of
  :class:`~repro.errors.TransientIOError`\\ s the caller must retry
  through), *torn* (only a prefix of a multi-part write lands), *crash*
  (:class:`~repro.errors.SimulatedCrash` raised mid-I/O), or *bitrot*
  (silent corruption: the device's corruptor callback flips stored
  content without refreshing its integrity envelope, so the damage is
  only visible to a later checksummed read).
* :func:`with_retries` — the bounded retry-with-backoff helper callers
  use to survive transient faults.  Backoff is simulated (recorded in
  :class:`~repro.sim.metrics.Metrics`, never slept) so runs stay fast
  and deterministic.

Torn-write semantics differ by device, mirroring reality:

* A torn write to the *backup* database raises
  :class:`~repro.errors.TornWriteError` carrying how many pages landed;
  the backup process re-issues the remainder of the span and then
  verifies the whole span against its CRC32 integrity envelopes
  (``BackupDatabase.verify_pages``) — the sweep survives without a
  crash, and a span that re-read damaged content is detected rather
  than silently archived.
* A torn multi-page install into the *stable* database is only
  discoverable after a failure, so it surfaces as
  :class:`~repro.errors.SimulatedCrash`; the prefix stays on disk and
  the shadow (doublewrite) journal kept by ``StableDatabase`` rolls it
  back during recovery, restoring the multi-page atomicity the paper
  assumes.

Bitrot is different from every other kind: it never raises at the
injection site.  The plane invokes the device's ``corrupt`` callback
with a deterministic per-spec RNG; the device mutates one stored page
(or log record) in place, leaving the stale checksum behind.  Detection
is the *store's* job, at read/verify time — which is exactly the gap
the integrity envelopes close.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import ReproError, SimulatedCrash, TransientIOError
from repro.obs.events import FAULT_INJECTED
from repro.obs.tracer import NULL_TRACER

T = TypeVar("T")


class IOPoint:
    """Names of the instrumented I/O boundaries.

    Each point is keyed to a method of the storage-backend protocols
    (:mod:`repro.storage.api`): ``stable.*`` to :class:`PageStore`,
    ``backup.*`` to :class:`BackupStore`, ``log.*`` to the log manager's
    append/force surface.  The fault check is performed *inside the
    shared protocol implementation*, before any backend-specific device
    hook runs — so a given seed injects the identical fault schedule
    whether the backend is the in-memory simulation or real files, and
    no backend duplicates (or forgets) a check.
    """

    STABLE_READ = "stable.read_page"
    STABLE_BULK_READ = "stable.read_pages"
    STABLE_WRITE = "stable.write_page"
    STABLE_MULTI_WRITE = "stable.write_multi"
    BACKUP_RECORD = "backup.record_page"
    BACKUP_BULK_RECORD = "backup.record_pages"
    LOG_APPEND = "log.append"
    LOG_FORCE = "log.force"
    ANY = "*"

    ALL = (
        STABLE_READ,
        STABLE_BULK_READ,
        STABLE_WRITE,
        STABLE_MULTI_WRITE,
        BACKUP_RECORD,
        BACKUP_BULK_RECORD,
        LOG_APPEND,
        LOG_FORCE,
    )


class FaultKind:
    TORN = "torn"
    TRANSIENT = "transient"
    CRASH = "crash"
    BITROT = "bitrot"

    ALL = (TORN, TRANSIENT, CRASH, BITROT)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    ``at_io`` is 1-based: the fault fires the first time the matching
    counter (the per-point counter for a specific ``point``, the global
    counter for :data:`IOPoint.ANY`) reaches ``at_io``.  ``times`` is the
    number of consecutive failures a transient fault injects; ``keep``
    is how many parts of a multi-part write land before a torn fault
    truncates it.  ``seed`` feeds the per-spec RNG handed to the
    device's corruptor when a bitrot fault fires (ignored otherwise).
    """

    kind: str
    point: str = IOPoint.ANY
    at_io: int = 1
    times: int = 1
    keep: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise ReproError(f"unknown fault kind {self.kind!r}")
        if self.point != IOPoint.ANY and self.point not in IOPoint.ALL:
            raise ReproError(f"unknown I/O point {self.point!r}")
        if self.at_io < 1:
            raise ReproError("at_io is 1-based and must be >= 1")
        if self.times < 1:
            raise ReproError("times must be >= 1")
        if self.keep < 0:
            raise ReproError("keep must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with (simulated) exponential backoff."""

    max_attempts: int = 4
    backoff_base: float = 0.001
    multiplier: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Simulated delay before retry ``attempt`` (1-based)."""
        return self.backoff_base * self.multiplier ** (attempt - 1)


DEFAULT_RETRY = RetryPolicy()


def with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY,
    metrics=None,
) -> T:
    """Call ``fn``, absorbing up to ``max_attempts - 1`` transient faults.

    Each retry records one ``io_retries`` tick and its simulated backoff
    in ``metrics`` (when given).  A transient error on the final attempt
    propagates — the caller's fault, not the helper's.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except TransientIOError:
            if attempt >= policy.max_attempts:
                raise
            if metrics is not None:
                metrics.io_retries += 1
                metrics.simulated_backoff_s += policy.backoff_for(attempt)
            attempt += 1


class _ArmedFault:
    """Mutable firing state for one spec."""

    __slots__ = ("spec", "fired", "remaining")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.fired = False
        self.remaining = spec.times


class FaultPlane:
    """Deterministic fault injection consulted at every I/O boundary.

    Devices call :meth:`check` *before* performing (the mutating part
    of) an I/O; the plane counts the event and either returns ``None``
    (proceed), returns an ``int`` prefix length (torn write: land that
    many parts, then fail per the device's torn semantics), or raises
    :class:`TransientIOError` / :class:`SimulatedCrash` directly.

    With no specs armed the plane is a pure counter — harnesses use a
    bare plane to measure a run's I/O budget before sweeping
    crash-at-every-I/O-point over it.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), metrics=None):
        self._armed: List[_ArmedFault] = [_ArmedFault(s) for s in specs]
        self.metrics = metrics
        # Tracer (repro.obs): every injection emits a fault_injected
        # event naming the fault kind and the I/O point it fired at.
        self.tracer = NULL_TRACER
        self.enabled = True
        self.io_count = 0
        self.count_by_point: Dict[str, int] = {}
        self.injected_by_kind: Dict[str, int] = {}
        self.injected_total = 0
        # Parallel sweep workers hit the plane concurrently with the
        # planning thread; the counters and armed-fault state are
        # read-modify-write, so checks serialize on one lock.  Totals
        # stay deterministic across schedules — only the interleaving of
        # which I/O index lands on which thread varies.
        self._lock = threading.Lock()

    # -------------------------------------------------------------- arming

    def arm(self, spec: FaultSpec) -> None:
        self._armed.append(_ArmedFault(spec))

    def arm_all(self, specs: Sequence[FaultSpec]) -> None:
        for spec in specs:
            self.arm(spec)

    @property
    def pending_specs(self) -> List[FaultSpec]:
        """Specs that have not fired yet."""
        return [a.spec for a in self._armed if not a.fired]

    # ---------------------------------------------------------- suspension

    def suspend(self) -> None:
        """Stop injecting *and counting* (e.g. while recovery runs)."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    def suspended(self):
        """Context manager: suspend for the duration of a block."""
        return _Suspension(self)

    # ------------------------------------------------------------ checking

    def check(
        self,
        point: str,
        parts: int = 1,
        corrupt: Optional[Callable] = None,
    ) -> Optional[int]:
        """Count one I/O event at ``point`` and fire any due fault.

        ``parts`` is the number of parts (pages) of a multi-part write;
        torn faults only fire when ``parts >= 2`` (a single-part write
        is atomic by the disk-write-atomicity assumption) and stay armed
        otherwise.  ``corrupt`` is the device's bitrot corruptor: called
        with a deterministic RNG when a due bitrot fault fires, it must
        silently damage one stored item and return ``True`` (or
        ``False`` to leave the fault armed — e.g. nothing stored yet).
        Devices that cannot be corrupted pass ``None`` and bitrot specs
        simply stay armed at their points.  Returns the torn prefix
        length, or ``None``.
        """
        if not self.enabled:
            return None
        with self._lock:
            return self._check_locked(point, parts, corrupt)

    def _check_locked(
        self,
        point: str,
        parts: int,
        corrupt: Optional[Callable],
    ) -> Optional[int]:
        self.io_count += 1
        count = self.count_by_point.get(point, 0) + 1
        self.count_by_point[point] = count
        torn_keep: Optional[int] = None
        for armed in self._armed:
            spec = armed.spec
            if spec.point == IOPoint.ANY:
                due = self.io_count >= spec.at_io
            else:
                due = spec.point == point and count >= spec.at_io
            if not due:
                continue
            if spec.kind == FaultKind.TRANSIENT:
                if armed.remaining <= 0:
                    continue
                armed.remaining -= 1
                armed.fired = True
                self._record(FaultKind.TRANSIENT, point)
                raise TransientIOError(point, self.io_count)
            if armed.fired:
                continue
            if spec.kind == FaultKind.BITROT:
                if corrupt is None:
                    continue
                rng = random.Random(f"{spec.seed}:{point}:{spec.at_io}")
                if corrupt(rng):
                    armed.fired = True
                    self._record(FaultKind.BITROT, point)
                continue
            if spec.kind == FaultKind.CRASH:
                armed.fired = True
                self._record(FaultKind.CRASH, point)
                raise SimulatedCrash(point, self.io_count)
            # Torn: needs a multi-part write to be meaningful.
            if parts >= 2:
                armed.fired = True
                self._record(FaultKind.TORN, point)
                keep = min(spec.keep, parts - 1)
                if torn_keep is None or keep < torn_keep:
                    torn_keep = keep
        return torn_keep

    def _record(self, kind: str, point: str) -> None:
        self.injected_total += 1
        self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.faults_injected[kind] = (
                self.metrics.faults_injected.get(kind, 0) + 1
            )
        if self.tracer.enabled:
            self.tracer.emit(
                FAULT_INJECTED, kind=kind, point=point, io=self.io_count
            )

    def snapshot(self) -> Dict[str, int]:
        out: Dict[str, int] = {"io_count": self.io_count,
                               "injected_total": self.injected_total}
        for kind, n in sorted(self.injected_by_kind.items()):
            out[f"injected_{kind}"] = n
        return out

    def __repr__(self):
        return (
            f"FaultPlane(io={self.io_count}, armed={len(self._armed)}, "
            f"injected={self.injected_total}, enabled={self.enabled})"
        )


class _Suspension:
    def __init__(self, plane: FaultPlane):
        self._plane = plane
        self._was_enabled = True

    def __enter__(self):
        self._was_enabled = self._plane.enabled
        self._plane.enabled = False
        return self._plane

    def __exit__(self, *exc):
        self._plane.enabled = self._was_enabled
        return False


def seeded_fault_specs(
    rng,
    io_budget: int,
    count: int = 3,
    kinds: Sequence[str] = (FaultKind.TRANSIENT, FaultKind.TORN),
    points: Sequence[str] = IOPoint.ALL,
    max_transient_times: int = 2,
    point_budgets: Optional[Dict[str, int]] = None,
) -> List[FaultSpec]:
    """A deterministic random fault schedule for seeded robustness runs.

    Draws ``count`` faults uniformly over the first ``io_budget`` I/O
    events.  A point-specific spec fires against that point's *own*
    counter, so pass ``point_budgets`` (a baseline plane's
    ``count_by_point``) to keep every draw within reach; points the
    baseline never hit are skipped.  Crash faults are excluded by
    default — a seeded schedule is meant to be *survivable in place*
    (transients retried, torn spans resumed); crash sweeps use explicit
    ``FaultKind.CRASH`` specs.
    """
    if point_budgets is not None:
        points = [p for p in points if point_budgets.get(p, 0) > 0]
        if not points:
            return []
    specs: List[FaultSpec] = []
    for _ in range(count):
        kind = kinds[rng.randrange(len(kinds))]
        point = points[rng.randrange(len(points))]
        budget = io_budget
        if point_budgets is not None:
            budget = min(budget, point_budgets[point])
        at_io = rng.randint(1, max(1, budget))
        times = rng.randint(1, max_transient_times)
        specs.append(FaultSpec(kind=kind, point=point, at_io=at_io,
                               times=times))
    return specs
