"""Interleaved execution: workload + cache flushing + backup, tick by tick.

``InterleavedRun`` is the deterministic scheduler behind the experiments:
each tick executes a few workload operations, installs a few write-graph
nodes (the cache manager's background flushing), and copies a few backup
pages.  All randomness comes from one seeded generator, so every run is
reproducible.

The relative rates (``ops_per_tick`` / ``installs_per_tick`` /
``backup_pages_per_tick``) control how much update activity a backup
overlaps — the knob that, in a real system, is the ratio of update
throughput to backup bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.db import Database
from repro.core.config import BackupConfig
from repro.errors import SimulatedCrash
from repro.ops.base import Operation
from repro.sim.failure import FailureInjector
from repro.storage.backup_db import BackupDatabase


@dataclass
class RunResult:
    ticks: int = 0
    ops_executed: int = 0
    backups_completed: int = 0
    backup: Optional[BackupDatabase] = None
    crashed: bool = False
    media_failed: bool = False
    extra_logging_fraction: float = 0.0


class InterleavedRun:
    def __init__(
        self,
        db: "Database",
        op_source: Iterator[Operation],
        seed: int = 0,
        ops_per_tick: int = 2,
        installs_per_tick: int = 2,
        backup_pages_per_tick: int = 4,
        start_backup_at_tick: Optional[int] = 0,
        backup_steps: int = 8,
        incremental: bool = False,
        injector: Optional[FailureInjector] = None,
        on_tick: Optional[Callable[[int], None]] = None,
    ):
        self.db = db
        self.op_source = op_source
        self.rng = random.Random(seed)
        self.ops_per_tick = ops_per_tick
        self.installs_per_tick = installs_per_tick
        self.backup_pages_per_tick = backup_pages_per_tick
        self.start_backup_at_tick = start_backup_at_tick
        self.backup_steps = backup_steps
        self.incremental = incremental
        self.injector = injector
        self.on_tick = on_tick

    def run(self, max_ticks: int = 10_000) -> RunResult:
        """Tick until the backup completes (or the source/ticks run out)."""
        result = RunResult()
        backup_started = False
        for tick in range(max_ticks):
            result.ticks = tick + 1
            if self.injector is not None:
                plan = self.injector.check(tick)
                if plan is not None:
                    result.crashed = plan.kind == "crash"
                    result.media_failed = plan.kind == "media"
                    break
            try:
                if (
                    not backup_started
                    and self.start_backup_at_tick is not None
                    and tick >= self.start_backup_at_tick
                ):
                    self.db.start_backup(BackupConfig(
                        steps=self.backup_steps,
                        incremental=self.incremental,
                    ))
                    backup_started = True

                exhausted = False
                for _ in range(self.ops_per_tick):
                    op = next(self.op_source, None)
                    if op is None:
                        exhausted = True
                        break
                    self.db.execute(op)
                    result.ops_executed += 1

                self.db.install_some(self.installs_per_tick, self.rng)

                if self.db.backup_in_progress():
                    self.db.backup_step(self.backup_pages_per_tick)
            except SimulatedCrash:
                # An armed fault plane killed the system mid-I/O; the
                # database is crashed, recovery is the caller's move.
                self.db.crash()
                result.crashed = True
                break
            if self.on_tick is not None:
                self.on_tick(tick)

            if backup_started and not self.db.backup_in_progress():
                result.backup = self.db.latest_backup()
                result.backups_completed = self.db.metrics.backups_completed
                break
            if exhausted and not self.db.backup_in_progress():
                break
        result.extra_logging_fraction = self.db.metrics.extra_logging_fraction
        return result
