"""Exhaustive interleaving exploration (bounded model checking).

The paper's correctness argument is about *all* interleavings of three
concurrent activities: operation execution, cache-manager installs, and
backup copy steps.  Random testing samples that space;
:class:`InterleavingExplorer` enumerates it exhaustively for small
scenarios, checking media recoverability after every complete run.

A scenario is a list of labelled *actions*; the explorer runs every
topological interleaving of the actions subject to per-track ordering
(actions of the same track keep their relative order, tracks are freely
interleaved) — i.e. all merges of the tracks.  For the Figure 1
neighbourhood (2 operations × k flushes × m backup steps) this is a few
thousand runs and takes well under a second each batch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.db import Database
from repro.errors import SimulatedCrash
from repro.sim.faults import FaultSpec


@dataclass
class ExplorationResult:
    interleavings: int = 0
    recovered: int = 0
    failures: List[Tuple[Tuple[str, ...], str]] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return not self.failures


def merges(tracks: Sequence[Sequence]) -> "itertools.chain":
    """All interleavings of the tracks preserving per-track order."""
    lengths = [len(track) for track in tracks]
    total = sum(lengths)
    if total == 0:
        yield ()
        return
    # Choose which track supplies each position: multiset permutations.
    labels = []
    for index, length in enumerate(lengths):
        labels.extend([index] * length)
    seen = set()
    for perm in itertools.permutations(labels):
        if perm in seen:
            continue
        seen.add(perm)
        cursors = [0] * len(tracks)
        sequence = []
        for track_index in perm:
            sequence.append(tracks[track_index][cursors[track_index]])
            cursors[track_index] += 1
        yield tuple(sequence)


class InterleavingExplorer:
    """Runs a scenario factory under every interleaving of its tracks.

    ``scenario_factory()`` must return ``(db, tracks, finish)`` where
    ``tracks`` is a list of lists of zero-argument callables (the
    ordered actions of each concurrent activity) and ``finish(db)``
    completes whatever remains (e.g. drains the backup and the cache)
    and may return the BackupDatabase media recovery should restore
    from (None → the engine's latest backup).

    ``fault_specs`` (optional) arms the same storage-level fault
    schedule (:class:`~repro.sim.faults.FaultSpec`) on every
    interleaving's database: transient faults must be absorbed by the
    retry machinery, and a :class:`~repro.errors.SimulatedCrash` fired
    mid-schedule turns that interleaving into a crash-recovery check
    instead of the media-recovery one.
    """

    def __init__(
        self,
        scenario_factory: Callable,
        fault_specs: Sequence[FaultSpec] = (),
    ):
        self.scenario_factory = scenario_factory
        self.fault_specs = tuple(fault_specs)

    def _make_scenario(self):
        db, tracks, finish = self.scenario_factory()
        if self.fault_specs:
            db.ensure_fault_plane().arm_all(self.fault_specs)
        return db, tracks, finish

    def explore(self, max_interleavings: Optional[int] = None) -> ExplorationResult:
        result = ExplorationResult()
        db_probe, tracks_probe, _ = self.scenario_factory()
        track_shapes = [
            [f"t{t}.{i}" for i in range(len(track))]
            for t, track in enumerate(tracks_probe)
        ]
        for schedule in merges(track_shapes):
            if (
                max_interleavings is not None
                and result.interleavings >= max_interleavings
            ):
                break
            result.interleavings += 1
            db, tracks, finish = self._make_scenario()
            actions: Dict[str, Callable] = {}
            for t, track in enumerate(tracks):
                for i, action in enumerate(track):
                    actions[f"t{t}.{i}"] = action
            try:
                try:
                    for label in schedule:
                        actions[label]()
                    backup = finish(db)
                except SimulatedCrash:
                    db.crash()
                    outcome = db.recover()
                else:
                    db.media_failure()
                    outcome = db.media_recover(backup=backup)
                if outcome.ok:
                    result.recovered += 1
                else:
                    result.failures.append(
                        (schedule, f"{len(outcome.diffs)} diffs")
                    )
            except Exception as exc:  # pragma: no cover - diagnostic path
                result.failures.append((schedule, repr(exc)))
        return result
