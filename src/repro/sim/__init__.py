"""Simulation support: metrics, the oracle shadow state, failure injection,
and the interleaved workload runner."""

from repro.sim.metrics import Metrics
from repro.sim.oracle import Oracle
from repro.sim.failure import CrashPlan, FailureInjector
from repro.sim.runner import InterleavedRun, RunResult

__all__ = [
    "Metrics",
    "Oracle",
    "CrashPlan",
    "FailureInjector",
    "InterleavedRun",
    "RunResult",
]
