"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``   reproduce every paper figure/table (``--quick`` available);
``fig5``      one Figure 5 measurement (``--kind``, ``--steps``, …);
``demo``      the quickstart flow with narration;
``selftest``  a fast end-to-end correctness pass (Figure 1 both ways,
              crash + media recovery on a mixed workload);
``bench``     the SIM-PERF hot-path benchmarks, appended to a persisted
              baseline file (``BENCH_hotpath.json``);
``faultsweep``  the storage-fault recoverability matrix: torn writes,
              transient I/O errors, and crash-at-every-I/O-point sweeps
              (``--seed``, ``--stride``, ``--quick``); exits non-zero if
              any scenario fails to recover.  ``--trace PATH`` re-runs
              every unrecovered case with a recording tracer and dumps
              the event streams to a JSONL file;
``trace``     summarize a captured JSONL trace (``--timeline`` renders
              the causal event timeline);
``scrub``     integrity scrub.  With no arguments, a self-check: build a
              demo database with backups, inject seeded bit rot into
              stable, backup, and log stores, and verify the scrubber
              detects 100% of the damage.  With ``--archive FILE`` /
              ``--log FILE``, audit shipped artifacts.  With ``--chain``,
              a chain-aware self-check: build an archive generation
              chain, verify manifest → generations → log ranges with
              per-generation ``bytes_scanned``, rot a middle generation,
              heal it, and re-verify.  Exits nonzero on fatal findings.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import analysis
from repro.harness import experiments
from repro.harness.reporting import format_table


def cmd_bench(args) -> int:
    from repro.harness import bench

    if args.compare:
        bench.compare_entries(
            args.output or bench.DEFAULT_OUTPUT,
            args.compare[0], args.compare[1],
        )
        return 0
    kwargs = {"label": args.label, "only": args.only, "note": args.note,
              "backend": args.backend}
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.output is not None:
        kwargs["output"] = args.output
    entry = bench.run_suite(**kwargs)
    if args.check:
        failures = bench.check_regressions(
            entry["results"],
            baseline_path=args.baseline or bench.DEFAULT_OUTPUT,
            baseline_label=args.baseline_label,
            threshold=(args.gate_threshold
                       if args.gate_threshold is not None
                       else bench.REGRESSION_THRESHOLD),
        )
        if failures:
            print(f"REGRESSION GATE FAILED: {', '.join(failures)}")
            return 1
        print("regression gate passed")
    return 0


def cmd_faultsweep(args) -> int:
    from repro.harness.faultsweep import dump_failure_traces, run_faultsweep

    report = run_faultsweep(
        seed=args.seed, stride=args.stride, quick=args.quick, log=print,
        backend=args.backend, data_dir=args.data_dir,
    )
    print(
        format_table(
            ["scenario", "recovered", "total", "faults", "retries"],
            [
                (r.name, r.recovered, r.total, r.faults_injected,
                 r.io_retries)
                for r in report.results
            ],
        )
    )
    verdict = "PASS" if report.all_recovered else "FAIL"
    print(
        f"faultsweep {verdict}: {report.recovered}/{report.total} "
        f"scenarios recovered (seed={report.seed})"
    )
    if args.trace and report.failures:
        dumped = dump_failure_traces(report, args.trace, log=print)
        print(f"wrote {dumped} failure trace(s) to {args.trace}")
    elif args.trace:
        print(f"no failures; {args.trace} not written")
    return 0 if report.all_recovered else 1


def cmd_trace(args) -> int:
    from repro.obs.summary import summarize
    from repro.obs.tracer import load_jsonl
    from repro.recovery.explain import render_timeline

    events = load_jsonl(args.file)
    if not events:
        print(f"{args.file}: empty trace")
        return 1
    print(summarize(events))
    if args.timeline:
        print()
        print(render_timeline(events))
    return 0


def _print_chain_report(report) -> None:
    for finding in report.findings:
        print(f"  [{finding.severity}] {finding.site}: {finding.detail}")
    if report.generations:
        print(format_table(
            ["generation", "kind", "pages", "bytes_scanned", "damaged"],
            [
                (g["backup_id"], g["kind"], g["pages"],
                 g["bytes_scanned"], len(g["damaged"]))
                for g in report.generations
            ],
        ))
    print(report.summary())


def cmd_scrub_chain(args) -> int:
    """``scrub --chain`` self-check: build a generation chain, verify it
    end-to-end (manifest → generations → log ranges), rot a middle
    generation, require detection, heal, and require a clean re-scrub
    plus a successful restore."""
    import random

    from repro import BackupConfig, Database, PhysicalWrite
    from repro.core.scrub import scrub_chain
    from repro.ids import PageId

    rng = random.Random(args.seed)
    db = Database(pages_per_partition=[32, 32], policy="general",
                  backend=args.backend, data_dir=args.data_dir)

    def burst(count):
        for _ in range(count):
            pid = PageId(rng.randrange(2), rng.randrange(32))
            db.execute(PhysicalWrite(pid, ("v", rng.randrange(10**6))))

    burst(48)
    archive = db.attach_archive(BackupConfig(steps=4))
    archive.run_full(tick=lambda: burst(2))
    burst(24)
    archive.run_incremental(tick=lambda: burst(2))
    burst(24)
    archive.run_incremental(tick=lambda: burst(2))

    clean = scrub_chain(archive)
    print("pre-injection chain scrub:")
    _print_chain_report(clean)
    if not clean.ok or clean.backups_scanned != 3:
        print("chain scrub selftest FAIL: clean chain reported damage")
        db.close()
        return 1

    middle = archive.chain()[1]
    victims = middle.copy_order()
    if not victims:
        print("chain scrub selftest FAIL: middle generation is empty")
        db.close()
        return 1
    victim = victims[rng.randrange(len(victims))]
    middle._rot_cell(victim)
    damaged = scrub_chain(archive)
    print(f"\nafter rotting {victim} in generation {middle.backup_id}:")
    _print_chain_report(damaged)
    if damaged.ok:
        print("chain scrub selftest FAIL: injected damage not detected")
        db.close()
        return 1

    heal = archive.heal_chain()
    print(f"\n{heal.summary()}")
    healed = scrub_chain(archive)
    _print_chain_report(healed)
    db.media_failure()
    outcome = db.media_recover_chain(archive.chain())
    db.close()
    if not healed.ok or not outcome.ok:
        print("chain scrub selftest FAIL: chain not clean after healing")
        return 1
    print("chain scrub selftest PASS: damage detected, healed, restored")
    return 0


def cmd_scrub(args) -> int:
    from repro.core.scrub import scrub_archive, scrub_database, scrub_log_file

    if args.chain:
        return cmd_scrub_chain(args)

    if args.archive or args.log_file:
        ok = True
        for path, scrub in (
            (args.archive, scrub_archive), (args.log_file, scrub_log_file)
        ):
            if not path:
                continue
            report = scrub(path)
            for finding in report.findings:
                print(f"  [{finding.severity}] {finding.site}: "
                      f"{finding.detail}")
            print(report.summary())
            ok = ok and report.ok
        return 0 if ok else 1

    # Self-check: build a store with backups, inject seeded bit rot into
    # every store, and require the scrubber to detect all of it.
    import random

    from repro import BackupConfig, Database, PhysicalWrite
    from repro.ids import PageId

    db = Database(pages_per_partition=[32], policy="general",
                  backend=args.backend, data_dir=args.data_dir)
    for slot in range(16):
        db.execute(PhysicalWrite(PageId(0, slot), ("record", slot)))
    db.start_backup(BackupConfig(steps=4))
    db.run_backup()
    clean = scrub_database(db)
    print(f"pre-injection: {clean.summary()}")
    if clean.findings:
        print("scrub selftest FAIL: clean store reported damage")
        return 1
    rng = random.Random(args.seed)
    injected = {
        "stable": db.stable._bitrot(rng),
        "backup": db.latest_backup()._bitrot(rng),
        "log": db.log._bitrot(rng),
    }
    report = scrub_database(db)
    for finding in report.findings:
        print(f"  [{finding.severity}] {finding.site}: {finding.detail}")
    print(report.summary())
    sites_found = {
        f.site for f in report.findings if f.severity == "fatal"
    }
    missed = [
        site for site, landed in injected.items()
        if landed and site not in sites_found
    ]
    db.close()
    if missed:
        print(
            "scrub selftest FAIL: injected damage not detected at: "
            + ", ".join(missed)
        )
        return 1
    print("scrub selftest PASS: all injected damage detected")
    return 0


def cmd_fig5(args) -> int:
    point = experiments.fig5_measure(
        args.kind, args.steps, pages=args.pages, seed=args.seed
    )
    print(
        format_table(
            ["kind", "steps", "measured", "analytic", "samples"],
            [
                (
                    point.kind,
                    point.steps,
                    point.measured,
                    point.analytic,
                    point.samples,
                )
            ],
        )
    )
    return 0


def cmd_figures(args) -> int:
    # Delegate to the example script's logic without importing examples/
    # (which is not a package): re-run its sections here.
    rows = analysis.figure5_series()
    print("Closed forms (Figure 5):")
    print(
        format_table(
            ["steps N", "general", "tree"],
            rows,
        )
    )
    print()
    for kind in ("naive", "engine"):
        outcome = experiments.fig1_scenario(kind)
        status = "OK" if outcome.recovered else "FAILED"
        print(f"FIG1 {kind:7s}: media recovery {status}")
    print()
    sweep = experiments.fig5_sweep(
        step_counts=(1, 2, 4, 8) if args.quick else (1, 2, 4, 8, 16, 32),
        seeds=(1,) if args.quick else (1, 2, 3),
        pages=512 if args.quick else 1024,
    )
    print("FIG5 (measured):")
    print(
        format_table(
            ["kind", "steps", "measured", "analytic"],
            [(p.kind, p.steps, p.measured, p.analytic) for p in sweep],
        )
    )
    return 0


def cmd_demo(args) -> int:
    from repro import BackupConfig, CopyOp, Database, PhysicalWrite
    from repro.ids import PageId

    db = Database(pages_per_partition=[64], policy="general")
    print("seeding pages and running logical operations...")
    for slot in range(8):
        db.execute(PhysicalWrite(PageId(0, slot), ("record", slot)))
    db.start_backup(BackupConfig(steps=4))
    counter = 0
    while db.backup_in_progress():
        db.backup_step(4)
        db.execute(CopyOp(PageId(0, counter % 8), PageId(0, 8 + counter % 40)))
        db.install_some(2)
        counter += 1
    print(f"backup: {db.latest_backup()}")
    print(f"Iw/oF records: {db.metrics.iwof_records}")
    db.media_failure()
    outcome = db.media_recover()
    print(outcome.summary())
    return 0 if outcome.ok else 1


def cmd_selftest(args) -> int:
    import random

    from repro.core.config import BackupConfig
    from repro.db import Database
    from repro.workloads import mixed_logical_workload

    failures = 0

    naive = experiments.fig1_scenario("naive")
    engine = experiments.fig1_scenario("engine")
    ok = (not naive.recovered) and engine.recovered
    print(f"[{'ok' if ok else 'FAIL'}] Figure 1: naive fails, engine works")
    failures += 0 if ok else 1

    db = Database(pages_per_partition=[64], policy="general")
    rng = random.Random(0)
    source = mixed_logical_workload(db.layout, seed=0, count=100_000)
    db.start_backup(BackupConfig(steps=8))
    while db.backup_in_progress():
        db.backup_step(4)
        db.execute(next(source))
        db.install_some(2, rng)
    db.crash()
    ok = db.recover().ok
    print(f"[{'ok' if ok else 'FAIL'}] crash recovery (mixed workload)")
    failures += 0 if ok else 1

    db.start_backup(BackupConfig(steps=8))
    backup = db.run_backup()
    db.media_failure()
    ok = db.media_recover(backup=backup).ok
    print(f"[{'ok' if ok else 'FAIL'}] media recovery (mixed workload)")
    failures += 0 if ok else 1

    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Lomet (SIGMOD 2000): high speed on-line "
            "backup with logical log operations"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce the paper figures")
    figures.add_argument("--quick", action="store_true")
    figures.set_defaults(fn=cmd_figures)

    fig5 = sub.add_parser("fig5", help="one Figure 5 measurement")
    fig5.add_argument("--kind", choices=["general", "tree"], default="tree")
    fig5.add_argument("--steps", type=int, default=8)
    fig5.add_argument("--pages", type=int, default=1024)
    fig5.add_argument("--seed", type=int, default=1)
    fig5.set_defaults(fn=cmd_fig5)

    demo = sub.add_parser("demo", help="quickstart flow")
    demo.set_defaults(fn=cmd_demo)

    selftest = sub.add_parser("selftest", help="fast end-to-end checks")
    selftest.set_defaults(fn=cmd_selftest)

    faultsweep = sub.add_parser(
        "faultsweep",
        help="fault-injection recoverability matrix (torn/transient/crash)",
    )
    faultsweep.add_argument("--seed", type=int, default=0)
    faultsweep.add_argument(
        "--stride", type=int, default=1,
        help="crash after every Nth I/O in the exhaustive sweep",
    )
    faultsweep.add_argument(
        "--quick", action="store_true",
        help="thin the crash sweep to ~2 dozen points",
    )
    faultsweep.add_argument(
        "--trace", metavar="PATH", default=None,
        help=(
            "on failure, re-run each unrecovered case with tracing and "
            "dump the event streams to this JSONL file"
        ),
    )
    faultsweep.add_argument(
        "--backend", choices=["memory", "file"], default="memory",
        help="storage backend the sweep runs against (file = the pinned "
        "smoke matrix on real files)",
    )
    faultsweep.add_argument(
        "--data-dir", default=None,
        help="directory for the file backend's per-run data dirs "
        "(default: system tmp)",
    )
    faultsweep.set_defaults(fn=cmd_faultsweep)

    trace = sub.add_parser(
        "trace",
        help="summarize a captured JSONL trace (see faultsweep --trace)",
    )
    trace.add_argument("file", help="JSONL trace file")
    trace.add_argument(
        "--timeline", action="store_true",
        help="also render the causal event timeline",
    )
    trace.set_defaults(fn=cmd_trace)

    scrub = sub.add_parser(
        "scrub",
        help="integrity scrub (self-check, or audit archive/log files)",
    )
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument(
        "--archive", metavar="FILE", default=None,
        help="audit an archived backup file",
    )
    scrub.add_argument(
        "--log", dest="log_file", metavar="FILE", default=None,
        help="audit a serialized log file",
    )
    scrub.add_argument(
        "--chain", action="store_true",
        help="chain-aware self-check: verify manifest -> generations -> "
        "log ranges end-to-end, rot a middle generation, heal, re-verify",
    )
    scrub.add_argument(
        "--backend", choices=["memory", "file"], default="memory",
        help="storage backend for the self-check database",
    )
    scrub.add_argument(
        "--data-dir", default=None,
        help="data directory for --backend file (default: fresh tmpdir)",
    )
    scrub.set_defaults(fn=cmd_scrub)

    from repro.harness.bench import BENCHMARKS

    bench = sub.add_parser(
        "bench",
        help="run the SIM-PERF hot-path benchmarks into a baseline file",
    )
    bench.add_argument("--rounds", type=int, default=None)
    bench.add_argument("--label", default="current")
    bench.add_argument("--output", default=None)
    bench.add_argument("--only", action="append", choices=sorted(BENCHMARKS))
    bench.add_argument(
        "--note", default=None,
        help="free-form annotation stored on the entry",
    )
    bench.add_argument(
        "--backend", choices=["memory", "file", "all"], default="memory",
        help="which benchmarks to run: simulated hot paths (memory, "
        "default), file-backed storage benchmarks (file), or both (all)",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("LABEL_A", "LABEL_B"), default=None,
        help="compare two labelled entries of the baseline file and exit",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="gate min_ms against --baseline; exit non-zero on regression",
    )
    bench.add_argument("--baseline", default=None)
    bench.add_argument("--baseline-label", default=None)
    bench.add_argument("--gate-threshold", type=float, default=None)
    bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
