"""``KVStore``: the adoption-grade key-value API over the whole stack.

What a downstream user actually wants: put/get/delete/range over a
durable store with online backup and one-call disaster recovery — built
entirely on this library (B+-tree with logically logged splits, tree
flush policy, online backup engine, media recovery).

>>> from repro.kvstore import KVStore
>>> store = KVStore.create(capacity_pages=128)
>>> store.put(1, "one")
>>> store.get(1)
'one'
>>> backup = store.online_backup(steps=4)
>>> store.simulate_media_failure()
>>> store.restore_from_backup()
>>> store.get(1)
'one'
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.btree import BTree
from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import ReproError
from repro.recovery.explain import RecoveryOutcome
from repro.storage.backup_db import BackupDatabase


class KVStore:
    """A durable ordered key-value store with online backup."""

    def __init__(self, db: Database, tree: BTree):
        self.db = db
        self.tree = tree

    # -------------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls,
        capacity_pages: int = 256,
        order: int = 16,
        policy: str = "tree",
        logging: str = "tree",
    ) -> "KVStore":
        db = Database(pages_per_partition=[capacity_pages], policy=policy)
        tree = BTree(db, order=order, logging=logging).create()
        return cls(db, tree)

    @classmethod
    def reopen(cls, db: Database, order: int = 16,
               logging: str = "tree") -> "KVStore":
        """Re-attach after recovery (reads the tree's meta page)."""
        tree = BTree.attach(db, order=order, logging=logging)
        return cls(db, tree)

    # --------------------------------------------------------------- KV API

    def put(self, key: Any, value: Any) -> None:
        self.tree.insert(key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        found = self.tree.search(key)
        return default if found is None else found

    def delete(self, key: Any) -> bool:
        return self.tree.delete(key)

    def range(self, low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs with ``low <= key <= high``, in order."""
        for key, value in self.tree.items():
            if key < low:
                continue
            if key > high:
                break
            yield key, value

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.tree.items()

    def __len__(self) -> int:
        return sum(1 for _ in self.tree.items())

    def __contains__(self, key: Any) -> bool:
        return self.tree.search(key) is not None

    # ---------------------------------------------------------------- backup

    def online_backup(
        self, steps: int = 8, pages_per_tick: int = 8,
        incremental: bool = False,
    ) -> BackupDatabase:
        """Take an online backup to completion; safe to call while the
        store keeps serving (drive manually via ``db`` for interleaved
        use — see the examples)."""
        cfg = BackupConfig(
            steps=steps, pages_per_tick=pages_per_tick,
            incremental=incremental,
        )
        self.db.start_backup(cfg)
        return self.db.run_backup(cfg)

    # -------------------------------------------------------------- failures

    def simulate_crash(self) -> RecoveryOutcome:
        """Crash the volatile state and recover; returns the outcome."""
        self.db.crash()
        outcome = self.db.recover()
        self.tree = BTree.attach(
            self.db, order=self.tree.order, logging=self.tree.logging
        )
        return outcome

    def simulate_media_failure(self) -> None:
        self.db.media_failure()

    def restore_from_backup(
        self, backup: Optional[BackupDatabase] = None
    ) -> RecoveryOutcome:
        """Media recovery: restore + roll forward, then re-attach."""
        outcome = self.db.media_recover(backup=backup)
        if not outcome.ok:
            raise ReproError(
                f"media recovery failed: {outcome.summary()}"
            )
        self.tree = BTree.attach(
            self.db, order=self.tree.order, logging=self.tree.logging
        )
        return outcome

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict:
        return {
            "keys": len(self),
            "height": self.tree.height(),
            "log_records": self.db.log.end_lsn,
            "log_bytes": self.db.log.bytes_logged(
                self.db.log.first_retained_lsn
            ),
            "backups": len(self.db.engine.completed),
            "iwof_records": self.db.metrics.iwof_records,
            "page_flushes": self.db.metrics.page_flushes,
        }

    def __repr__(self):
        return f"KVStore(keys={len(self)}, height={self.tree.height()})"
