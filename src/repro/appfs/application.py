"""Application recovery operations (sections 1.1 and 6.2; Lomet, ICDE 98).

An application's volatile state is itself a recoverable object, stored on
a page.  Three logical operations make its recovery cheap to log:

* ``Ex(A)``       — :class:`AppExec`: physiological read+write of A's
  state (execution between resource-manager calls);
* ``R(X, A)``     — :class:`AppRead`: A reads page X into its input
  buffer; neither X's nor A's value is logged.  X becomes a *potential
  successor* of A: A must be flushed before a later change to X is.
* ``W_L(A, X)``   — :class:`AppWrite`: A writes its output buffer to X;
  A's state is unchanged and X's new value is not logged.

Section 6.2's observation: with only application-read operations, every
write-graph predecessor is an application.  If applications occupy the
*last* positions of the backup order, the † property always holds and no
Iw/oF logging is ever incurred — verified by the E-APP benchmark.

:class:`ApplicationManager` places application-state pages in a chosen
partition/slot range (by default the tail of the last partition, i.e.
backed up last) and offers a small API over the raw operations.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.errors import OperationError, ReproError
from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    Operation,
    OperationKind,
)
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.registry import default_registry
from repro.ops.tree import WriteNew


def _app_exec(state: Any, tag: Any) -> Any:
    return ("exec", tag, state)


def _app_read(state: Any, input_value: Any) -> Any:
    return ("read", input_value, state)


if "app_exec" not in default_registry:
    default_registry.register("app_exec", _app_exec)


class AppExec(PhysiologicalWrite):
    """``Ex(A)``: execution step transforming A's state."""

    def __init__(self, app_page: PageId, tag: Any):
        super().__init__(app_page, "app_exec", (tag,))
        self.tag = tag

    def __repr__(self):
        return f"Ex({self.target!r}, {self.tag!r})"


class AppRead(Operation):
    """``R(X, A)``: read X into A's state.  Logs only identifiers."""

    kind = OperationKind.LOGICAL

    def __init__(self, source: PageId, app_page: PageId):
        if source == app_page:
            raise OperationError("application cannot R() its own state page")
        self.source = source
        self.app_page = app_page
        self._readset = frozenset([source, app_page])
        self._writeset = frozenset([app_page])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._readset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {
            self.app_page: _app_read(reads[self.app_page], reads[self.source])
        }

    def successor_pairs(self):
        # X's next update must flush after A: X succeeds A (section 6.2).
        return ((self.app_page, self.source),)

    def log_record_size(self) -> int:
        return RECORD_HEADER_BYTES + 2 * OBJECT_ID_BYTES

    def __repr__(self):
        return f"R({self.source!r}, {self.app_page!r})"


class AppWrite(WriteNew):
    """``W_L(A, X)``: write A's output buffer to X; A unchanged."""

    def __init__(self, app_page: PageId, target: PageId):
        super().__init__(app_page, target, "transform_tagged", ("output",))
        self.app_page = app_page
        self.target = target

    def __repr__(self):
        return f"W_L({self.app_page!r} -> {self.target!r})"


class ApplicationManager:
    """Allocates application-state pages and runs app operations.

    By default applications live at the *end* of the last partition so
    they are the last objects included in any backup — the placement
    section 6.2 shows eliminates Iw/oF logging for application reads.
    """

    def __init__(
        self,
        db,
        partition: Optional[int] = None,
        app_slots: int = 8,
        at_end: bool = True,
    ):
        self.db = db
        layout = db.layout
        self.partition = (
            layout.num_partitions - 1 if partition is None else partition
        )
        size = layout.partition_size(self.partition)
        if app_slots > size:
            raise ReproError("more application slots than partition pages")
        if at_end:
            self._slots = list(range(size - app_slots, size))
        else:
            self._slots = list(range(app_slots))
        self._apps: Dict[str, PageId] = {}

    def launch(self, name: str, initial_state: Any = ("init",)) -> PageId:
        """Create an application with a recoverable state page."""
        if name in self._apps:
            raise ReproError(f"application {name!r} already launched")
        if not self._slots:
            raise ReproError("no free application slots")
        page = PageId(self.partition, self._slots.pop())
        self._apps[name] = page
        self.db.execute(PhysicalWrite(page, initial_state))
        return page

    def page_of(self, name: str) -> PageId:
        try:
            return self._apps[name]
        except KeyError:
            raise ReproError(f"unknown application {name!r}") from None

    def state_of(self, name: str) -> Any:
        return self.db.read(self.page_of(name))

    def execute_step(self, name: str, tag: Any) -> None:
        self.db.execute(AppExec(self.page_of(name), tag))

    def read_into(self, name: str, source: PageId) -> None:
        self.db.execute(AppRead(source, self.page_of(name)))

    def write_out(self, name: str, target: PageId) -> None:
        self.db.execute(AppWrite(self.page_of(name), target))
