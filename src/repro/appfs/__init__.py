"""Application and file-system recovery domains (sections 1.1 and 6.2)."""

from repro.appfs.application import (
    AppExec,
    AppRead,
    AppWrite,
    ApplicationManager,
)
from repro.appfs.filesystem import FileSystem
from repro.appfs.runtime import (
    AppEmit,
    AppFeed,
    AppStep,
    RecoverableApplication,
    register_logic,
)

__all__ = [
    "AppExec",
    "AppRead",
    "AppWrite",
    "ApplicationManager",
    "FileSystem",
    "AppEmit",
    "AppFeed",
    "AppStep",
    "RecoverableApplication",
    "register_logic",
]
