"""File-system recovery (section 1.1's second example).

Files are recoverable objects (one page each — the paper's point is that
file *values* can be megabytes while logical log records hold only
identifiers).  A directory page maps names to slots via physiological
record operations, so the whole namespace is recoverable too.

* ``copy(X, Y)``  — :meth:`FileSystem.copy`: the canonical logical op;
* ``sort(X, Y)``  — :meth:`FileSystem.sort`: "this same operation form
  describes a sort, where X is the unsorted input and Y is the sorted
  output";
* writes          — physical (value logged, the page-oriented baseline)
  so the economy of the logical forms is measurable against them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite


class FileSystem:
    """A flat, recoverable namespace over one partition."""

    def __init__(self, db, partition: int = 0):
        self.db = db
        self.partition = partition
        size = db.layout.partition_size(partition)
        if size < 2:
            raise ReproError("filesystem partition needs >= 2 pages")
        self.directory_page = PageId(partition, 0)
        self._free: List[int] = list(range(1, size))

    # ------------------------------------------------------------- namespace

    def _directory(self) -> Tuple:
        value = self.db.read(self.directory_page)
        return value if isinstance(value, tuple) else ()

    def lookup(self, name: str) -> Optional[PageId]:
        for entry_name, slot in self._directory():
            if entry_name == name:
                return PageId(self.partition, slot)
        return None

    def listdir(self) -> List[str]:
        return sorted(name for name, _ in self._directory())

    def create(self, name: str) -> PageId:
        if self.lookup(name) is not None:
            raise ReproError(f"file {name!r} exists")
        if not self._free:
            raise ReproError("filesystem full")
        slot = self._free.pop(0)
        self.db.execute(
            PhysiologicalWrite(
                self.directory_page, "insert_record", (name, slot)
            )
        )
        page = PageId(self.partition, slot)
        self.db.execute(PhysicalWrite(page, ()))
        return page

    def remove(self, name: str) -> None:
        page = self._require(name)
        self.db.execute(
            PhysiologicalWrite(self.directory_page, "delete_record", (name,))
        )
        self._free.append(page.slot)

    def _require(self, name: str) -> PageId:
        page = self.lookup(name)
        if page is None:
            raise ReproError(f"no such file {name!r}")
        return page

    # ----------------------------------------------------------------- files

    def write(self, name: str, data: Any) -> None:
        """Overwrite a file's contents (physically logged)."""
        self.db.execute(PhysicalWrite(self._require(name), data))

    def append_record(self, name: str, key: Any, payload: Any) -> None:
        self.db.execute(
            PhysiologicalWrite(
                self._require(name), "insert_record", (key, payload)
            )
        )

    def read(self, name: str) -> Any:
        return self.db.read(self._require(name))

    def copy(self, src: str, dst: str) -> None:
        """``copy(X, Y)`` — only the two identifiers are logged."""
        src_page = self._require(src)
        dst_page = self.lookup(dst) or self.create(dst)
        self.db.execute(CopyOp(src_page, dst_page))

    def sort(self, src: str, dst: str) -> None:
        """``sort``: Y := sorted records of X; identifiers-only logging."""
        src_page = self._require(src)
        dst_page = self.lookup(dst) or self.create(dst)
        self.db.execute(
            GeneralLogicalOp(
                [src_page], [dst_page], "sort_records", per_target=False
            )
        )
