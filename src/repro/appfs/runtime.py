"""A resumable application runtime (the [8] use case behind §1.1/§6.2).

The application-recovery operations exist so that an *application* —
not just the database — survives failures: its volatile state is a
recoverable object, its interactions with data are logged logically,
and after a crash it resumes exactly where it was, without ever
re-reading its inputs or re-executing completed steps differently.

:class:`RecoverableApplication` wraps a user-supplied pure step
function::

    def step(state, input_value):
        return new_state, output_value_or_None

and drives it through the logged operations:

* ``feed(page)``   — ``R(X, A)``: read a data page into the state;
* ``advance(tag)`` — ``Ex(A)``: one execution step (the transform is
  the *registered* application step function, so replay re-runs it);
* ``emit(page)``   — ``W_L(A, X)``: write the pending output.

Because the step function is registered as a transform, every
``Ex``/``R``/``W_L`` record is replayable: crash recovery rebuilds the
application state page, and :meth:`RecoverableApplication.resume`
simply re-attaches — the program counter (step number) is part of the
recoverable state.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Mapping

from repro.errors import OperationError, ReproError
from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    TRANSFORM_TAG_BYTES,
    Operation,
    OperationKind,
)
from repro.ops.physical import PhysicalWrite
from repro.ops.registry import default_registry

# Application state layout: ("app", step_number, logic_name, user_state,
#                            pending_input, pending_output)
_TAG = "app"


def _unpack(state):
    if (
        isinstance(state, tuple)
        and len(state) == 6
        and state[0] == _TAG
    ):
        return state
    # Defensive default for replay-time garbage (overwritten later).
    return (_TAG, 0, "", None, None, None)


def _app_feed(reads_pair, app_page, source):
    app_state = _unpack(reads_pair[app_page])
    tag, step, logic, user, _, output = app_state
    return (_TAG, step, logic, user, reads_pair[source], output)


def _app_step(state, logic_name):
    tag, step, logic, user, pending_input, _ = _unpack(state)
    step_fn = _LOGIC_REGISTRY.get(logic_name)
    if step_fn is None:
        raise OperationError(f"unknown application logic {logic_name!r}")
    new_user, output = step_fn(user, pending_input)
    return (_TAG, step + 1, logic_name, new_user, None, output)


def _app_emit(state):
    return _unpack(state)[5]


if "app_step" not in default_registry:
    default_registry.register("app_step", _app_step)
if "app_emit" not in default_registry:
    default_registry.register("app_emit", _app_emit)

# Application logic functions are registered once, like transforms: the
# log stores only the logic NAME, and replay resolves it here — exactly
# the paper's economy (the application code is the "transform").
_LOGIC_REGISTRY: dict = {}


def register_logic(name: str, step_fn: Callable) -> None:
    """Register an application step function under a stable name."""
    if name in _LOGIC_REGISTRY and _LOGIC_REGISTRY[name] is not step_fn:
        raise ReproError(f"application logic {name!r} already registered")
    _LOGIC_REGISTRY[name] = step_fn


class AppFeed(Operation):
    """``R(X, A)`` carrying the input into the state's input buffer."""

    kind = OperationKind.LOGICAL

    def __init__(self, source: PageId, app_page: PageId):
        if source == app_page:
            raise OperationError("application cannot feed from itself")
        self.source = source
        self.app_page = app_page
        self._readset = frozenset([source, app_page])
        self._writeset = frozenset([app_page])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._readset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.app_page: _app_feed(reads, self.app_page, self.source)}

    def successor_pairs(self):
        return ((self.app_page, self.source),)

    def log_record_size(self) -> int:
        return RECORD_HEADER_BYTES + 2 * OBJECT_ID_BYTES

    def __repr__(self):
        return f"R({self.source!r}, {self.app_page!r})"


class AppStep(Operation):
    """``Ex(A)``: run the registered logic one step."""

    kind = OperationKind.PHYSIOLOGICAL

    def __init__(self, app_page: PageId, logic_name: str):
        self.app_page = app_page
        self.logic_name = logic_name
        self._rwset = frozenset([app_page])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._rwset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._rwset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.app_page: _app_step(reads[self.app_page],
                                         self.logic_name)}

    def log_record_size(self) -> int:
        return RECORD_HEADER_BYTES + OBJECT_ID_BYTES + TRANSFORM_TAG_BYTES

    def __repr__(self):
        return f"Ex({self.app_page!r}, {self.logic_name})"


class AppEmit(Operation):
    """``W_L(A, X)``: write the pending output buffer to page X."""

    kind = OperationKind.TREE_WRITE_NEW

    def __init__(self, app_page: PageId, target: PageId):
        if target == app_page:
            raise OperationError("application cannot emit onto itself")
        self.app_page = app_page
        self.target = target
        self._readset = frozenset([app_page])
        self._writeset = frozenset([target])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._readset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.target: _app_emit(reads[self.app_page])}

    def successor_pairs(self):
        return ((self.target, self.app_page),)

    def log_record_size(self) -> int:
        return RECORD_HEADER_BYTES + 2 * OBJECT_ID_BYTES

    def __repr__(self):
        return f"W_L({self.app_page!r} -> {self.target!r})"


class RecoverableApplication:
    """A long-running computation whose state survives any failure."""

    def __init__(self, db, app_page: PageId, logic_name: str):
        self.db = db
        self.app_page = app_page
        self.logic_name = logic_name

    @classmethod
    def launch(
        cls,
        db,
        app_page: PageId,
        logic_name: str,
        initial_state: Any = None,
    ) -> "RecoverableApplication":
        if logic_name not in _LOGIC_REGISTRY:
            raise ReproError(
                f"register_logic({logic_name!r}, ...) before launch"
            )
        db.execute(
            PhysicalWrite(
                app_page, (_TAG, 0, logic_name, initial_state, None, None)
            ),
            source=logic_name,
        )
        return cls(db, app_page, logic_name)

    @classmethod
    def resume(cls, db, app_page: PageId) -> "RecoverableApplication":
        """Re-attach after recovery; the state page carries everything."""
        state = _unpack(db.read(app_page))
        if not state[2]:
            raise ReproError(f"no application state at {app_page!r}")
        return cls(db, app_page, state[2])

    # ---------------------------------------------------------------- state

    def _state(self):
        return _unpack(self.db.read(self.app_page))

    @property
    def step_number(self) -> int:
        return self._state()[1]

    @property
    def user_state(self) -> Any:
        return self._state()[3]

    @property
    def pending_output(self) -> Any:
        return self._state()[5]

    # -------------------------------------------------------------- actions

    def feed(self, source: PageId) -> None:
        """R(X, A): load a data page into the input buffer."""
        self.db.execute(
            AppFeed(source, self.app_page), source=self.logic_name
        )

    def advance(self) -> None:
        """Ex(A): run one step of the registered logic."""
        self.db.execute(
            AppStep(self.app_page, self.logic_name),
            source=self.logic_name,
        )

    def emit(self, target: PageId) -> None:
        """W_L(A, X): write the pending output to a data page."""
        self.db.execute(
            AppEmit(self.app_page, target), source=self.logic_name
        )
