"""repro — reproduction of Lomet, "High Speed On-line Backup When Using
Logical Log Operations" (SIGMOD 2000).

Public API highlights:

* :class:`~repro.db.Database` — the full system: stable store, WAL, cache
  manager with write-graph flush ordering, online backup engine, crash
  and media recovery.
* Operation constructors in :mod:`repro.ops` — physical, physiological,
  general logical, tree (``MovRec``/``RmvRec``), and identity writes.
* Flush policies in :mod:`repro.core.policy` — general (section 3.5),
  tree (section 4.2), page-oriented (the conventional baseline).
* :mod:`repro.core.analysis` — the closed-form extra-logging model of
  section 5 (the curves of Figure 5).
"""

from repro.db import Database
from repro.ids import LSN, PageId
from repro.ops import (
    CopyOp,
    GeneralLogicalOp,
    IdentityWrite,
    MovRec,
    PhysicalWrite,
    PhysiologicalWrite,
    RmvRec,
    WriteNew,
)
from repro.errors import ReproError, UnrecoverableError
from repro.kvstore import KVStore
from repro.txn import Transaction, TransactionManager

__version__ = "1.0.0"

__all__ = [
    "Database",
    "PageId",
    "LSN",
    "PhysicalWrite",
    "PhysiologicalWrite",
    "GeneralLogicalOp",
    "CopyOp",
    "WriteNew",
    "MovRec",
    "RmvRec",
    "IdentityWrite",
    "KVStore",
    "Transaction",
    "TransactionManager",
    "ReproError",
    "UnrecoverableError",
    "__version__",
]
