"""repro — reproduction of Lomet, "High Speed On-line Backup When Using
Logical Log Operations" (SIGMOD 2000).

Public API highlights:

* :class:`~repro.db.Database` — the full system: stable store, WAL, cache
  manager with write-graph flush ordering, online backup engine, crash
  and media recovery.  Backups are configured with
  :class:`~repro.core.config.BackupConfig`; every recovery entry point
  returns a :class:`~repro.recovery.explain.RecoveryOutcome`.
* Operation constructors in :mod:`repro.ops` — physical, physiological,
  general logical, tree (``MovRec``/``RmvRec``), and identity writes.
* Fault injection in :mod:`repro.sim.faults` — a
  :class:`~repro.sim.faults.FaultPlane` of :class:`FaultSpec`\\ s
  injecting torn writes, transient I/O errors, crashes, and silent bit
  rot at every I/O boundary; tick-level schedules via
  :class:`~repro.sim.failure.CrashPlan` /
  :class:`~repro.sim.failure.IOFaultPlan`.
* Flush policies in :mod:`repro.core.policy` — general (section 3.5),
  tree (section 4.2), page-oriented (the conventional baseline).
* :mod:`repro.core.analysis` — the closed-form extra-logging model of
  section 5 (the curves of Figure 5).
* Observability in :mod:`repro.obs` — attach a :class:`~repro.obs.Tracer`
  (``Database(tracer=...)`` or ``db.attach_tracer``) to record structured
  events (flush decisions, Iw/oF writes, backup steps, fault injections,
  redo decisions, recovery phases) and per-phase timing histograms; the
  default :data:`~repro.obs.NULL_TRACER` keeps hot paths at no-op cost.
* The archive tier (see ``docs/ARCHIVE.md``) —
  :class:`~repro.archive.manager.ArchiveManager`
  (``db.attach_archive(...)``) keeps backups as generations of an
  incremental chain under a checksummed, atomically-replaced manifest:
  scheduled incremental sweeps, journal-then-swap compaction, a
  page-level healing ladder for bitrot-damaged generations, and
  point-in-time restore via ``db.restore_to_lsn``.  Retiring a
  generation that retained backups still chain through raises
  :class:`~repro.errors.ChainPinnedError`.
* Corruption robustness (see ``docs/ROBUSTNESS.md``) — every page image
  and log record carries a checksum envelope; damage surfaces as
  :class:`~repro.errors.CorruptPageError` /
  :class:`~repro.errors.CorruptLogRecordError`, recovery heals or
  quarantines it (``RecoveryOutcome.quarantined``), and
  ``python -m repro scrub`` audits every store offline.

``from repro import *`` exposes exactly ``__all__`` (checked by a
doctest in the test suite):

>>> import repro
>>> namespace = {}
>>> exec("from repro import *", namespace)
>>> sorted(k for k in namespace if k != "__builtins__") == sorted(
...     repro.__all__)
True
"""

from repro.archive import ArchiveManager, ChainHealReport
from repro.core.backup_engine import ParallelBackupEngine
from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import (
    ChainPinnedError,
    CorruptLogRecordError,
    CorruptPageError,
    FaultInjectionError,
    ManifestError,
    ReproError,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
    UnrecoverableError,
)
from repro.ids import LSN, PageId
from repro.kvstore import KVStore
from repro.ops import (
    CopyOp,
    GeneralLogicalOp,
    IdentityWrite,
    MovRec,
    PhysicalWrite,
    PhysiologicalWrite,
    RmvRec,
    WriteNew,
)
from repro.obs import NULL_TRACER, NullTracer, TraceEvent, Tracer
from repro.recovery.explain import RecoveryOutcome
from repro.sim.failure import CrashPlan, FailureInjector, IOFaultPlan
from repro.sim.faults import (
    FaultKind,
    FaultPlane,
    FaultSpec,
    IOPoint,
    RetryPolicy,
)
from repro.txn import Transaction, TransactionManager

__version__ = "1.1.0"

__all__ = [
    # The system
    "Database",
    "BackupConfig",
    "ParallelBackupEngine",
    "RecoveryOutcome",
    "PageId",
    "LSN",
    # Operations
    "PhysicalWrite",
    "PhysiologicalWrite",
    "GeneralLogicalOp",
    "CopyOp",
    "WriteNew",
    "MovRec",
    "RmvRec",
    "IdentityWrite",
    # Layers on top
    "KVStore",
    "Transaction",
    "TransactionManager",
    # Fault injection
    "FaultPlane",
    "FaultSpec",
    "FaultKind",
    "IOPoint",
    "RetryPolicy",
    "CrashPlan",
    "IOFaultPlan",
    "FailureInjector",
    # Archive tier
    "ArchiveManager",
    "ChainHealReport",
    # Observability
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    # Errors
    "ReproError",
    "UnrecoverableError",
    "FaultInjectionError",
    "TransientIOError",
    "TornWriteError",
    "SimulatedCrash",
    "CorruptPageError",
    "CorruptLogRecordError",
    "ChainPinnedError",
    "ManifestError",
    "__version__",
]
