"""Physiological write operations: ``W_PL(X)``.

A physiological operation reads and writes a single page, denoting a state
transition; its log record holds only a transform tag plus small arguments
(e.g. the record being inserted), not the page value (section 1.1).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Optional, Tuple

from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    TRANSFORM_TAG_BYTES,
    Operation,
    OperationKind,
    estimate_value_size,
)
from repro.ops.registry import TransformRegistry, default_registry


class PhysiologicalWrite(Operation):
    """Apply a registered transform to a single page: X := f(X, args)."""

    kind = OperationKind.PHYSIOLOGICAL

    def __init__(
        self,
        target: PageId,
        transform: str,
        args: Tuple = (),
        registry: Optional[TransformRegistry] = None,
    ):
        self.target = target
        self.transform = transform
        self.args = tuple(args)
        self._registry = registry or default_registry
        # Resolve eagerly so a typo fails at construction, not replay.
        self._fn = self._registry.resolve(transform)
        self._rwset = frozenset([target])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._rwset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._rwset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        old = reads[self.target]
        return {self.target: self._fn(old, *self.args)}

    def log_record_size(self) -> int:
        return (
            RECORD_HEADER_BYTES
            + OBJECT_ID_BYTES
            + TRANSFORM_TAG_BYTES
            + sum(estimate_value_size(a) for a in self.args)
        )

    def __repr__(self):
        return f"W_PL({self.target!r}, {self.transform})"
