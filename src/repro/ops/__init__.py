"""Log operation model (Table 1 of the paper).

Operations are pure, deterministic state transformers over pages:

* ``readset`` / ``writeset`` — the object sets of section 2.2;
* ``compute(reads)`` — produces new values for the writeset from the
  values read; during normal execution it is applied to the cache, during
  recovery it is replayed against the recovering state;
* ``log_record_size()`` — a byte estimate of what the operation's log
  record would occupy, which is what the logging-economy results compare.

The taxonomy:

========================  ===============================  ===============
Paper form                Class                            reads / writes
========================  ===============================  ===============
``W_P(X, log(v))``        :class:`PhysicalWrite`           ∅ → {X}
``W_PL(X)``               :class:`PhysiologicalWrite`      {X} → {X}
general logical           :class:`GeneralLogicalOp`        R → W (any)
``copy(X, Y)``            :class:`CopyOp`                  {X} → {Y}
``W_L(old, new)``         :class:`WriteNew` (tree op)      {old} → {new}
``MovRec(old, key, new)``  :class:`MovRec` (tree op)       {old} → {new}
``RmvRec(old, key)``      :class:`RmvRec`                  {old} → {old}
``W_IP(X, log(X))``       :class:`IdentityWrite`           ∅ → {X}
========================  ===============================  ===============
"""

from repro.ops.base import (
    Operation,
    OperationKind,
    estimate_value_size,
)
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.tree import MovRec, RmvRec, WriteNew, is_tree_operation
from repro.ops.identity import IdentityWrite
from repro.ops.registry import TransformRegistry, default_registry

__all__ = [
    "Operation",
    "OperationKind",
    "estimate_value_size",
    "PhysicalWrite",
    "PhysiologicalWrite",
    "GeneralLogicalOp",
    "CopyOp",
    "WriteNew",
    "MovRec",
    "RmvRec",
    "IdentityWrite",
    "is_tree_operation",
    "TransformRegistry",
    "default_registry",
]
