"""General logical operations: read and write multiple pages.

A log operation is *logical* if it can read one or more pages and write
(potentially different) multiple pages, logging only operand identifiers
(section 1.1).  ``copy(X, Y)`` — the paper's canonical example, covering
file copy and sort — is provided as a convenience subclass.

These are the operations that create flush-order dependencies: for
``copy(X, Y)``, Y must reach stable storage before a subsequent update of
X overwrites the value replay of the copy would need.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import OperationError
from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    TRANSFORM_TAG_BYTES,
    Operation,
    OperationKind,
    estimate_value_size,
)
from repro.ops.registry import TransformRegistry, default_registry


class GeneralLogicalOp(Operation):
    """reads R, writes W, where each written page gets f(reads, args).

    ``transform`` resolves to a function invoked once per written page as
    ``fn(reads_dict, *args)`` when ``per_target`` is False (all written
    pages get the same value), or ``fn(reads_dict, target, *args)`` when
    ``per_target`` is True.
    """

    kind = OperationKind.LOGICAL

    def __init__(
        self,
        reads: Iterable[PageId],
        writes: Iterable[PageId],
        transform: str,
        args: Tuple = (),
        per_target: bool = False,
        registry: Optional[TransformRegistry] = None,
    ):
        self._readset = frozenset(reads)
        self._writeset = frozenset(writes)
        if not self._writeset:
            raise OperationError("a logical operation must write something")
        self.transform = transform
        self.args = tuple(args)
        self.per_target = per_target
        self._registry = registry or default_registry
        self._fn = self._registry.resolve(transform)

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._readset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        # Registry convention: single-source transforms take the bare
        # value; transforms registered with ``multi=True`` always take
        # the {page: value} mapping, regardless of read-set size.
        read_values: Any = {pid: reads[pid] for pid in self._readset}
        if len(self._readset) == 1 and not self._registry.is_multi(
            self.transform
        ):
            read_values = next(iter(read_values.values()))
        if self.per_target:
            return {
                pid: self._fn(read_values, pid, *self.args)
                for pid in self._writeset
            }
        value = self._fn(read_values, *self.args)
        return {pid: value for pid in self._writeset}

    def log_record_size(self) -> int:
        return (
            RECORD_HEADER_BYTES
            + TRANSFORM_TAG_BYTES
            + OBJECT_ID_BYTES * (len(self._readset) + len(self._writeset))
            + sum(estimate_value_size(a) for a in self.args)
        )

    def __repr__(self):
        return (
            f"Logical({self.transform}, "
            f"R={sorted(self._readset)}, W={sorted(self._writeset)})"
        )


class CopyOp(GeneralLogicalOp):
    """``copy(X, Y)``: Y := value of X.  Only identifiers are logged."""

    def __init__(self, source: PageId, target: PageId):
        if source == target:
            raise OperationError("copy source and target must differ")
        self.source = source
        self.target = target
        super().__init__(
            reads=[source],
            writes=[target],
            transform="copy_value",
            per_target=False,
        )

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.target: reads[self.source]}

    def __repr__(self):
        return f"copy({self.source!r} -> {self.target!r})"
