"""Named transforms for physiological and logical operations.

Logical and physiological log records contain a *transform tag* plus small
arguments, never the data values themselves — that is the whole economy of
logical logging (section 1.1).  At replay time the tag is resolved against
this registry, mirroring how a real system dispatches on a log record type
code.

A transform takes ``(reads, args)`` where ``reads`` maps PageId → value,
and returns the new-value mapping for the operation's writeset.  For
single-target forms the convention is that helpers below adapt simpler
callables.

Record values (used by the B-tree and record-page transforms) are tuples of
``(key, payload)`` pairs kept sorted by key.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from repro.errors import OperationError

Transform = Callable[..., Any]


class TransformRegistry:
    """A name → transform function table.

    ``multi=True`` marks a transform that takes the whole
    ``{page: value}`` mapping as its first argument even when the
    operation reads a single page; single-source transforms receive the
    bare value.
    """

    def __init__(self):
        self._transforms: Dict[str, Transform] = {}
        self._multi: Dict[str, bool] = {}

    def register(self, name: str, fn: Transform, multi: bool = False) -> None:
        if name in self._transforms:
            raise OperationError(f"transform {name!r} already registered")
        self._transforms[name] = fn
        self._multi[name] = multi

    def resolve(self, name: str) -> Transform:
        try:
            return self._transforms[name]
        except KeyError:
            raise OperationError(f"unknown transform {name!r}") from None

    def is_multi(self, name: str) -> bool:
        return self._multi.get(name, False)

    def __contains__(self, name: str) -> bool:
        return name in self._transforms

    def names(self):
        return sorted(self._transforms)


# --------------------------------------------------------------------------
# Record-tuple helpers (shared by the B-tree and the record-page transforms).
# --------------------------------------------------------------------------


def as_records(value: Any) -> Tuple[Tuple[Any, Any], ...]:
    """Interpret a page value as a sorted record tuple; defensive.

    Replay can encounter garbage values (an unexposed page whose stale
    value will be overwritten later in the log); returning an empty record
    set instead of raising keeps replay running, and correctness is judged
    at the end against the oracle.
    """
    if value is None:
        return ()
    if isinstance(value, tuple) and all(
        isinstance(r, tuple) and len(r) == 2 for r in value
    ):
        return value
    return ()


def insert_record(records: Tuple, key: Any, payload: Any) -> Tuple:
    kept = tuple(r for r in records if r[0] != key)
    return tuple(sorted(kept + ((key, payload),)))


def delete_record(records: Tuple, key: Any) -> Tuple:
    return tuple(r for r in records if r[0] != key)


def split_high(records: Tuple, split_key: Any) -> Tuple:
    """Records with key strictly greater than ``split_key``."""
    return tuple(r for r in records if r[0] > split_key)


def split_low(records: Tuple, split_key: Any) -> Tuple:
    """Records with key less than or equal to ``split_key``."""
    return tuple(r for r in records if r[0] <= split_key)


# --------------------------------------------------------------------------
# Built-in transforms.
# --------------------------------------------------------------------------


def _single_read(reads: Mapping) -> Any:
    if len(reads) != 1:
        raise OperationError(
            f"transform expected exactly one read value, got {len(reads)}"
        )
    return next(iter(reads.values()))


def make_default_registry() -> TransformRegistry:
    reg = TransformRegistry()

    # Physiological (single page read+write): fn(old_value, *args) -> value.
    reg.register("increment", lambda old, delta=1: (old or 0) + delta)
    reg.register(
        "append",
        lambda old, item: (old if isinstance(old, tuple) else ()) + (item,),
    )
    reg.register(
        "insert_record",
        lambda old, key, payload: insert_record(as_records(old), key, payload),
    )
    reg.register(
        "delete_record",
        lambda old, key: delete_record(as_records(old), key),
    )
    reg.register(
        "remove_high",
        lambda old, split_key: split_low(as_records(old), split_key),
    )
    reg.register(
        "stamp",
        lambda old, tag: ("stamped", tag, old),
    )

    # Logical single-source (read src, write dst): fn(src_value, *args).
    reg.register("copy_value", lambda src: src)
    reg.register(
        "take_high",
        lambda src, split_key: split_high(as_records(src), split_key),
    )
    reg.register(
        "sort_records",
        lambda src: tuple(sorted(as_records(src))),
    )
    reg.register(
        "transform_tagged",
        lambda src, tag: ("derived", tag, src),
    )

    # Multi-source logical: fn(reads_dict, *args) -> value (merge forms).
    reg.register(
        "concat_sorted",
        lambda reads: tuple(
            v for _, v in sorted(reads.items()) for v in as_records(v)
        ),
        multi=True,
    )
    return reg


default_registry = make_default_registry()
