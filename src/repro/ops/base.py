"""Base class and shared helpers for log operations."""

from __future__ import annotations

import abc
import enum
from typing import Any, FrozenSet, Mapping

from repro.errors import OperationError
from repro.ids import PageId

# Byte-cost model for log records, used by the logging-economy benchmark.
# These mirror the paper's back-of-envelope numbers: "logging an identifier
# (unlikely to be larger than 16 bytes)".
RECORD_HEADER_BYTES = 24  # LSN, type, length, transaction id
OBJECT_ID_BYTES = 8
TRANSFORM_TAG_BYTES = 4


class OperationKind(enum.Enum):
    """Classification used by cache/backup policy decisions."""

    PHYSICAL = "physical"
    PHYSIOLOGICAL = "physiological"
    LOGICAL = "logical"
    TREE_WRITE_NEW = "tree_write_new"
    IDENTITY = "identity"


def estimate_value_size(value: Any) -> int:
    """Rough byte size of a page value for the log-volume cost model."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, str)):
        return len(value)
    if isinstance(value, (tuple, frozenset)):
        return 8 + sum(estimate_value_size(v) for v in value)
    # Unknown types get a conservative flat charge.
    return 64


class Operation(abc.ABC):
    """A logged, redoable state-transition over pages.

    Subclasses must be *pure*: ``compute`` may not depend on anything but
    the supplied read values and the operation's own (immutable)
    parameters.  This is what makes replay during redo recovery possible.
    """

    kind: OperationKind

    @property
    @abc.abstractmethod
    def readset(self) -> FrozenSet[PageId]:
        """Pages the operation reads."""

    @property
    @abc.abstractmethod
    def writeset(self) -> FrozenSet[PageId]:
        """Pages the operation writes."""

    @abc.abstractmethod
    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        """New values for every page in ``writeset``, from read values.

        ``reads`` must supply a value for every page in ``readset``.
        """

    @abc.abstractmethod
    def log_record_size(self) -> int:
        """Estimated log record size in bytes (see the module cost model)."""

    # --------------------------------------------------------------- helpers

    @property
    def is_page_oriented(self) -> bool:
        """True for the traditional forms that touch exactly one page."""
        return self.kind in (
            OperationKind.PHYSICAL,
            OperationKind.PHYSIOLOGICAL,
            OperationKind.IDENTITY,
        )

    @property
    def is_blind(self) -> bool:
        """True when the operation reads nothing (physical/identity writes).

        Blind writes are what allow the refined write graph rW to mark a
        previously written object *unexposed* (section 2.4).
        """
        return not self.readset

    def successor_pairs(self):
        """(predecessor_page, successor_page) pairs this op induces.

        For an operation that reads ``r`` and writes ``w`` (w ≠ r), ``r``
        becomes a *potential successor* of ``w`` in the write graph: r's
        next update must flush after w (section 4.1).  Tree write-new
        operations return ``[(new, old)]``; the application-read operation
        of section 6.2 returns ``[(A, X)]``.  Page-oriented operations
        return nothing.
        """
        return ()

    def check_reads(self, reads: Mapping[PageId, Any]) -> None:
        for pid in self.readset:
            if pid not in reads:
                missing = self.readset - set(reads)
                raise OperationError(
                    f"{self!r} is missing read values for {sorted(missing)}"
                )

    def check_result(self, result: Mapping[PageId, Any]) -> None:
        writeset = self.writeset
        if len(result) == len(writeset):
            for pid in result:
                if pid not in writeset:
                    break
            else:
                return
        raise OperationError(
            f"{self!r} computed values for {sorted(result)} "
            f"but its writeset is {sorted(self.writeset)}"
        )

    def apply(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        """``compute`` with read/write-set validation.

        The validation is inlined (rather than delegating to
        ``check_reads``/``check_result``) because ``apply`` runs twice per
        executed operation — once in the cache manager, once in the
        oracle — and the call overhead is measurable.
        """
        for pid in self.readset:
            if pid not in reads:
                self.check_reads(reads)
        result = self.compute(reads)
        writeset = self.writeset
        if len(result) == len(writeset):
            for pid in result:
                if pid not in writeset:
                    self.check_result(result)
            return result
        self.check_result(result)
        return result
