"""Cache-manager identity writes: ``W_IP(X, log(X))`` (section 2.5).

An identity write "writes" a page without changing it and is logged as a
*physical* operation carrying the page's current value.  It is the
library's implementation of the paper's first key insight:

    an object can be written to the log as a substitute for being flushed
    to S or B.  The object version needed for media recovery is then
    available from the (media) log.

Identity writes are injected by the cache manager, never by transactions,
and are the building block of Install-without-Flush (section 3.2).
"""

from __future__ import annotations

from typing import Any

from repro.ids import PageId
from repro.ops.base import OperationKind
from repro.ops.physical import PhysicalWrite


class IdentityWrite(PhysicalWrite):
    """Physical re-write of ``target`` with its current value."""

    kind = OperationKind.IDENTITY

    def __init__(self, target: PageId, current_value: Any):
        super().__init__(target, current_value)

    def __repr__(self):
        return f"W_IP({self.target!r})"
