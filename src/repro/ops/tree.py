"""Tree operations (section 4): the constrained logical-operation class.

A tree operation either

1. is page-oriented — possibly read an existing page ``old`` and write
   ``old`` (``W_PL(old)`` or ``W_P(old, log(v))``); or
2. is *write-new* — read an existing page ``old`` and write a **new** page
   ``new`` (an object not previously updated): ``W_L(old, new)``.

Because a page can be "new" only the first time it is updated, the write
graph of a tree-operation log is a forest: each node has one var, edges run
new → old, successor sets never grow after first update (section 4.1).

The canonical pair is the B-tree split:

* ``MovRec(old, key, new)`` — read ``old``, write ``new`` with the records
  whose key exceeds ``key``.  No record data is logged.
* ``RmvRec(old, key)`` — physiological removal of the moved records from
  ``old``.  MovRec must precede RmvRec in the log.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Optional, Tuple

from repro.errors import OperationError
from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    TRANSFORM_TAG_BYTES,
    Operation,
    OperationKind,
    estimate_value_size,
)
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.registry import TransformRegistry, default_registry, split_high, as_records


class WriteNew(Operation):
    """``W_L(old, new)``: read ``old``, initialize the new page ``new``.

    The generic tree write-new form; ``new := f(value(old), args)``.
    """

    kind = OperationKind.TREE_WRITE_NEW

    def __init__(
        self,
        old: PageId,
        new: PageId,
        transform: str = "copy_value",
        args: Tuple = (),
        registry: Optional[TransformRegistry] = None,
    ):
        if old == new:
            raise OperationError(
                "a write-new tree operation may not update the page it reads"
            )
        self.old = old
        self.new = new
        self.transform = transform
        self.args = tuple(args)
        self._registry = registry or default_registry
        self._fn = self._registry.resolve(transform)
        self._readset = frozenset([old])
        self._writeset = frozenset([new])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return self._readset

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.new: self._fn(reads[self.old], *self.args)}

    def log_record_size(self) -> int:
        return (
            RECORD_HEADER_BYTES
            + TRANSFORM_TAG_BYTES
            + 2 * OBJECT_ID_BYTES
            + sum(estimate_value_size(a) for a in self.args)
        )

    def successor_pairs(self):
        # old's next update must flush after new: old succeeds new.
        return ((self.new, self.old),)

    def __repr__(self):
        return f"W_L({self.old!r} -> {self.new!r}, {self.transform})"


class MovRec(WriteNew):
    """B-tree split, step 1: move high records from ``old`` to ``new``.

    Logs only (old, key, new) — the moved record data never hits the log.
    """

    def __init__(self, old: PageId, split_key: Any, new: PageId):
        self.split_key = split_key
        super().__init__(old, new, transform="take_high", args=(split_key,))

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.new: split_high(as_records(reads[self.old]), self.split_key)}

    def __repr__(self):
        return f"MovRec({self.old!r}, key={self.split_key!r}, {self.new!r})"


class RmvRec(PhysiologicalWrite):
    """B-tree split, step 2: delete the moved records from ``old``."""

    def __init__(self, old: PageId, split_key: Any):
        self.split_key = split_key
        super().__init__(old, transform="remove_high", args=(split_key,))

    def __repr__(self):
        return f"RmvRec({self.target!r}, key={self.split_key!r})"


def is_tree_operation(op: Operation) -> bool:
    """True iff ``op`` fits the tree-operation class of section 4.1.

    Page-oriented operations (physical, physiological, identity writes)
    are included in the class by the paper's modified definition; the only
    logical form admitted is write-new.
    """
    if op.is_page_oriented:
        return True
    return op.kind is OperationKind.TREE_WRITE_NEW
