"""Physical write operations: ``W_P(X, log(v))``.

A physical operation updates exactly one page, reads nothing, and carries
the full new value in its log record — the most expensive form to log and
the simplest to recover (section 1.1).  Being blind, a physical write also
makes the target's prior value *unexposed*, which the refined write graph
rW exploits (section 2.4).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping

from repro.ids import PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    Operation,
    OperationKind,
    estimate_value_size,
)
from repro.storage.page import check_value


class PhysicalWrite(Operation):
    """Set page ``target`` to ``value`` taken from the log record."""

    kind = OperationKind.PHYSICAL

    def __init__(self, target: PageId, value: Any):
        self.target = target
        self.value = check_value(value)
        self._writeset = frozenset([target])

    @property
    def readset(self) -> FrozenSet[PageId]:
        return frozenset()

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return self._writeset

    def compute(self, reads: Mapping[PageId, Any]) -> Mapping[PageId, Any]:
        return {self.target: self.value}

    def log_record_size(self) -> int:
        return (
            RECORD_HEADER_BYTES
            + OBJECT_ID_BYTES
            + estimate_value_size(self.value)
        )

    def __repr__(self):
        return f"W_P({self.target!r})"
