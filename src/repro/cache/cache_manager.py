"""The cache manager (sections 2.4, 2.5, 3.3, 3.5).

The cache manager owns the volatile state: cached pages, the dynamic
write graph over uninstalled operations, recLSN bookkeeping, the
per-partition backup progress values and their latches, and the tree-op
successor metadata.  Its responsibilities:

* **execute** logged operations against the cache;
* **install** write-graph nodes by atomically flushing their ``vars`` in
  write-graph order — consulting the flush policy under the backup latch
  and injecting Iw/oF identity writes when the policy requires them
  (the cache management algorithm of section 3.5);
* **identity-install** hot pages — Iw/oF applied to S itself (the second
  observation of section 5.3): installing a page's operations by logging
  its value without flushing it;
* **crash**: drop all volatile state, so recovery can be exercised.

The backup engines manipulate ``progress`` only through
:meth:`progress_transaction`, which takes the partition's latch in
exclusive mode — the synchronization protocol of section 3.4.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.core.latch import BackupLatch
from repro.core.policy import FlushPolicy, GeneralOpsPolicy
from repro.core.progress import PartitionProgress
from repro.core.tree_meta import TreeOpTracker
from repro.errors import CacheError, FlushOrderError, PageNotFoundError
from repro.ids import LSN, PageId
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER
from repro.ops.base import Operation
from repro.ops.identity import IdentityWrite
from repro.recovery.refined_write_graph import DynamicNode, DynamicWriteGraph
from repro.sim.faults import with_retries
from repro.sim.metrics import Metrics
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag
from repro.wal.truncation import RecLSNTracker


@dataclass
class CachedPage:
    value: Any
    page_lsn: LSN
    dirty: bool


class CacheManager:
    def __init__(
        self,
        stable: StableDatabase,
        log: LogManager,
        policy: Optional[FlushPolicy] = None,
        metrics: Optional[Metrics] = None,
        initial_value: Any = None,
        tracer=None,
    ):
        self.stable = stable
        self.log = log
        self.layout: Layout = stable.layout
        self.policy = policy or GeneralOpsPolicy()
        self.metrics = metrics or Metrics()
        self.initial_value = initial_value
        self.tracer = tracer or NULL_TRACER

        self._cache: Dict[PageId, CachedPage] = {}
        self.graph = DynamicWriteGraph()
        self.rec = RecLSNTracker()
        self.tree = TreeOpTracker(self.layout)
        self.latches: Dict[int, BackupLatch] = {
            p: BackupLatch(p) for p in range(self.layout.num_partitions)
        }
        for latch in self.latches.values():
            latch.tracer = self.tracer
        self.progress: Dict[int, PartitionProgress] = {
            p: PartitionProgress(p, self.layout.partition_size(p))
            for p in range(self.layout.num_partitions)
        }
        # Incremental backups install this predicate: pages for which it
        # returns False will NOT be copied even while their position is
        # pending, so Pend gives no guarantee for them (see policy module).
        self.copy_set_filter: Optional[Callable[[PageId], bool]] = None
        # Instant restore installs this callback: every cache-missed read
        # and every about-to-be-written page passes through it first, so
        # traffic mid-restore only ever observes fully recovered pages.
        self.restore_hook: Optional[Callable[[PageId], Any]] = None
        # The log scan start a post-crash recovery would use; advanced on
        # every install, conceptually persisted in checkpoint records.
        self.stable_truncation_point: LSN = 1

    def attach_tracer(self, tracer) -> None:
        """Wire a tracer (see :mod:`repro.obs`) into the cache manager
        and its latches; flush decisions, Iw/oF writes, and latch
        acquisitions emit typed events from now on."""
        self.tracer = tracer
        for latch in self.latches.values():
            latch.tracer = tracer

    # ------------------------------------------------------------ page cache

    def read_page(self, page_id: PageId) -> Any:
        page = self._cache.get(page_id)
        if page is not None:
            self.metrics.cache_hits += 1
            return page.value
        self.metrics.cache_misses += 1
        if self.restore_hook is not None:
            # Lazy instant restore: materialize the page on stable first.
            self.restore_hook(page_id)
        version = with_retries(
            lambda: self.stable.read_page(page_id), metrics=self.metrics
        )
        self._cache[page_id] = CachedPage(
            version.value, version.page_lsn, dirty=False
        )
        return version.value

    def cached(self, page_id: PageId) -> Optional[CachedPage]:
        return self._cache.get(page_id)

    def is_dirty(self, page_id: PageId) -> bool:
        page = self._cache.get(page_id)
        return page is not None and page.dirty

    def dirty_pages(self) -> Set[PageId]:
        return {pid for pid, page in self._cache.items() if page.dirty}

    def evict(self, page_id: PageId) -> None:
        """Drop a clean page from the cache (flush first if dirty)."""
        page = self._cache.get(page_id)
        if page is None:
            return
        if page.dirty:
            self.flush_page(page_id, cascade=True)
        self._cache.pop(page_id, None)

    # -------------------------------------------------------------- execute

    def execute(
        self,
        op: Operation,
        flags: RecordFlag = RecordFlag.NONE,
        source: str = "",
    ) -> LogRecord:
        """Run one operation: read pages, log it, apply to the cache."""
        cache = self._cache
        metrics = self.metrics
        if self.restore_hook is not None:
            # Restore every page this operation will write *before* it
            # applies: a blind write to an unrestored page must win over
            # any later background restore of the stale backup version.
            for pid in op.writeset:
                self.restore_hook(pid)
        reads = {}
        for pid in op.readset:
            page = cache.get(pid)
            if page is not None:
                metrics.cache_hits += 1
                reads[pid] = page.value
            else:
                reads[pid] = self.read_page(pid)
        record = with_retries(
            lambda: self.log.append(op, flags, source=source),
            metrics=metrics,
        )
        result = op.apply(reads)
        lsn = record.lsn
        rec = self.rec
        for pid, value in result.items():
            # Inlined _write_cached: one call per executed operation.
            page = cache.get(pid)
            if page is None:
                # Blind write of an uncached page: no read needed.
                cache[pid] = CachedPage(value, lsn, dirty=True)
                rec.mark_dirty(pid, lsn)
                continue
            if not page.dirty:
                rec.mark_dirty(pid, lsn)
            page.value = value
            page.page_lsn = lsn
            page.dirty = True
        self.graph.add_operation(record)
        self.tree.observe(record)
        return record

    # ----------------------------------------------------------- installing

    def installable_nodes(self) -> List[DynamicNode]:
        return self.graph.installable_nodes()

    def install_node(self, node: DynamicNode) -> None:
        """Install one write-graph node: the section 3.5 algorithm.

        Takes the backup latch(es) shared, classifies each page of
        vars(n) against backup progress, injects Iw/oF identity writes
        where required, then atomically flushes vars(n) to S.
        """
        if self.graph.predecessors(node):
            raise FlushOrderError(
                f"node {node.node_id} has uninstalled predecessors"
            )
        vars_snapshot = sorted(node.vars)
        if not vars_snapshot:
            self.graph.install_node(node)
            self.metrics.node_installs += 1
            self._drain_empty_nodes()
            self._advance_truncation()
            return

        if len(vars_snapshot) == 1:
            partitions = [vars_snapshot[0].partition]
        else:
            partitions = sorted({pid.partition for pid in vars_snapshot})
        for partition in partitions:
            self.latches[partition].acquire_shared()
        try:
            iwof_pages = self._decide_iwof(vars_snapshot)
            identity_nodes = [
                self._append_identity(
                    pid, RecordFlag.CM_INJECTED | RecordFlag.IWOF
                )
                for pid in iwof_pages
            ]
            with_retries(self.log.force, metrics=self.metrics)
            cached_pages = []
            versions: Dict[PageId, PageVersion] = {}
            for pid in vars_snapshot:
                page = self._cache.get(pid)
                if page is None:
                    raise CacheError(
                        f"page {pid!r} in vars of node {node.node_id} "
                        "is not cached"
                    )
                self.log.assert_wal(pid, page.page_lsn)
                cached_pages.append((pid, page))
                versions[pid] = PageVersion(page.value, page.page_lsn)
            with_retries(
                lambda: self.stable.write_pages_atomically(versions),
                metrics=self.metrics,
            )
        finally:
            for partition in reversed(partitions):
                self.latches[partition].release_shared()

        # Volatile bookkeeping after the stable writes succeeded.
        self.graph.install_node(node)
        for identity_node in identity_nodes:
            # The identity write's obligation is met by the flush above
            # (the flushed page carries the identity write's LSN).
            resolved = self.graph.holder_of(next(iter(identity_node.vars)))
            if resolved is not None and resolved.node_id == identity_node.node_id:
                self.graph.install_node(resolved)
        for pid, page in cached_pages:
            page.dirty = False
            self.rec.mark_installed(pid)
            self.tree.clear(pid)
        self.metrics.node_installs += 1
        self.metrics.page_flushes += len(vars_snapshot)
        if len(vars_snapshot) > 1:
            self.metrics.multi_page_installs += 1
        self._drain_empty_nodes()
        self._advance_truncation()

    def _decide_iwof(self, pages: Sequence[PageId]) -> List[PageId]:
        """Classify each page under the (held) latch; return Iw/oF set."""
        iwof: List[PageId] = []
        tracer = self.tracer
        for pid in pages:
            progress = self.progress[pid.partition]
            if not progress.active:
                # Idle partition: D == P == 0, so every page classifies
                # Pend and "Pend means flush plainly" under every policy
                # (see repro.core.progress) — skip the policy consult.
                continue
            will_copy = True
            if self.copy_set_filter is not None:
                will_copy = self.copy_set_filter(pid)
            decision = self.policy.decide(
                self.layout.position(pid),
                progress,
                self.tree.meta(pid),
                will_be_copied=will_copy,
            )
            self.metrics.record_decision(
                decision.region.value,
                decision.needs_iwof,
                step=progress.steps_taken,
            )
            if tracer.enabled:
                tracer.emit(
                    ev.FLUSH_DECISION,
                    page=str(pid),
                    region=decision.region.value,
                    step=progress.steps_taken,
                    needs_iwof=decision.needs_iwof,
                    will_copy=will_copy,
                )
            if decision.needs_iwof:
                iwof.append(pid)
        return iwof

    def _append_identity(
        self, page_id: PageId, flags: RecordFlag
    ) -> DynamicNode:
        page = self._cache.get(page_id)
        if page is None:
            raise CacheError(f"identity write of uncached page {page_id!r}")
        op = IdentityWrite(page_id, page.value)
        record = with_retries(
            lambda: self.log.append(op, flags), metrics=self.metrics
        )
        identity_node = self.graph.add_operation(record)
        page.page_lsn = record.lsn
        # The page's pending updates are now recoverable from this record:
        # its recLSN advances, truncating the log like a flush would.
        self.rec.mark_redirtied(page_id, record.lsn)
        self.metrics.iwof_records += 1
        self.metrics.iwof_bytes += record.size_bytes
        if self.tracer.enabled:
            self.tracer.emit(
                ev.IWOF_WRITE,
                page=str(page_id),
                lsn=record.lsn,
                flags=str(flags),
                bytes=record.size_bytes,
            )
        return identity_node

    def identity_install(self, page_id: PageId) -> LogRecord:
        """Iw/oF applied to S itself: install a hot page's operations by
        logging its value, without flushing (section 5.3).

        The page stays dirty and cached; its write-graph node becomes the
        identity write's node, and the original node's other obligations
        are unaffected.
        """
        page = self._cache.get(page_id)
        if page is None or not page.dirty:
            raise CacheError(
                f"identity_install needs a dirty cached page, got {page_id!r}"
            )
        identity_node = self._append_identity(page_id, RecordFlag.CM_INJECTED)
        self.metrics.identity_installs += 1
        self.tree.clear(page_id)
        self._drain_empty_nodes()
        self._advance_truncation()
        record = identity_node.ops[-1]
        return record

    def _drain_empty_nodes(self) -> None:
        """Auto-install nodes whose vars emptied and predecessors cleared.

        The graph maintains the set of empty installable nodes
        incrementally, so each pass touches only the nodes actually
        drained (installing one may release successors into the set,
        hence the outer loop) — no rescan of the live graph.
        """
        if not self.graph._ready_empty:  # common case: nothing to drain
            return
        while True:
            empties = self.graph.installable_empty_nodes()
            if not empties:
                break
            drained = 0
            for node in empties:
                live = self._live(node.node_id)
                if live is None or live.vars:
                    continue
                self.graph.install_node(live)
                self.metrics.node_installs += 1
                drained += 1
            if not drained:
                break

    def _advance_truncation(self) -> None:
        self.stable_truncation_point = self.rec.truncation_point(
            self.log.end_lsn
        )

    # ----------------------------------------------------- flush conveniences

    def _live(self, node_id: int) -> Optional[DynamicNode]:
        """The live node for ``node_id``, or None if already installed."""
        resolved = self.graph._resolve(node_id)
        return None if resolved is None else self.graph._nodes[resolved]

    def flush_page(self, page_id: PageId, cascade: bool = True) -> bool:
        """Install the node holding ``page_id`` (and, with ``cascade``,
        every transitive predecessor first, in write-graph order).

        Returns False when the page is clean / unheld.
        """
        node = self.graph.holder_of(page_id)
        if node is None:
            return False
        if cascade:
            for ancestor_id in self._ancestors_in_order(node):
                ancestor = self._live(ancestor_id)
                if ancestor is not None:
                    self.install_node(ancestor)
        target = self._live(node.node_id)
        if target is not None:
            self.install_node(target)
        return True

    def _ancestors_in_order(self, node: DynamicNode) -> List[int]:
        """Topologically ordered strict ancestor node ids of ``node``."""
        order: List[int] = []
        seen: Set[int] = set()
        stack: List[tuple] = [(node.node_id, False)]
        while stack:
            node_id, processed = stack.pop()
            if processed:
                order.append(node_id)
                continue
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.append((node_id, True))
            current = self.graph.node(node_id)
            for pred in self.graph.predecessors(current):
                stack.append((pred, False))
        return [nid for nid in order if nid != node.node_id]

    def checkpoint(self) -> int:
        """Install every node, emptying the write graph.  Returns count."""
        installed = 0
        while True:
            nodes = self.graph.installable_nodes()
            if not nodes:
                break
            for node in nodes:
                live = self._live(node.node_id)
                if live is None:
                    continue
                self.install_node(live)
                installed += 1
        if len(self.graph):
            raise FlushOrderError(
                "write graph not empty after checkpoint; cycle?"
            )
        return installed

    def install_some(self, count: int, rng) -> int:
        """Install up to ``count`` randomly chosen installable nodes."""
        installed = 0
        for _ in range(count):
            nodes = self.graph.installable_nodes()
            if not nodes:
                break
            node = rng.choice(nodes)
            live = self._live(node.node_id)
            if live is None:
                continue
            self.install_node(live)
            installed += 1
        return installed

    # ------------------------------------------------- progress transactions

    @contextmanager
    def progress_transaction(self, partition: int):
        """Exclusive-latch scope for the backup process to move D and P."""
        latch = self.latches[partition]
        latch.acquire_exclusive()
        try:
            yield self.progress[partition]
        finally:
            latch.release_exclusive()

    # ----------------------------------------------------------------- crash

    def crash(self) -> None:
        """Lose all volatile state (cache, write graph, progress, meta)."""
        self._cache.clear()
        self.graph = DynamicWriteGraph()
        self.rec = RecLSNTracker()
        self.tree = TreeOpTracker(self.layout)
        for progress in self.progress.values():
            if progress.active:
                progress.abort()
        self.latches = {
            p: BackupLatch(p) for p in range(self.layout.num_partitions)
        }
        for latch in self.latches.values():
            latch.tracer = self.tracer
        self.copy_set_filter = None
        self.restore_hook = None

    def reload_after_recovery(self) -> None:
        """Reset cache contents after recovery rewrote S (cache is cold)."""
        self._cache.clear()
