"""Cache management with write-graph-ordered flushing and Iw/oF."""

from repro.cache.cache_manager import CacheManager, CachedPage

__all__ = ["CacheManager", "CachedPage"]
