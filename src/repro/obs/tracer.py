"""Structured tracing with a cheap no-op default.

Two tracer types share one duck-typed interface:

* :data:`NULL_TRACER` (a :class:`NullTracer`) — the default wired into
  every component.  ``enabled`` is ``False``, ``emit`` is a no-op, and
  ``span`` returns a shared do-nothing context manager, so instrumented
  hot paths cost one attribute load and a branch
  (``if tracer.enabled:``) when tracing is off.  The benchmark suite
  (``python -m repro bench``) holds this overhead under 5%.
* :class:`Tracer` — the recording tracer.  Events are appended to an
  in-memory list with a monotone sequence number and a timestamp
  relative to the tracer's creation; ``span(name)`` times a block and
  (when the tracer carries a :class:`~repro.sim.metrics.Metrics`) feeds
  the per-phase timing histograms.

Traces serialize to JSONL — one flat object per event — via
:meth:`Tracer.write_jsonl` / :func:`load_jsonl`, the format consumed by
``python -m repro trace`` and
:func:`repro.recovery.explain.render_timeline`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """One emitted event: sequence number, relative time, kind, fields."""

    seq: int
    t: float  # seconds since the tracer was created
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        # The event kind serializes under the reserved key "ev", NOT
        # "kind": several event schemas carry their own "kind" field
        # (fault kind, recovery kind) which must survive the flattening.
        out: Dict[str, Any] = {
            "seq": self.seq, "t": round(self.t, 6), "ev": self.kind
        }
        out.update(self.fields)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        fields = dict(data)
        seq = fields.pop("seq", 0)
        t = fields.pop("t", 0.0)
        kind = fields.pop("ev", "")
        return cls(seq=seq, t=t, kind=kind, fields=fields)

    def __repr__(self):
        inner = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"<{self.seq} +{self.t * 1000:.3f}ms {self.kind} {inner}>"


class _NullSpan:
    """Do-nothing context manager shared by every no-op ``span`` call."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The cheap default: tracing off, every call a no-op."""

    __slots__ = ()

    enabled = False
    events: tuple = ()
    metrics = None

    def emit(self, kind: str, /, **fields: Any) -> None:
        return None

    def span(self, name: str, /, **fields: Any) -> _NullSpan:
        return _NULL_SPAN


#: The shared no-op tracer every component defaults to.
NULL_TRACER = NullTracer()


class _Span:
    """Times one block: ``span_begin`` on entry, ``span_end`` (with
    ``ms`` and ``ok``) on exit; feeds the tracer's metrics histograms."""

    __slots__ = ("_tracer", "_name", "_fields", "_t0")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._fields = fields

    def __enter__(self):
        from repro.obs.events import SPAN_BEGIN

        tracer = self._tracer
        self._t0 = tracer._clock()
        tracer.emit(SPAN_BEGIN, span=self._name, **self._fields)
        return self

    def __exit__(self, exc_type, exc, tb):
        from repro.obs.events import SPAN_END

        tracer = self._tracer
        elapsed = tracer._clock() - self._t0
        tracer.emit(
            SPAN_END,
            span=self._name,
            ms=round(elapsed * 1000.0, 4),
            ok=exc_type is None,
            **self._fields,
        )
        if tracer.metrics is not None:
            tracer.metrics.observe_phase(self._name, elapsed)
        return False


class Tracer:
    """Recording tracer: an in-memory, optionally bounded event stream.

    ``capacity`` (when given) keeps only the most recent N events — a
    ring buffer for long runs where only the tail matters.  ``metrics``
    receives per-span timings into its phase histograms.

    Concurrency contract: ``emit`` is safe from any thread.  The thread
    that created the tracer (the *owner*) appends directly — no lock on
    the single-thread path.  Other threads (parallel sweep workers, whose
    fault-plane checks may emit) append to lock-free per-thread buffers;
    the owner flushes them in emit order — merged by timestamp, sequence
    numbers assigned at flush — the next time it emits or reads the
    stream (:meth:`drain`).  Span timers feed ``metrics`` on exit and
    should only be opened on the owner thread.
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[Any] = None,
        capacity: Optional[int] = None,
        clock=time.perf_counter,
    ):
        self.metrics = metrics
        self.capacity = capacity
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self.events: List[TraceEvent] = []
        self._owner = threading.get_ident()
        # Per-thread pending buffers for non-owner emits.  Each worker
        # thread appends to its own list (list.append is atomic), so the
        # registry lock is only taken once per thread, at registration.
        self._local = threading.local()
        self._buffers: List[List[TraceEvent]] = []
        self._registry_lock = threading.Lock()

    def emit(self, kind: str, /, **fields: Any) -> TraceEvent:
        event = TraceEvent(0, self._clock() - self._t0, kind, fields)
        if threading.get_ident() != self._owner:
            buffer = getattr(self._local, "buffer", None)
            if buffer is None:
                buffer = self._local.buffer = []
                with self._registry_lock:
                    self._buffers.append(buffer)
            buffer.append(event)
            return event
        if self._buffers:
            self._flush_pending()
        self._append(event)
        return event

    def _append(self, event: TraceEvent) -> None:
        self._seq += 1
        event.seq = self._seq
        events = self.events
        events.append(event)
        capacity = self.capacity
        if capacity is not None and len(events) > capacity:
            del events[: len(events) - capacity]

    def _flush_pending(self) -> None:
        """Merge worker-thread buffers into the stream in emit order."""
        pending: List[TraceEvent] = []
        with self._registry_lock:
            for buffer in self._buffers:
                while buffer:
                    pending.append(buffer.pop(0))
        pending.sort(key=lambda event: event.t)
        for event in pending:
            self._append(event)

    def drain(self) -> None:
        """Flush any worker-thread buffers (owner thread only).

        Called implicitly by owner-thread emits and by the stream
        readers below; call explicitly before touching ``events``
        directly after multi-threaded activity.
        """
        if self._buffers:
            self._flush_pending()

    def span(self, name: str, /, **fields: Any) -> _Span:
        return _Span(self, name, fields)

    def clear(self) -> None:
        self.drain()
        self.events.clear()

    def find(self, kind: str) -> List[TraceEvent]:
        """Events of one kind, in emission order (test/report helper)."""
        self.drain()
        return [e for e in self.events if e.kind == kind]

    def write_jsonl(
        self, path: str, mode: str = "w", extra: Optional[Dict[str, Any]] = None
    ) -> int:
        """Dump the event stream, one JSON object per line.

        ``extra`` keys are merged into every line (harnesses tag events
        with their scenario).  Returns the number of lines written.
        """
        self.drain()
        return write_jsonl(self.events, path, mode=mode, extra=extra)

    def __len__(self) -> int:
        self.drain()
        return len(self.events)

    def __repr__(self):
        return f"Tracer(events={len(self.events)}, seq={self._seq})"


def write_jsonl(
    events: Iterable[TraceEvent],
    path: str,
    mode: str = "w",
    extra: Optional[Dict[str, Any]] = None,
) -> int:
    written = 0
    with open(path, mode, encoding="utf-8") as fh:
        for event in events:
            line = event.to_dict()
            if extra:
                line.update(extra)
            fh.write(json.dumps(line, sort_keys=False, default=str))
            fh.write("\n")
            written += 1
    return written


def load_jsonl(path: str) -> List[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
