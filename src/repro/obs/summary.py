"""Trace summarization: ``python -m repro trace <file>``.

Condenses an event stream into the report an operator reads first: what
ran, which faults fired where, what each recovery pass did, and where
the time went (span aggregates).  The full causal rendering lives in
:func:`repro.recovery.explain.render_timeline`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.events import (
    BACKUP_ABORT,
    BACKUP_COMPLETE,
    FAULT_INJECTED,
    RECOVERY_PHASE,
    REDO_OP,
    SPAN_END,
    TRACE_HEADER,
)
from repro.obs.tracer import TraceEvent, load_jsonl


def _counts_by_kind(events: Sequence[TraceEvent]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def _span_aggregates(
    events: Sequence[TraceEvent],
) -> List[Tuple[str, int, float]]:
    """(span name, count, total ms) aggregated over ``span_end`` events."""
    totals: Dict[str, List[float]] = {}
    for event in events:
        if event.kind == SPAN_END:
            entry = totals.setdefault(event.get("span", "?"), [0, 0.0])
            entry[0] += 1
            entry[1] += float(event.get("ms", 0.0))
    return [
        (name, int(count), round(total, 3))
        for name, (count, total) in sorted(totals.items())
    ]


def summarize(events: Sequence[TraceEvent]) -> str:
    """A multi-section plain-text digest of one captured trace."""
    lines: List[str] = []
    headers = [e for e in events if e.kind == TRACE_HEADER]
    scenario = ""
    if headers:
        head = headers[0]
        scenario = str(head.get("scenario", ""))
        tags = " ".join(
            f"{key}={value}"
            for key, value in sorted(head.fields.items())
        )
        lines.append(f"trace: {tags}")
    span = events[-1].t - events[0].t if len(events) > 1 else 0.0
    lines.append(
        f"{len(events)} events over {span * 1000:.2f} ms"
        + (f" (scenario {scenario})" if scenario else "")
    )

    lines.append("")
    lines.append("events by kind:")
    for kind, count in sorted(
        _counts_by_kind(events).items(), key=lambda item: (-item[1], item[0])
    ):
        lines.append(f"  {kind:20s} {count}")

    faults = [e for e in events if e.kind == FAULT_INJECTED]
    if faults:
        lines.append("")
        lines.append("faults injected:")
        for event in faults:
            lines.append(
                f"  [seq {event.seq}] {event.get('kind')} at "
                f"{event.get('point')} (io #{event.get('io')})"
            )

    backups = [
        e for e in events if e.kind in (BACKUP_COMPLETE, BACKUP_ABORT)
    ]
    for event in backups:
        verb = "completed" if event.kind == BACKUP_COMPLETE else "ABORTED"
        lines.append(f"backup {event.get('backup_id')} {verb}")

    recovery = [e for e in events if e.kind == RECOVERY_PHASE]
    if recovery:
        lines.append("")
        lines.append("recovery phases:")
        for event in recovery:
            detail = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.fields.items())
                if key not in ("kind", "phase")
            )
            lines.append(
                f"  [seq {event.seq}] {event.get('kind')}:"
                f"{event.get('phase')} {detail}".rstrip()
            )

    redo = [e for e in events if e.kind == REDO_OP]
    if redo:
        replayed = sum(1 for e in redo if e.get("action") == "replay")
        skipped = sum(1 for e in redo if e.get("action") == "skip")
        poisoned = sum(1 for e in redo if e.get("poisoned"))
        lines.append("")
        lines.append(
            f"redo: {len(redo)} records seen, {replayed} replayed, "
            f"{skipped} skipped, {poisoned} poisoning"
        )

    spans = _span_aggregates(events)
    if spans:
        lines.append("")
        lines.append("span timings:")
        for name, count, total_ms in spans:
            lines.append(f"  {name:28s} x{count:<5d} {total_ms:10.3f} ms")
    return "\n".join(lines)


def summarize_file(path: str) -> str:
    events = load_jsonl(path)
    if not events:
        return f"{path}: empty trace"
    return summarize(events)
