"""The trace event schema: one name + required-field set per event kind.

Every event the system emits is one of the kinds below.  The schema is
deliberately flat — a kind string plus a free-form field mapping whose
*required* keys are pinned here — so traces serialize to JSONL one event
per line and stay greppable.  :func:`validate_event` is the contract the
test suite (and :mod:`repro.obs.summary`) holds emitters to.

Field conventions:

* pages are serialized ``"P<partition>:<slot>"`` (``str(PageId)``);
* LSNs and I/O counts are plain ints;
* durations are milliseconds under the key ``ms``;
* ``recovery_phase`` events always carry ``kind`` (the recovery flavour:
  crash/media/media-chain/partition/selective/analysis) and ``phase``
  (begin / repair_torn / restore / analysis / redo / verify / complete).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

# ---------------------------------------------------------------- event kinds

#: Cache manager consulted the flush policy for one page of an install.
FLUSH_DECISION = "flush_decision"
#: An Iw/oF identity write was appended to the log.
IWOF_WRITE = "iwof_write"
#: A backup sweep began.
BACKUP_BEGIN = "backup_begin"
#: The backup process moved D/P to the next step boundary (under latch).
BACKUP_STEP_ADVANCE = "backup_step_advance"
#: A backup sealed successfully.
BACKUP_COMPLETE = "backup_complete"
#: A backup was aborted (crash or explicit abort).
BACKUP_ABORT = "backup_abort"
#: A backup latch was taken (shared by the cache manager, exclusive by
#: the backup process).
LATCH_ACQUIRE = "latch_acquire"
#: The fault plane fired an armed fault at an I/O boundary.
FAULT_INJECTED = "fault_injected"
#: One log record considered by a redo pass.  Parallel redo
#: (recovery/parallel_redo.py) additionally stamps ``worker``: 0 for
#: the coordinator's cross-partition lane, 1..N for pool threads.
REDO_OP = "redo_op"
#: A recovery algorithm entered/finished one of its phases.
RECOVERY_PHASE = "recovery_phase"
#: The log was forced to stable storage.  Group-commit forces carry the
#: tick's coalesced caller count under ``batch``.
LOG_FORCE = "log_force"
#: A damaged log tail was truncated at the first corrupt record.
LOG_TAIL_REPAIR = "log_tail_repair"
#: A crash dropped the unforced log tail (per stream, for a striped log).
LOG_TAIL_LOST = "log_tail_lost"
#: The system crashed (volatile state lost).
CRASH = "crash"
#: The stable medium failed.
MEDIA_FAILURE = "media_failure"
#: A checksummed read (page or log record) failed its integrity check.
CORRUPTION_DETECTED = "corruption_detected"
#: Recovery fell back to an older backup generation / longer redo span
#: (or truncated a damaged log tail) to heal detected corruption.
CHAIN_FALLBACK = "chain_fallback"
#: A page had no intact copy anywhere and was excluded from recovery.
QUARANTINE = "quarantine"
#: Instant restore progressed: ``phase`` is begin / page / partition /
#: drain / complete (``page`` restores carry ``page`` and ``source``
#: = on-demand / background).
RESTORE_PROGRESS = "restore_progress"
#: The archive tier sealed a chain generation (``kind`` is full /
#: incremental / compacted) and recorded it in the chain manifest.
GENERATION_SEALED = "generation_sealed"
#: Compaction protocol step: ``phase`` is begin / swap / complete /
#: rollback (journal-then-swap; see docs/ARCHIVE.md).
COMPACTION = "compaction"
#: The chain healer acted on a damaged generation page: ``action`` is
#: newer-shadows / rebuild / quarantine.
CHAIN_HEAL = "chain_heal"
#: A replayed page was dropped instead of installed (e.g. outside the
#: stable layout in the quarantine-degrade path).  Carries why.
RESTORE_DROP = "restore_drop"
#: Span timers (``with tracer.span(name): ...``).
SPAN_BEGIN = "span_begin"
SPAN_END = "span_end"
#: Header line a harness writes before a captured event stream.
TRACE_HEADER = "trace_header"

#: Required fields per event kind.  Emitters may add more.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    FLUSH_DECISION: ("page", "region", "step", "needs_iwof"),
    IWOF_WRITE: ("page", "lsn"),
    BACKUP_BEGIN: ("backup_id", "steps", "batched"),
    BACKUP_STEP_ADVANCE: ("partition", "step", "done", "pending"),
    BACKUP_COMPLETE: ("backup_id", "completion_lsn"),
    BACKUP_ABORT: ("backup_id",),
    LATCH_ACQUIRE: ("partition", "mode"),
    FAULT_INJECTED: ("kind", "point", "io"),
    REDO_OP: ("lsn", "action"),
    RECOVERY_PHASE: ("kind", "phase"),
    LOG_FORCE: ("lsn",),
    LOG_TAIL_REPAIR: ("dropped", "cut_lsn"),
    LOG_TAIL_LOST: ("dropped", "cut_lsn"),
    CRASH: (),
    MEDIA_FAILURE: (),
    CORRUPTION_DETECTED: ("site",),
    CHAIN_FALLBACK: ("action",),
    QUARANTINE: ("page",),
    RESTORE_PROGRESS: ("phase",),
    GENERATION_SEALED: ("backup_id", "kind"),
    COMPACTION: ("phase",),
    CHAIN_HEAL: ("action",),
    RESTORE_DROP: ("page", "reason"),
    SPAN_BEGIN: ("span",),
    SPAN_END: ("span", "ms"),
    TRACE_HEADER: (),
}

ALL_KINDS = tuple(EVENT_FIELDS)


def validate_event(kind: str, fields: Mapping[str, object]) -> List[str]:
    """Problems with one event: unknown kind or missing required fields.

    Returns an empty list for a valid event (the form tests assert).
    """
    if kind not in EVENT_FIELDS:
        return [f"unknown event kind {kind!r}"]
    return [
        f"{kind}: missing required field {name!r}"
        for name in EVENT_FIELDS[kind]
        if name not in fields
    ]
