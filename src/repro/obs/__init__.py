"""repro.obs — structured tracing and observability.

The subsystem the debugging workflow stands on:

* :class:`~repro.obs.tracer.Tracer` / :data:`~repro.obs.tracer.NULL_TRACER`
  — the recording tracer and its cheap no-op default (see
  :mod:`repro.obs.tracer`);
* :mod:`repro.obs.events` — the typed event schema every emitter follows;
* :mod:`repro.obs.summary` — the digest behind ``python -m repro trace``.

Attach a tracer to a live database with
:meth:`repro.db.Database.attach_tracer`; capture unrecovered faultsweep
scenarios with ``python -m repro faultsweep --trace out.jsonl``.
"""

from repro.obs import events
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    load_jsonl,
    write_jsonl,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "load_jsonl",
    "write_jsonl",
    "events",
]
