"""The log-structured archive tier: generation chains over sealed backups.

Backups stop being independent images and become **generations of an
incremental chain**: a base full backup, then periodic incremental
sweeps that copy only the pages dirtied since the previous generation
(the update set the ``Database`` accumulates per writeset, widened by
the heap-backed rLSN tracker's currently-dirty pages — both derive from
the same recovery-LSN bookkeeping, and the widening is cost-only by the
LSN redo test).  Backup cost becomes proportional to churn, not
database size — the property that matters at scale (LogBase; Sauer &
Härder's chained, log-ordered archive state).

The chain's structure lives in a checksummed, atomically-replaced
**manifest** (:mod:`repro.archive.manifest`).  Three maintenance
operations keep the chain healthy:

* :meth:`ArchiveManager.tick` — the scheduler: take the base full if
  none exists, an incremental once ``incremental_every`` LSNs have
  accumulated past the last seal, and compact once the chain carries
  ``compact_threshold`` incremental links.
* :meth:`ArchiveManager.compact` — merge the whole chain into one new
  full generation with **journal-then-swap** crash atomicity: an intent
  journal is persisted first, the merged image is built through the
  engine's fault plane, the manifest is swapped atomically, and only
  then are the source generations retired (newest first).  A crash at
  any point leaves the *old* chain fully usable; startup recovery uses
  the journal to roll the swap forward or discard the attempt.
* :meth:`ArchiveManager.heal_chain` — the healing ladder for a
  bitrot-damaged generation, page by page: (1) the generation is a
  *link* (not the base) and a newer generation holds an intact copy →
  the damaged cell is *dropped* (shadowed in every restore that
  includes the donor; a PITR cut before the donor's seal falls back to
  an older copy plus the base-scan-start replay, cost-only never
  wrong — an older copy exists precisely because the damaged
  generation is not the base); (2) otherwise rebuild the page from the
  older generations plus the logged operations up to the damaged
  generation's seal point and install it with ``heal_page``; (3) no
  donor anywhere → leave it for honest quarantine at restore time.
  Damage in the **base** generation never takes rung 1: dropping the
  base's cell would leave a PITR cut before the donor's seal with no
  copy at all, silently restoring the initial value where an unhealed
  chain would have quarantined.  A newer generation's value is
  **never** installed into an older one — that would smuggle future
  state into point-in-time restores targeting the older seal point.

Point-in-time restore (:meth:`Database.restore_to_lsn`) picks the
longest chain prefix sealed at-or-before the target, overlays it, and
replays the media-log suffix truncated at the target — the fuzzy-backup
rules are unchanged, only the roll-forward stops early.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.archive.manifest import (
    KIND_COMPACTED,
    KIND_FULL,
    KIND_INCREMENTAL,
    ChainManifest,
    FileManifestStore,
    GenerationRecord,
    MemoryManifestStore,
)
from repro.core.config import BackupConfig
from repro.core.incremental import validate_chain
from repro.errors import (
    BackupError,
    ChainPinnedError,
    ManifestError,
    NoBackupError,
    RecoveryError,
)
from repro.ids import LSN, PageId
from repro.obs import events as ev
from repro.recovery.parallel_redo import make_replayer
from repro.recovery.redo import contains_poison
from repro.storage.backup_db import BackupDatabase

#: Pages per bulk record call while building a compacted generation —
#: each batch is one BACKUP_BULK_RECORD protocol-boundary I/O, so armed
#: faults (torn/crash/bitrot) fire *inside* compaction exactly as they
#: do inside a sweep.
COMPACTION_BATCH = 64


@dataclass
class ChainHealReport:
    """What :meth:`ArchiveManager.heal_chain` did, page by page."""

    #: ``(backup_id, page_id, action)`` per healed page; ``action`` is
    #: ``"newer-shadows"`` (damaged cell dropped) or ``"rebuild"``
    #: (reconstructed from older generations + logged operations).
    healed: List[Tuple[int, PageId, str]] = field(default_factory=list)
    #: ``(backup_id, page_id)`` pages with no donor: left damaged, to be
    #: quarantined honestly by the next restore.
    quarantined: List[Tuple[int, PageId]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def summary(self) -> str:
        return (
            f"chain heal: {len(self.healed)} page(s) healed, "
            f"{len(self.quarantined)} without a donor"
        )


def select_chain_prefix(
    chain: Sequence[BackupDatabase], to_lsn: LSN
) -> List[BackupDatabase]:
    """The longest chain prefix whose every link sealed at-or-before
    ``to_lsn`` — the generations a point-in-time restore may overlay.

    A link sealed after the target is fuzzy beyond it and must be
    excluded (its pages may already contain effects of operations past
    the cut); the links after it depend on it and fall away with it.
    """
    if not chain:
        raise NoBackupError("archive chain is empty")
    base = chain[0]
    if base.completion_lsn is None or base.completion_lsn > to_lsn:
        raise RecoveryError(
            f"no archive generation sealed at or before LSN {to_lsn}: "
            f"the chain base completed at {base.completion_lsn}"
        )
    prefix: List[BackupDatabase] = [base]
    for link in chain[1:]:
        if link.completion_lsn is None or link.completion_lsn > to_lsn:
            break
        prefix.append(link)
    return prefix


class ArchiveManager:
    """Schedules, compacts, verifies, and heals one database's chain."""

    def __init__(
        self,
        db,
        incremental_every: Optional[int] = None,
        compact_threshold: Optional[int] = None,
        manifest_store=None,
        sweep_config: Optional[BackupConfig] = None,
    ):
        self.db = db
        self.incremental_every = incremental_every
        self.compact_threshold = compact_threshold
        self.sweep_config = sweep_config or BackupConfig()
        if manifest_store is None:
            data_dir = getattr(db.storage, "data_dir", None)
            manifest_store = (
                FileManifestStore(data_dir)
                if data_dir is not None
                else MemoryManifestStore()
            )
        self.store = manifest_store
        self.manifest = ChainManifest(())
        self._recover()

    # ----------------------------------------------------- startup recovery

    def _recover(self) -> None:
        """Load the manifest; resolve a crashed compaction via the journal.

        Journal present and the manifest already lists the merged
        generation → the swap committed before the crash: roll forward
        by finishing the interrupted epilogue — retire the journal's
        source generations (newest first, matching :meth:`compact`) so
        their pin on the log is released, then clear the journal.
        Journal present but the manifest untouched → the crash hit
        while building or before the swap: discard the attempt; the old
        chain was never modified.
        """
        blob = self.store.load()
        if blob is not None:
            self.manifest = ChainManifest.from_bytes(blob)
        journal_blob = self.store.load_journal()
        if journal_blob is None:
            return
        try:
            journal = json.loads(journal_blob.decode("utf-8"))
            into = journal.get("into")
            merge = journal.get("merge")
        except (ValueError, UnicodeDecodeError, AttributeError):
            into = None
            merge = None
        if not isinstance(merge, list):
            merge = []
        tracer = self.db.tracer
        if into is not None and into in self.manifest.generation_ids():
            # Swap committed: the new chain is authoritative.  The
            # crash window between the swap and the journal clear left
            # the sources unretired, still pinning the log at the old
            # base's scan start — release them now, newest first so no
            # remaining link chains through an already-retired base.
            current = set(self.manifest.generation_ids())
            by_id = {b.backup_id: b for b in self.db.engine.completed}
            retired = []
            for backup_id in reversed(merge):
                backup = by_id.get(backup_id)
                if (
                    backup is None
                    or backup_id in current
                    or self.db.retention.is_retired(backup)
                ):
                    continue
                try:
                    self.db.retention.retire_backup(backup)
                except ChainPinnedError:
                    continue  # genuinely pinned by an outside chain
                retired.append(backup_id)
            self.store.clear_journal()
            if tracer.enabled:
                tracer.emit(ev.COMPACTION, phase="complete", into=into,
                            rolled_forward=True, retired=retired)
        else:
            self.store.clear_journal()
            if tracer.enabled:
                tracer.emit(ev.COMPACTION, phase="rollback", into=into)

    # ------------------------------------------------------------ the chain

    def _images(self) -> Dict[int, BackupDatabase]:
        return {
            b.backup_id: b for b in self.db.engine.completed if b.is_complete
        }

    def chain(self) -> List[BackupDatabase]:
        """The manifest's generations resolved to backup images, in
        overlay order.  A manifest naming a missing image is a fatal
        inconsistency, reported as :class:`ManifestError`."""
        images = self._images()
        chain = []
        for record in self.manifest.generations:
            image = images.get(record.backup_id)
            if image is None:
                raise ManifestError(
                    f"chain manifest names backup {record.backup_id} but "
                    "no such image exists in the backup store"
                )
            chain.append(image)
        return chain

    def generation_records(self) -> List[GenerationRecord]:
        return list(self.manifest.generations)

    def _publish(self, generations) -> None:
        self.manifest = self.manifest.with_generations(generations)
        self.store.save(self.manifest.to_bytes())

    # ------------------------------------------------------------ sealing

    def register(self, backup: BackupDatabase, kind: str) -> GenerationRecord:
        """Record a sealed backup as the chain's next generation."""
        if not backup.is_complete:
            raise BackupError(
                f"backup {backup.backup_id} is {backup.status.value}; only "
                "sealed backups become generations"
            )
        record = GenerationRecord(
            backup_id=backup.backup_id,
            kind=kind,
            base_backup_id=getattr(backup, "base_backup_id", None),
            media_scan_start_lsn=backup.media_scan_start_lsn,
            completion_lsn=backup.completion_lsn,
            pages=backup.copied_count(),
        )
        self._publish(list(self.manifest.generations) + [record])
        tracer = self.db.tracer
        if tracer.enabled:
            tracer.emit(
                ev.GENERATION_SEALED,
                backup_id=record.backup_id,
                kind=kind,
                completion_lsn=record.completion_lsn,
                pages=record.pages,
                chain_length=len(self.manifest.generations),
            )
        return record

    def adopt_existing(self) -> int:
        """Adopt the engine's trailing completed chain into an empty
        manifest (the attach-to-an-already-backed-up database path):
        the newest full backup plus every later completed link."""
        if self.manifest.generations:
            return 0
        completed = [b for b in self.db.engine.completed if b.is_complete]
        base_index = None
        for i in range(len(completed) - 1, -1, -1):
            if getattr(completed[i], "base_backup_id", None) is None:
                base_index = i
                break
        if base_index is None:
            return 0
        adopted = completed[base_index:]
        validate_chain(adopted)
        for i, backup in enumerate(adopted):
            self.register(backup, KIND_FULL if i == 0 else KIND_INCREMENTAL)
        return len(adopted)

    # ---------------------------------------------------------- scheduling

    def run_full(self, tick=None) -> BackupDatabase:
        """Take the chain's base full backup."""
        cfg = replace(self.sweep_config, incremental=False)
        self.db.start_backup(cfg)
        backup = self.db.run_backup(cfg, tick=tick)
        self.register(backup, KIND_FULL)
        return backup

    def run_incremental(self, tick=None) -> BackupDatabase:
        """Take the next incremental generation.

        The copy set is the pages dirtied since the previous generation:
        the database's per-writeset ``updated_since_backup`` accumulator
        widened by the rLSN tracker's currently-dirty pages — the same
        recovery-LSN state that drives log truncation.  The widening is
        cost-only (a page dirty across the previous seal was captured by
        that generation or its operations are on the retained log).
        """
        if not self.manifest.generations:
            raise NoBackupError(
                "incremental generation requires a chain base; call "
                "run_full() (or tick()) first"
            )
        self.db.updated_since_backup |= self.db.cm.rec.dirty_pages()
        cfg = replace(self.sweep_config, incremental=True)
        self.db.start_backup(cfg)
        backup = self.db.run_backup(cfg, tick=tick)
        self.register(backup, KIND_INCREMENTAL)
        return backup

    def links(self) -> int:
        """Incremental links currently in the chain (non-base records)."""
        return max(0, len(self.manifest.generations) - 1)

    def tick(self, tick=None) -> Optional[BackupDatabase]:
        """One scheduler step; returns the backup produced, if any.

        Priority: a chain must have a base; an over-threshold chain is
        compacted before it grows further; otherwise an incremental is
        taken once ``incremental_every`` LSNs accumulated since the last
        seal.
        """
        if not self.manifest.generations:
            return self.run_full(tick=tick)
        if (
            self.compact_threshold is not None
            and self.links() >= self.compact_threshold
        ):
            return self.compact()
        if self.incremental_every is not None:
            last = self.manifest.generations[-1]
            if (
                self.db.log.end_lsn - last.completion_lsn
                >= self.incremental_every
            ):
                return self.run_incremental(tick=tick)
        return None

    # ---------------------------------------------------------- compaction

    def compact(self) -> BackupDatabase:
        """Merge the whole chain into one new full generation.

        Journal-then-swap: persist the intent journal, build the merged
        image through the engine (same id space, storage backend, and
        fault plane as swept backups — armed faults fire here too), swap
        the manifest atomically, clear the journal, and only then retire
        the source generations.  Any failure before the swap aborts the
        partial image and discards the journal; the old manifest — and
        every source image — is untouched.
        """
        chain = self.chain()
        if len(chain) < 2:
            raise BackupError("compaction needs at least two generations")
        validate_chain(chain)
        base, last = chain[0], chain[-1]

        # The merged overlay: later links override earlier ones; damaged
        # cells are skipped (the older copy + the base-scan-start replay
        # heals them at restore time — cost-only, never wrong).  A page
        # damaged in *every* copy has no intact source: merging would
        # launder the loss into a "clean" image, so refuse and demand a
        # heal/quarantine pass first.
        overlay: Dict[PageId, object] = {}
        damaged_anywhere = set()
        for backup in chain:
            damaged = set(backup.damaged_pages())
            damaged_anywhere |= damaged
            for pid, version in backup.pages().items():
                if pid in damaged:
                    continue
                overlay[pid] = version
        lost = sorted(pid for pid in damaged_anywhere if pid not in overlay)
        if lost:
            raise BackupError(
                f"cannot compact: {len(lost)} page(s) damaged in every "
                f"generation (first: {lost[0]!r}); run heal_chain() first"
            )

        engine = self.db.engine
        merged_id = engine._next_id
        journal = {
            "merge": self.manifest.generation_ids(),
            "into": merged_id,
            "epoch": self.manifest.epoch,
        }
        self.store.save_journal(
            json.dumps(journal, separators=(",", ":")).encode("utf-8")
        )
        tracer = self.db.tracer
        if tracer.enabled:
            tracer.emit(
                ev.COMPACTION, phase="begin", into=merged_id,
                merge=journal["merge"],
            )
        merged = engine.allocate_backup(
            base.media_scan_start_lsn, base_backup_id=None
        )
        try:
            ordered = sorted(overlay)
            for start in range(0, len(ordered), COMPACTION_BATCH):
                merged.record_pages(
                    (pid, overlay[pid])
                    for pid in ordered[start:start + COMPACTION_BATCH]
                )
            # The merged generation is exactly the chain overlay: it
            # inherits the base's redo-span start and the last link's
            # seal point, so every restore (and PITR cut) the chain
            # served, the merged image serves identically.
            merged.complete(last.completion_lsn)
        except BaseException:
            merged.abort()
            self.store.clear_journal()
            if tracer.enabled:
                tracer.emit(
                    ev.COMPACTION, phase="rollback", into=merged_id,
                )
            raise
        engine.completed.append(merged)
        if tracer.enabled:
            tracer.emit(ev.COMPACTION, phase="swap", into=merged_id)
        record = GenerationRecord(
            backup_id=merged.backup_id,
            kind=KIND_COMPACTED,
            base_backup_id=None,
            media_scan_start_lsn=merged.media_scan_start_lsn,
            completion_lsn=merged.completion_lsn,
            pages=merged.copied_count(),
        )
        self._publish([record])
        self.store.clear_journal()
        # Sources are released newest-first so no remaining retained
        # link is ever chained through an already-retired base.
        for backup in reversed(chain):
            self.db.retention.retire_backup(backup)
        if tracer.enabled:
            tracer.emit(
                ev.COMPACTION, phase="complete", into=merged_id,
                pages=record.pages, retired=journal["merge"],
            )
            tracer.emit(
                ev.GENERATION_SEALED,
                backup_id=record.backup_id, kind=KIND_COMPACTED,
                completion_lsn=record.completion_lsn, pages=record.pages,
                chain_length=1,
            )
        return merged

    # ------------------------------------------------------------- healing

    def heal_chain(self) -> ChainHealReport:
        """Heal every damaged page in every generation (the ladder).

        Rung 1 — *newer shadows* (chain links only, never the base):
        some later generation holds an intact copy of the page, so no
        restore that includes it ever reads the damaged cell through
        the overlay; drop it (restores that exclude the newer
        generation — PITR to an earlier cut — fall back to an older
        copy plus replay, which is sound by the base-scan-start
        argument *because* every restorable prefix of a non-base
        generation contains the full base's copy).  The base itself has
        no older copy to fall back to: dropping its damaged cell would
        make a PITR cut before the donor's seal silently restore the
        initial value instead of quarantining, so base damage skips
        straight to rung 2.

        Rung 2 — *rebuild*: overlay the chain prefix up to and including
        the damaged generation (skipping damaged cells), replay the
        media log from the base's scan start to the damaged generation's
        seal point, and install the reconstructed page with
        ``heal_page``.  The rebuilt cell carries state at the seal point
        — never newer — so PITR semantics are preserved.

        Rung 3 — *quarantine*: no intact copy and no trustworthy rebuild
        (log truncated past the base's scan start, or the replayed value
        still carries poison): leave the cell damaged so restores
        quarantine it honestly, and report it.
        """
        chain = self.chain()
        report = ChainHealReport()
        if not chain:
            return report
        damaged_by_gen = [set(b.damaged_pages()) for b in chain]
        tracer = self.db.tracer
        for index, backup in enumerate(chain):
            for pid in sorted(damaged_by_gen[index]):
                action = None
                donor = None
                if index > 0:  # the base has no older copy to fall back to
                    for j in range(len(chain) - 1, index, -1):
                        if pid in chain[j] and pid not in damaged_by_gen[j]:
                            donor = chain[j]
                            break
                if donor is not None:
                    backup.drop_page(pid)
                    action = "newer-shadows"
                else:
                    version = self._rebuild_page(
                        chain, damaged_by_gen, index, pid
                    )
                    if version is not None:
                        backup.heal_page(pid, version)
                        action = "rebuild"
                if action is None:
                    report.quarantined.append((backup.backup_id, pid))
                    action = "quarantine"
                else:
                    report.healed.append((backup.backup_id, pid, action))
                    damaged_by_gen[index].discard(pid)
                if tracer.enabled:
                    tracer.emit(
                        ev.CHAIN_HEAL, action=action, page=str(pid),
                        backup_id=backup.backup_id,
                        donor=getattr(donor, "backup_id", None),
                    )
        return report

    def _rebuild_page(self, chain, damaged_by_gen, index, pid):
        """Reconstruct one page as of ``chain[index]``'s seal point.

        Returns ``None`` when the rebuild cannot be trusted: the log no
        longer reaches the base's scan start, or the replayed value
        still contains poison (its history ran through a page that has
        no intact copy anywhere in the prefix).
        """
        log = self.db.log
        base_scan = chain[0].media_scan_start_lsn
        if base_scan < log.first_retained_lsn:
            return None
        from repro.ids import NULL_LSN
        from repro.recovery.redo import POISON
        from repro.storage.page import PageVersion

        state: Dict[PageId, PageVersion] = {}
        covered = set()
        for j in range(index + 1):
            for p, version in chain[j].pages().items():
                covered.add(p)
                if p in damaged_by_gen[j]:
                    continue
                state[p] = version
        # Pages recorded somewhere in the prefix but intact nowhere have
        # no trustworthy source; seed them as poison so a rebuild whose
        # history runs through them fails loudly instead of silently
        # using the initial value.
        for p in covered - set(state):
            state[p] = PageVersion(POISON, NULL_LSN)
        replayer = make_replayer(
            initial_value=self.db.initial_value,
            redo_workers=getattr(self.db, "redo_workers", 1),
            metrics=self.db.metrics,
        )
        replayer.replay(
            log.merge_scan(base_scan, chain[index].completion_lsn), state
        )
        version = state.get(pid)
        if version is None or contains_poison(version.value):
            return None
        return version
