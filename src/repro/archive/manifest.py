"""The archive chain manifest: which generations form the current chain.

The manifest is the archive tier's root of trust.  It is a small,
checksummed document listing the chain's generations in overlay order
(base full first, then incrementals); every structural change —
sealing a generation, swapping in a compacted one — replaces the whole
manifest **atomically**, so a reader either sees the old chain or the
new one, never a half-edited hybrid.

Two stores implement the same three-slot surface:

* :class:`MemoryManifestStore` — a single reference assignment, atomic
  by construction (the memory backend);
* :class:`FileManifestStore` — write-to-temp + ``fsync`` +
  ``os.replace``, the standard atomic-publish idiom, plus a directory
  fsync so the rename itself is durable (the file backend).

The third slot is the **compaction journal**: a tiny intent record
written *before* a compaction starts building its merged generation and
cleared after the manifest swap commits.  On startup the journal
disambiguates a crash window (see :meth:`ArchiveManager._recover` in
:mod:`repro.archive.manager`): journal present + manifest already lists
the merged generation → the swap committed, roll forward (clear the
journal); journal present + manifest untouched → the crash hit before
the swap, roll back (discard the journal; the old chain was never
modified).

Integrity: the manifest serializes to one JSON document whose ``crc``
field is the CRC32 of the canonical payload encoding.  A blob failing
the check raises :class:`~repro.errors.ManifestError` — a damaged
manifest is reported, never silently trusted.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ManifestError
from repro.ids import LSN

MANIFEST_FORMAT = 1

#: Generation kinds recorded in the manifest.
KIND_FULL = "full"
KIND_INCREMENTAL = "incremental"
KIND_COMPACTED = "compacted"


@dataclass(frozen=True)
class GenerationRecord:
    """One chain generation as the manifest records it.

    ``completion_lsn`` is the seal point (PITR targets at or after it
    can restore through this generation); ``media_scan_start_lsn`` is
    the generation's own redo-span start.  For the chain as a whole the
    *base's* scan start is what pins the log (section 6.1).
    """

    backup_id: int
    kind: str
    base_backup_id: Optional[int]
    media_scan_start_lsn: LSN
    completion_lsn: LSN
    pages: int

    def to_dict(self) -> dict:
        return {
            "backup_id": self.backup_id,
            "kind": self.kind,
            "base_backup_id": self.base_backup_id,
            "media_scan_start_lsn": self.media_scan_start_lsn,
            "completion_lsn": self.completion_lsn,
            "pages": self.pages,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationRecord":
        try:
            return cls(
                backup_id=data["backup_id"],
                kind=data["kind"],
                base_backup_id=data["base_backup_id"],
                media_scan_start_lsn=data["media_scan_start_lsn"],
                completion_lsn=data["completion_lsn"],
                pages=data["pages"],
            )
        except (KeyError, TypeError) as exc:
            raise ManifestError(
                f"malformed generation record: {data!r}"
            ) from exc


@dataclass(frozen=True)
class ChainManifest:
    """The chain document: generations in overlay order, plus an epoch.

    ``epoch`` increments on every publish, so traces (and tests probing
    crash windows) can tell which version of the manifest a reader saw.
    """

    generations: tuple
    epoch: int = 0

    def with_generations(self, generations) -> "ChainManifest":
        return ChainManifest(tuple(generations), epoch=self.epoch + 1)

    def generation_ids(self) -> List[int]:
        return [g.backup_id for g in self.generations]

    def to_bytes(self) -> bytes:
        payload = {
            "format": MANIFEST_FORMAT,
            "epoch": self.epoch,
            "generations": [g.to_dict() for g in self.generations],
        }
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        return json.dumps(
            {"crc": crc, "payload": payload},
            separators=(",", ":"), sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ChainManifest":
        try:
            document = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ManifestError(f"unreadable chain manifest: {exc}") from exc
        if not isinstance(document, dict) or "payload" not in document:
            raise ManifestError("not a chain manifest document")
        payload = document["payload"]
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        if crc != document.get("crc"):
            raise ManifestError(
                "chain manifest failed its CRC32 envelope "
                f"(stored {document.get('crc')!r}, computed {crc})"
            )
        if payload.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"unsupported manifest format {payload.get('format')!r}"
            )
        return cls(
            generations=tuple(
                GenerationRecord.from_dict(g)
                for g in payload.get("generations", [])
            ),
            epoch=payload.get("epoch", 0),
        )


class MemoryManifestStore:
    """Manifest + journal slots for the in-memory backend.

    Publishing is a single reference assignment — atomic by
    construction, mirroring what ``os.replace`` gives the file store.
    """

    def __init__(self):
        self._manifest: Optional[bytes] = None
        self._journal: Optional[bytes] = None

    def load(self) -> Optional[bytes]:
        return self._manifest

    def save(self, blob: bytes) -> None:
        self._manifest = bytes(blob)

    def load_journal(self) -> Optional[bytes]:
        return self._journal

    def save_journal(self, blob: bytes) -> None:
        self._journal = bytes(blob)

    def clear_journal(self) -> None:
        self._journal = None


class FileManifestStore:
    """Manifest + journal as real files with atomic replacement.

    ``save`` writes ``CHAIN.manifest.tmp``, flushes and fsyncs it, then
    ``os.replace``s it over ``CHAIN.manifest`` and fsyncs the directory:
    a crash at any point leaves either the complete old manifest or the
    complete new one.  A stale ``.tmp`` from a crashed publish is
    ignored by ``load`` and overwritten by the next ``save``.
    """

    MANIFEST_NAME = "CHAIN.manifest"
    JOURNAL_NAME = "CHAIN.journal"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.MANIFEST_NAME)
        self.journal_path = os.path.join(directory, self.JOURNAL_NAME)

    def _publish(self, path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _read(self, path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def load(self) -> Optional[bytes]:
        return self._read(self.path)

    def save(self, blob: bytes) -> None:
        self._publish(self.path, blob)

    def load_journal(self) -> Optional[bytes]:
        return self._read(self.journal_path)

    def save_journal(self, blob: bytes) -> None:
        self._publish(self.journal_path, blob)

    def clear_journal(self) -> None:
        try:
            os.remove(self.journal_path)
        except FileNotFoundError:
            pass
