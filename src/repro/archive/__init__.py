"""The log-structured archive tier (docs/ARCHIVE.md).

Sealed backups become generations of an incremental chain: an
:class:`ArchiveManager` schedules incremental sweeps over the pages
dirtied since the previous generation, records the chain in a
checksummed atomically-replaced manifest, compacts with journal-then-
swap crash atomicity, heals bitrot-damaged generations page-by-page
from neighbors, and serves point-in-time restore
(``Database.restore_to_lsn``).
"""

from repro.archive.manager import (
    ArchiveManager,
    ChainHealReport,
    select_chain_prefix,
)
from repro.archive.manifest import (
    ChainManifest,
    FileManifestStore,
    GenerationRecord,
    MemoryManifestStore,
)

__all__ = [
    "ArchiveManager",
    "ChainHealReport",
    "ChainManifest",
    "FileManifestStore",
    "GenerationRecord",
    "MemoryManifestStore",
    "select_chain_prefix",
]
