"""File-backed storage backend: real fds, real offsets, real ``fsync``.

Conforms to the :mod:`repro.storage.api` protocols by subclassing the
in-memory stores and overriding only their *device hooks* — every
media/fault/integrity check stays in the base-class protocol methods, so
fault injection behaves identically for both backends (one shared
fault-point set, no duplicated checks).

On-disk layout under one ``data_dir``::

    stable/p0000.pages      log-structured page file, one per partition:
    stable/p0001.pages      each install appends [u32 length][JSON body]
    ...                     with {"slot","lsn","crc","value"}; the store
                            keeps a {page: (offset, length)} index, so
                            superseded records stay readable (consistent
                            plan-time snapshots for process workers).
    stable/shadow.journal   doublewrite journal: pre-images of an
                            in-flight multi-page install, fsynced before
                            the install touches any cell.
    wal/stream0.log         append-only log file per WAL stream (the
    wal/stream1.log         format-2 record specs as JSONL); appends
    ...                     buffer in memory, ``sync()`` writes the
                            pending suffix and ``os.fsync``s — the
                            write_log/latch shape of log.cc in
                            SNIPPETS.md.
    backups/b0001.jsonl     one append-only file per backup run: JSONL
                            page records in copy order, sealed by a
                            footer line at ``complete()``.

Crash-safety invariants are documented in docs/STORAGE.md.  Because the
page files are log-structured and append-only, a span's
``(offset, length)`` list is a *consistent snapshot*: later installs
append new records without invalidating old offsets, which is what makes
span reads picklable shared-nothing work for the
``ProcessPoolExecutor`` sweep (:func:`read_span_file`).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.codec import CodecError, decode_value, encode_value
from repro.errors import MediaFailureError, PageNotFoundError, CorruptPageError
from repro.ids import LSN, PageId
from repro.storage.api import StorageBackend
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.page import PageVersion, page_checksum
from repro.storage.stable_db import StableDatabase

__all__ = [
    "FileBackend",
    "FileStableDatabase",
    "FileBackupDatabase",
    "FileLogDevice",
    "read_span_file",
    "read_backup_span_file",
]

_LEN = struct.Struct(">I")


def _encode_body(slot: int, version: PageVersion) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "slot": slot,
        "lsn": version.page_lsn,
        "crc": version.checksum(),
    }
    try:
        body["value"] = encode_value(version.value)
    except CodecError:
        # Non-codec values (e.g. the POISON quarantine sentinel) get an
        # opaque repr record: the device cost is still paid, but reads
        # resolve from the in-memory cell.
        body["opaque"] = repr(version.value)
    return body


def _pack_record(body: Dict[str, Any]) -> bytes:
    data = json.dumps(body, separators=(",", ":")).encode()
    return _LEN.pack(len(data)) + data


#: Worker-result status codes for :func:`read_span_file`.
OK = "ok"
IN_MEMORY = "mem"
CORRUPT = "corrupt"


def read_span_file(path: str, entries):
    """Read one backup span from a page file (process-pool worker).

    ``entries`` is ``[(slot, (offset, length) | None), ...]``; the
    return value is ``[(slot, status, value, lsn), ...]`` with plain
    picklable data — exceptions never cross the process boundary, the
    coordinator turns ``corrupt`` rows back into
    :class:`~repro.errors.CorruptPageError`.  Rows with no file record
    (never-written pages) and opaque records resolve to ``mem``: the
    coordinator serves them from the in-memory cell.
    """
    out = []
    with open(path, "rb") as handle:
        fd = handle.fileno()
        for slot, loc in entries:
            if loc is None:
                out.append((slot, IN_MEMORY, None, 0))
                continue
            offset, length = loc
            raw = os.pread(fd, length, offset)
            try:
                body = json.loads(raw)
            except ValueError:
                out.append((slot, CORRUPT, None, 0))
                continue
            if "opaque" in body:
                out.append((slot, IN_MEMORY, None, 0))
                continue
            try:
                value = decode_value(body["value"])
            except (CodecError, KeyError, TypeError):
                out.append((slot, CORRUPT, None, 0))
                continue
            lsn = body.get("lsn", 0)
            if page_checksum(value, lsn) != body.get("crc"):
                out.append((slot, CORRUPT, None, 0))
                continue
            out.append((slot, OK, value, lsn))
    return out


def read_backup_span_file(path: str, partition: int, start: int, stop: int):
    """Read one backup span from a sealed backup JSONL (process worker).

    Scans the backup file's page records and returns
    ``[(slot, status, value, lsn), ...]`` for recorded pages of
    ``partition`` with ``start <= slot < stop`` — the same picklable row
    shape as :func:`read_span_file`, resolved by the coordinator with
    the in-memory image as the fallback surface (``mem`` rows cover
    opaque/non-codec values; ``corrupt`` rows cover on-disk damage).
    Instant restore's process executor ships these calls to pool
    workers so eager background restore never pickles live stores.
    """
    out = []
    with open(path, "rb") as handle:
        for line in handle:
            try:
                body = json.loads(line)
            except ValueError:
                continue
            slot = body.get("slot")
            if (
                slot is None
                or body.get("partition") != partition
                or not (start <= slot < stop)
            ):
                continue
            if "opaque" in body:
                out.append((slot, IN_MEMORY, None, 0))
                continue
            try:
                value = decode_value(body["value"])
            except (CodecError, KeyError, TypeError):
                out.append((slot, CORRUPT, None, 0))
                continue
            lsn = body.get("lsn", 0)
            if page_checksum(value, lsn) != body.get("crc"):
                out.append((slot, CORRUPT, None, 0))
                continue
            out.append((slot, OK, value, lsn))
    return out


class FileStableDatabase(StableDatabase):
    """The stable database on real files: one page file per partition.

    The in-memory cells remain authoritative for values and integrity
    stamps (preserving the lazy identity-envelope semantics and support
    for non-codec values); every install additionally appends a
    checksummed record to the partition's page file, and every read pays
    a real ``pread`` of that record.  ``_bitrot`` damages both surfaces.
    """

    def __init__(
        self, layout: Layout, initial_value: Any = None, data_dir: str = "."
    ):
        self._dir = os.path.join(data_dir, "stable")
        os.makedirs(self._dir, exist_ok=True)
        self._has_device = True
        self._paths = [
            os.path.join(self._dir, f"p{partition:04d}.pages")
            for partition in range(layout.num_partitions)
        ]
        self._files = [open(path, "w+b", buffering=0) for path in self._paths]
        self._sizes = [0] * layout.num_partitions
        # page -> (offset, length) of its latest record's JSON body.
        self._locs: Dict[PageId, Tuple[int, int]] = {}
        self._shadow_path = os.path.join(self._dir, "shadow.journal")
        self._shadow_file = open(self._shadow_path, "w+b", buffering=0)
        self.bytes_read = 0
        self.bytes_written = 0
        self.journal_writes = 0
        super().__init__(layout, initial_value)

    # --------------------------------------------------------- device hooks

    def _store_version(self, page_id: PageId, version: PageVersion) -> None:
        super()._store_version(page_id, version)
        blob = _pack_record(_encode_body(page_id.slot, version))
        partition = page_id.partition
        self._files[partition].write(blob)
        offset = self._sizes[partition]
        self._sizes[partition] = offset + len(blob)
        self._locs[page_id] = (offset + _LEN.size, len(blob) - _LEN.size)
        self.bytes_written += len(blob)

    def _device_read(self, page_id: PageId) -> None:
        loc = self._locs.get(page_id)
        if loc is None:  # never written: no device record to fetch
            return
        offset, length = loc
        data = os.pread(self._files[page_id.partition].fileno(), length, offset)
        self.bytes_read += len(data)

    def _device_journal(self, entries) -> None:
        chunks = []
        for pid, version in entries:
            body = _encode_body(pid.slot, version)
            body["partition"] = pid.partition
            chunks.append(_pack_record(body))
        handle = self._shadow_file
        handle.seek(0)
        handle.truncate()
        payload = b"".join(chunks)
        handle.write(payload)
        # The journal must be durable *before* the install touches any
        # cell — the doublewrite ordering invariant.
        os.fsync(handle.fileno())
        self.bytes_written += len(payload)
        self.journal_writes += 1

    def _device_clear_journal(self) -> None:
        handle = self._shadow_file
        if handle.closed:
            return
        handle.seek(0)
        handle.truncate()

    def _rot_cell(self, pid: PageId) -> None:
        super()._rot_cell(pid)
        loc = self._locs.get(pid)
        if loc is None:
            return
        offset, length = loc
        fd = self._files[pid.partition].fileno()
        raw = os.pread(fd, length, offset)
        if raw:  # flip the first byte of the on-disk record too
            os.pwrite(fd, bytes([raw[0] ^ 0xFF]) + raw[1:], offset)

    # ------------------------------------------------- process-pool surface

    def span_task(self, partition: int, start: int, stop: int):
        """Plan one picklable span read: ``(path, entries)``.

        Runs the same protocol-boundary checks as :meth:`read_pages`
        (media gate, one ``stable.read_pages`` fault-plane check, the
        simulated seek), then captures the span's record locations.  The
        page files are append-only, so the captured offsets stay valid
        no matter what is installed afterwards.
        """
        self._begin_bulk_read()
        if partition in self._failed_partitions:
            raise MediaFailureError(
                f"partition {partition} has suffered a media failure"
            )
        entries = []
        for slot in range(start, stop):
            pid = PageId(partition, slot)
            if pid not in self._pages:
                raise PageNotFoundError(pid)
            entries.append((slot, self._locs.get(pid)))
        return self._paths[partition], entries

    def resolve_span(self, partition: int, rows) -> List[Tuple[PageId, PageVersion]]:
        """Turn :func:`read_span_file` worker rows back into span entries.

        ``corrupt`` rows raise :class:`CorruptPageError`; ``mem`` rows
        (never-written or opaque pages) are served from the in-memory
        cell after the usual envelope verification.
        """
        out = []
        for slot, status, value, lsn in rows:
            pid = PageId(partition, slot)
            if status == CORRUPT:
                raise CorruptPageError(pid, store="stable")
            if status == IN_MEMORY:
                version = self._verify(pid, self._page(pid).version)
            else:
                version = PageVersion(value, lsn)
            out.append((pid, version))
        return out

    # ------------------------------------------------------ restore / media

    def _reset_partition_file(self, partition: int) -> None:
        handle = self._files[partition]
        handle.seek(0)
        handle.truncate()
        self._sizes[partition] = 0
        for pid in list(self._locs):
            if pid.partition == partition:
                del self._locs[pid]

    def restore_partition_from(
        self, partition, versions, initial_value=None
    ) -> None:
        self._reset_partition_file(partition)
        super().restore_partition_from(partition, versions, initial_value)

    def restore_from(self, versions, initial_value=None) -> None:
        for partition in range(len(self._files)):
            self._reset_partition_file(partition)
        self._device_clear_journal()
        super().restore_from(versions, initial_value)

    # --------------------------------------------------------------- lifecycle

    def sync(self) -> None:
        """``fsync`` every page file (checkpoint-style durability point)."""
        for handle in self._files:
            if not handle.closed:
                os.fsync(handle.fileno())

    def close(self) -> None:
        for handle in self._files:
            if not handle.closed:
                handle.close()
        if not self._shadow_file.closed:
            self._shadow_file.close()


class FileBackupDatabase(BackupDatabase):
    """A backup image that lands on a real append-only file.

    Records are appended in copy order as JSONL (the same page-record
    schema as the format-2 archive); ``complete()`` writes a footer
    line, ``fsync``s, and releases the fd.  The in-memory image remains
    the read surface for media recovery, exactly like the base class.
    """

    def __init__(
        self,
        backup_id: int,
        media_scan_start_lsn: LSN,
        path: str,
        base_backup_id: Optional[int] = None,
    ):
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self.path = path
        self._file = open(path, "w+b", buffering=0)
        self._has_device = True
        self.bytes_written = 0
        super().__init__(
            backup_id, media_scan_start_lsn, base_backup_id=base_backup_id
        )
        header = {
            "backup_id": backup_id,
            "media_scan_start_lsn": media_scan_start_lsn,
            "base_backup_id": base_backup_id,
        }
        self._write_line(header)

    def _write_line(self, obj: Dict[str, Any]) -> None:
        data = json.dumps(obj, separators=(",", ":")).encode() + b"\n"
        self._file.write(data)
        self.bytes_written += len(data)

    def _device_record(self, entries) -> None:
        if self._file.closed:
            return
        for pid, version in entries:
            body = _encode_body(pid.slot, version)
            body["partition"] = pid.partition
            self._write_line(body)

    def _device_complete(self) -> None:
        if self._file.closed:
            return
        self._write_line(
            {"complete": True, "completion_lsn": self.completion_lsn}
        )
        os.fsync(self._file.fileno())
        self._file.close()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class FileLogDevice:
    """Append-only log file per WAL stream with explicit ``os.fsync``.

    The write_log/latch shape of the log.cc managers in SNIPPETS.md:
    :meth:`append` serializes the record spec and buffers it under the
    stream's latch; :meth:`sync` writes each stream's pending suffix and
    ``fsync``s it — one real durability event per group-commit tick.
    The WAL manager's in-memory buffer stays the read/recovery surface;
    these files are the durable history (loadable with
    :func:`repro.wal.serialize.load_log` semantics via JSONL specs).
    """

    def __init__(self, wal_dir: str, streams: int = 1, truncate: bool = True):
        os.makedirs(wal_dir, exist_ok=True)
        self.paths = [
            os.path.join(wal_dir, f"stream{i}.log") for i in range(streams)
        ]
        mode = "w+b" if truncate else "a+b"
        self._files = [open(path, mode, buffering=0) for path in self.paths]
        self._pending: List[List[bytes]] = [[] for _ in range(streams)]
        self._latches = [threading.Lock() for _ in range(streams)]
        self.records_appended = 0
        self.bytes_written = 0
        self.syncs = 0

    def append(self, stream_id: int, record) -> None:
        from repro.wal.serialize import record_to_spec

        spec = record_to_spec(record)
        line = json.dumps(spec, separators=(",", ":")).encode() + b"\n"
        with self._latches[stream_id]:
            self._pending[stream_id].append(line)
        self.records_appended += 1

    def sync(self) -> None:
        flushed = False
        for i, handle in enumerate(self._files):
            with self._latches[i]:
                chunks = self._pending[i]
                if not chunks or handle.closed:
                    continue
                data = b"".join(chunks)
                chunks.clear()
                handle.write(data)
                os.fsync(handle.fileno())
                self.bytes_written += len(data)
                flushed = True
        if flushed:
            self.syncs += 1

    def drop_pending(self) -> None:
        """Crash simulation: the unsynced buffer dies with the process."""
        for i in range(len(self._pending)):
            with self._latches[i]:
                self._pending[i].clear()

    def close(self) -> None:
        for handle in self._files:
            if not handle.closed:
                handle.close()


class FileBackend(StorageBackend):
    """Factory for the file-backed stores under one ``data_dir``.

    With no ``data_dir`` a private temporary directory is created (and
    left on disk for post-mortem inspection — CI uploads it on failure).
    One backend instance backs one database: page files are formatted
    fresh at ``create_stable``.
    """

    name = "file"

    def __init__(self, data_dir: Optional[str] = None):
        super().__init__()
        if data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-data-")
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)

    def create_stable(
        self, layout: Layout, initial_value: Any = None
    ) -> FileStableDatabase:
        return self._track(
            FileStableDatabase(layout, initial_value, data_dir=self.data_dir)
        )

    def create_backup(
        self,
        backup_id: int,
        media_scan_start_lsn: LSN,
        base_backup_id: Optional[int] = None,
    ) -> FileBackupDatabase:
        path = os.path.join(self.data_dir, "backups", f"b{backup_id:04d}.jsonl")
        return self._track(
            FileBackupDatabase(
                backup_id,
                media_scan_start_lsn,
                path,
                base_backup_id=base_backup_id,
            )
        )

    def create_log_device(self, num_streams: int) -> FileLogDevice:
        return self._track(
            FileLogDevice(os.path.join(self.data_dir, "wal"), num_streams)
        )
