"""Simulated stable storage: pages, the stable database S, and backups B.

The paper's protocol depends on exactly two storage properties, both of
which this package models faithfully:

* **page-write atomicity** — a page write to S either happens entirely or
  not at all (``StableDatabase.write_page``), and a multi-page atomic flush
  is available for write-graph nodes whose ``vars`` contain several pages
  (``StableDatabase.write_pages_atomically``);
* **a physical backup order** — every page has a position ``#X`` in the
  backup order, derived from its physical address by :class:`Layout`.

The storage *surface* those models implement is formalized in
:mod:`repro.storage.api` as the :class:`PageStore` / :class:`BackupStore`
/ :class:`LogDevice` protocols, with two conforming backends: the
in-memory simulation (the default) and the file-backed backend of
:mod:`repro.storage.file_backend` (real fds, doublewrite journal,
fsynced log files).  Use :func:`open_backend` to construct one from a
:class:`~repro.core.config.BackupConfig` or explicit keywords.
"""

from repro.storage.page import Page, PageVersion
from repro.storage.layout import Layout
from repro.storage.stable_db import StableDatabase
from repro.storage.backup_db import BackupDatabase, BackupStatus
from repro.storage.api import (
    BACKENDS,
    BackupStore,
    LogDevice,
    MemoryBackend,
    PageStore,
    StorageBackend,
    open_backend,
)

__all__ = [
    "Page",
    "PageVersion",
    "Layout",
    "StableDatabase",
    "BackupDatabase",
    "BackupStatus",
    "BACKENDS",
    "PageStore",
    "BackupStore",
    "LogDevice",
    "StorageBackend",
    "MemoryBackend",
    "open_backend",
]
