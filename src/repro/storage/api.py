"""Formal storage-backend API: the protocols every backend conforms to.

The cache manager, backup engines, WAL, fault plane, and recovery paths
touch storage through exactly three surfaces:

* :class:`PageStore` — the stable database device: read/write/multi-write
  pages, media-failure bookkeeping, integrity verification, restore.
* :class:`BackupStore` — the backup device: record/bulk-record copied
  spans, seal/abort, verified reads for media recovery.
* :class:`LogDevice` — the durability surface behind the WAL managers:
  append serialized record bytes per stream, ``sync()`` to make the
  pending suffix durable.

These protocols are *structural* (:class:`typing.Protocol`): the
in-memory classes already conform and are not required to inherit from
anything here.  A :class:`StorageBackend` bundles one factory per
surface so the whole stack is switched with one knob —
``BackupConfig.backend="memory"|"file"`` or ``Database(backend=...)`` —
and :func:`open_backend` is the single place that knob is resolved.

Fault injection is keyed to this boundary: the
:class:`~repro.sim.faults.FaultPlane` check for each
:class:`~repro.sim.faults.IOPoint` lives in the protocol method itself
(``read_page`` checks ``stable.read_page``, ``record_pages`` checks
``backup.record_pages``, ...), so torn/transient/crash/bitrot faults
inject identically for every backend with no duplicated checks.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import BackupError
from repro.ids import LSN, PageId
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase

__all__ = [
    "PageStore",
    "BackupStore",
    "LogDevice",
    "StorageBackend",
    "MemoryBackend",
    "open_backend",
    "BACKENDS",
]


@runtime_checkable
class PageStore(Protocol):
    """The stable-database surface used by cache, engines, and recovery."""

    layout: Layout

    # -- I/O (fault points stable.read_page / read_pages / write_page /
    #    write_multi fire inside these methods) --------------------------
    def read_page(self, page_id: PageId) -> PageVersion: ...

    def read_pages(
        self, page_ids: Sequence[PageId]
    ) -> List[Tuple[PageId, PageVersion]]: ...

    def write_page(self, page_id: PageId, value: Any, page_lsn: LSN) -> None: ...

    def write_pages_atomically(
        self, versions: Dict[PageId, PageVersion]
    ) -> None: ...

    def install_version(self, page_id: PageId, version: PageVersion) -> None: ...

    # -- torn-write repair (doublewrite shadow journal) -----------------
    def repair_torn(self, metrics: Any = None) -> List[PageId]: ...

    # -- integrity ------------------------------------------------------
    def verify_page(self, page_id: PageId) -> bool: ...

    def damaged_pages(self) -> List[PageId]: ...

    # -- media-failure bookkeeping --------------------------------------
    def fail_media(self) -> None: ...

    def fail_partition(self, partition: int) -> None: ...

    def restore_from(
        self,
        versions: Iterable[Tuple[PageId, PageVersion]],
        initial_value: Any = None,
    ) -> None: ...

    def restore_partition_from(
        self,
        partition: int,
        versions: Dict[PageId, PageVersion],
        initial_value: Any = None,
    ) -> None: ...

    # -- protocol plumbing ----------------------------------------------
    def attach_faults(self, plane: Any) -> Any: ...

    def sync(self) -> None: ...

    def close(self) -> None: ...


@runtime_checkable
class BackupStore(Protocol):
    """The backup-database surface used by the sweep engines and recovery."""

    backup_id: int
    media_scan_start_lsn: LSN

    def record_page(self, page_id: PageId, version: PageVersion) -> None: ...

    def record_pages(
        self, entries: Sequence[Tuple[PageId, PageVersion]]
    ) -> None: ...

    def complete(self, completion_lsn: LSN) -> None: ...

    def abort(self) -> None: ...

    def read_page(self, page_id: PageId) -> PageVersion: ...

    def pages(self) -> Dict[PageId, PageVersion]: ...

    def iter_pages(self) -> Iterable[Tuple[PageId, PageVersion]]: ...

    def read_span(
        self, partition: int, start: int, stop: int
    ) -> List[Tuple[PageId, PageVersion]]: ...

    def verify_pages(self, page_ids: Iterable[PageId]) -> None: ...

    def damaged_pages(self) -> List[PageId]: ...

    def attach_faults(self, plane: Any) -> Any: ...

    def close(self) -> None: ...


@runtime_checkable
class LogDevice(Protocol):
    """The durability surface behind ``LogManager``/``MultiLogManager``.

    The WAL managers keep the authoritative in-memory record images (the
    log buffer); a device receives each record at append time, buffers
    it, and makes the buffered suffix durable on :meth:`sync` — the
    ``write_log`` + ``sync()`` shape of the log.cc managers in
    SNIPPETS.md.  ``sync()`` is called once per group-commit tick, so one
    real ``fsync`` per stream covers every append since the previous
    tick.
    """

    def append(self, stream_id: int, record: Any) -> None: ...

    def sync(self) -> None: ...

    def drop_pending(self) -> None: ...

    def close(self) -> None: ...


class StorageBackend:
    """Factory bundle for one storage backend.

    ``create_*`` build the three protocol surfaces; :meth:`close`
    releases every resource the backend handed out.  Subclasses override
    the factories; the base class provides the bookkeeping that lets
    ``close()`` find what was created.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._created: List[Any] = []

    def _track(self, obj: Any) -> Any:
        self._created.append(obj)
        return obj

    def create_stable(
        self, layout: Layout, initial_value: Any = None
    ) -> PageStore:
        raise NotImplementedError

    def create_backup(
        self,
        backup_id: int,
        media_scan_start_lsn: LSN,
        base_backup_id: Optional[int] = None,
    ) -> BackupStore:
        raise NotImplementedError

    def create_log_device(self, num_streams: int) -> Optional[LogDevice]:
        """Return a :class:`LogDevice`, or ``None`` for buffer-only WALs."""
        raise NotImplementedError

    def close(self) -> None:
        """Close every store/device this backend created (idempotent)."""
        while self._created:
            obj = self._created.pop()
            closer = getattr(obj, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class MemoryBackend(StorageBackend):
    """The original in-memory backend: python dicts, zero device cost.

    Byte-identical behavior to the pre-API classes — it *is* the same
    classes, constructed through the factory instead of ad hoc.
    """

    name = "memory"

    def create_stable(
        self, layout: Layout, initial_value: Any = None
    ) -> StableDatabase:
        return self._track(StableDatabase(layout, initial_value))

    def create_backup(
        self,
        backup_id: int,
        media_scan_start_lsn: LSN,
        base_backup_id: Optional[int] = None,
    ) -> BackupDatabase:
        return self._track(
            BackupDatabase(
                backup_id,
                media_scan_start_lsn,
                base_backup_id=base_backup_id,
            )
        )

    def create_log_device(self, num_streams: int) -> Optional[LogDevice]:
        # The in-memory WAL buffer is already the whole device.
        return None


#: Registry of backend names accepted by ``BackupConfig.backend`` and the
#: ``--backend`` CLI flags.  ``file`` is resolved lazily to keep this
#: module import-light.
BACKENDS = ("memory", "file")


def open_backend(
    config: Any = None,
    *,
    backend: Optional[str] = None,
    data_dir: Optional[str] = None,
) -> StorageBackend:
    """Resolve the backend knob to a :class:`StorageBackend`.

    Accepts either a :class:`~repro.core.config.BackupConfig` (reads its
    ``backend``/``data_dir`` fields) or explicit keyword arguments; the
    keywords win when both are given.  ``backend="file"`` with no
    ``data_dir`` creates a private temporary directory.

    >>> open_backend().name
    'memory'
    >>> open_backend(backend="memory").name
    'memory'
    """
    if config is not None:
        if backend is None:
            backend = getattr(config, "backend", None)
        if data_dir is None:
            data_dir = getattr(config, "data_dir", None)
    backend = backend or "memory"
    if backend == "memory":
        return MemoryBackend()
    if backend == "file":
        from repro.storage.file_backend import FileBackend

        return FileBackend(data_dir)
    raise BackupError(
        f"unknown storage backend {backend!r}; expected one of {BACKENDS}"
    )
