"""Tertiary-storage archive: backups as real files on disk.

The paper's backups live "perhaps stored on tertiary storage"; this
module gives :class:`~repro.storage.backup_db.BackupDatabase` a durable
serialized form so the full operational loop — back up online, ship the
image off the box, restore on a fresh instance — is executable.

Format: a JSON envelope (schema-versioned) containing the backup's
bookkeeping plus one entry per page.  Page values are arbitrary
immutable Python data; they are encoded with a small self-describing
scheme (``_encode``/``_decode``) rather than pickle, so archives are
inspectable, diffable, and safe to load.

Every page entry carries a ``crc`` integrity envelope
(:func:`~repro.storage.page.page_checksum`) stamped at save time.
:func:`load_backup` verifies each page and raises
:class:`~repro.errors.CorruptPageError` on the first mismatch;
:func:`scan_archive` is the tolerant variant the scrubber uses — it
loads what it can and reports the damaged page ids instead of raising.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.codec import CodecError, decode_value, encode_value
from repro.errors import BackupError, CorruptPageError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase, BackupStatus
from repro.storage.page import PageVersion, page_checksum

FORMAT_VERSION = 1


def _encode(value: Any):
    """Encode a page value (shared codec; BackupError on failure)."""
    try:
        return encode_value(value)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def _decode(data: Any):
    try:
        return decode_value(data)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def save_backup(backup: BackupDatabase, path: str) -> int:
    """Write a completed backup to ``path``; returns bytes written."""
    if not backup.is_complete:
        raise BackupError(
            f"backup {backup.backup_id} is {backup.status.value}; only "
            "completed backups are archived"
        )
    envelope: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "backup_id": backup.backup_id,
        "media_scan_start_lsn": backup.media_scan_start_lsn,
        "completion_lsn": backup.completion_lsn,
        "base_backup_id": getattr(backup, "base_backup_id", None),
        "pages": [
            {
                "partition": pid.partition,
                "slot": pid.slot,
                "lsn": version.page_lsn,
                "value": _encode(version.value),
                # The copy-time envelope, not a recomputation: damage
                # that crept in since the copy must stay detectable.
                "crc": backup.stored_checksum(pid),
            }
            for pid, version in sorted(backup.pages().items())
        ],
    }
    payload = json.dumps(envelope, separators=(",", ":"))
    with open(path, "w") as handle:
        handle.write(payload)
    return os.path.getsize(path)


def scan_archive(path: str) -> Tuple[BackupDatabase, List[PageId]]:
    """Load an archive, tolerating damaged pages.

    Returns ``(backup, damaged)``: every page whose stored ``crc`` no
    longer matches its content is *skipped* (not recorded into the
    backup) and reported in ``damaged``.  Archives written before the
    integrity envelope existed (no ``crc`` key) load as fully trusted.
    """
    with open(path) as handle:
        envelope = json.load(handle)
    if envelope.get("format") != FORMAT_VERSION:
        raise BackupError(
            f"unsupported archive format {envelope.get('format')!r}"
        )
    backup = BackupDatabase(
        envelope["backup_id"], envelope["media_scan_start_lsn"]
    )
    backup.base_backup_id = envelope.get("base_backup_id")
    damaged: List[PageId] = []
    for entry in envelope["pages"]:
        pid = PageId(entry["partition"], entry["slot"])
        try:
            version = PageVersion(_decode(entry["value"]), entry["lsn"])
        except (BackupError, ValueError, TypeError, KeyError):
            damaged.append(pid)
            continue
        crc = entry.get("crc")
        if crc is not None and crc != page_checksum(version.value, version.page_lsn):
            damaged.append(pid)
            continue
        backup.record_page(pid, version)
    backup.complete(envelope["completion_lsn"])
    return backup, damaged


def load_backup(path: str) -> BackupDatabase:
    """Reconstruct a completed backup from an archive file.

    Raises :class:`~repro.errors.CorruptPageError` if any page fails its
    integrity check — restoring from a silently damaged archive is never
    acceptable; use :func:`scan_archive` to inspect a damaged file.
    """
    backup, damaged = scan_archive(path)
    if damaged:
        raise CorruptPageError(
            damaged[0], store="archive",
            detail=f"{len(damaged)} damaged page(s) in {path}",
        )
    return backup
