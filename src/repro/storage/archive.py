"""Tertiary-storage archive: backups as real files on disk.

The paper's backups live "perhaps stored on tertiary storage"; this
module gives :class:`~repro.storage.backup_db.BackupDatabase` a durable
serialized form so the full operational loop — back up online, ship the
image off the box, restore on a fresh instance — is executable.

Format 2 (current) is streaming JSONL: a header line with the backup's
bookkeeping (schema-versioned, carrying ``page_count``), then one line
per page in backup order.  Both writing and verification are O(one
page) in memory — :func:`save_backup` streams pages out,
:func:`verify_archive` streams them in, so scrubbing a huge archive
never materializes it.  Format 1 (a single JSON envelope) remains
loadable.  Page values are arbitrary immutable Python data; they are
encoded with a small self-describing scheme (``_encode``/``_decode``)
rather than pickle, so archives are inspectable, diffable, and safe to
load.

Every page entry carries a ``crc`` integrity envelope
(:func:`~repro.storage.page.page_checksum`) stamped at save time.
:func:`load_backup` verifies each page and raises
:class:`~repro.errors.CorruptPageError` on the first mismatch;
:func:`scan_archive` is the tolerant variant — it loads what it can and
reports the damaged page ids instead of raising.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.codec import CodecError, decode_value, encode_value
from repro.errors import BackupError, CorruptPageError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion, page_checksum

FORMAT_VERSION = 2
LEGACY_FORMAT_VERSION = 1


def _encode(value: Any):
    """Encode a page value (shared codec; BackupError on failure)."""
    try:
        return encode_value(value)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def _decode(data: Any):
    try:
        return decode_value(data)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def save_backup(backup: BackupDatabase, path: str) -> int:
    """Write a completed backup to ``path``; returns bytes written.

    Streams one JSONL record per page (format 2): peak memory is one
    encoded page, not the whole image.
    """
    if not backup.is_complete:
        raise BackupError(
            f"backup {backup.backup_id} is {backup.status.value}; only "
            "completed backups are archived"
        )
    pages = backup.pages()
    header: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "backup_id": backup.backup_id,
        "media_scan_start_lsn": backup.media_scan_start_lsn,
        "completion_lsn": backup.completion_lsn,
        "base_backup_id": getattr(backup, "base_backup_id", None),
        "page_count": len(pages),
    }
    with open(path, "w") as handle:
        handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        for pid in sorted(pages):
            entry = {
                "partition": pid.partition,
                "slot": pid.slot,
                "lsn": pages[pid].page_lsn,
                "value": _encode(pages[pid].value),
                # The copy-time envelope, not a recomputation: damage
                # that crept in since the copy must stay detectable.
                "crc": backup.stored_checksum(pid),
            }
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return os.path.getsize(path)


def _iter_jsonl(handle, expected: Any) -> Iterator[Dict[str, Any]]:
    count = 0
    for line in handle:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            raise BackupError(f"malformed archive record: {exc}") from exc
        count += 1
        yield entry
    if expected is not None and count != expected:
        raise BackupError(
            f"archive truncated: {count} of {expected} page records present"
        )


@contextlib.contextmanager
def _archive_entries(path: str):
    """Open an archive and yield ``(header, entry_iterator)``.

    Handles both the streaming JSONL format 2 (entries are produced
    lazily, O(one page) memory) and the legacy single-envelope format 1.
    """
    with open(path) as handle:
        first = handle.readline()
        try:
            header = json.loads(first)
        except ValueError:
            # Tolerate a pretty-printed legacy envelope spanning lines.
            handle.seek(0)
            try:
                header = json.load(handle)
            except ValueError as exc:
                raise BackupError(f"not an archive file: {path}") from exc
        fmt = header.get("format")
        if fmt == FORMAT_VERSION:
            yield header, _iter_jsonl(handle, header.get("page_count"))
        elif fmt == LEGACY_FORMAT_VERSION:
            yield header, iter(header.get("pages", []))
        else:
            raise BackupError(f"unsupported archive format {fmt!r}")


def _check_entry(entry: Dict[str, Any]) -> Tuple[PageId, Any]:
    """Decode + CRC-check one page entry.

    Returns ``(page_id, version_or_None)`` — ``None`` marks a damaged
    page (undecodable or envelope mismatch).
    """
    pid = PageId(entry["partition"], entry["slot"])
    try:
        version = PageVersion(_decode(entry["value"]), entry["lsn"])
    except (BackupError, ValueError, TypeError, KeyError):
        return pid, None
    crc = entry.get("crc")
    if crc is not None and crc != page_checksum(version.value, version.page_lsn):
        return pid, None
    return pid, version


def scan_archive(path: str) -> Tuple[BackupDatabase, List[PageId]]:
    """Load an archive, tolerating damaged pages.

    Returns ``(backup, damaged)``: every page whose stored ``crc`` no
    longer matches its content is *skipped* (not recorded into the
    backup) and reported in ``damaged``.  Archives written before the
    integrity envelope existed (no ``crc`` key) load as fully trusted.
    """
    with _archive_entries(path) as (header, entries):
        backup = BackupDatabase(
            header["backup_id"],
            header["media_scan_start_lsn"],
            base_backup_id=header.get("base_backup_id"),
        )
        damaged: List[PageId] = []
        for entry in entries:
            pid, version = _check_entry(entry)
            if version is None:
                damaged.append(pid)
                continue
            backup.record_page(pid, version)
        backup.complete(header["completion_lsn"])
    return backup, damaged


@dataclass
class ArchiveAudit:
    """Result of a streaming archive verification."""

    path: str
    backup_id: int
    pages_scanned: int = 0
    bytes_scanned: int = 0
    damaged: List[PageId] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.damaged


def verify_archive(path: str) -> ArchiveAudit:
    """Stream-verify an archive without materializing it.

    Every page record is decoded, CRC-checked, and *dropped* — peak
    memory is one page regardless of archive size, which is what the
    scrubber uses so auditing a huge archive is O(page) memory.
    """
    with _archive_entries(path) as (header, entries):
        audit = ArchiveAudit(path=path, backup_id=header.get("backup_id", 0))
        for entry in entries:
            pid, version = _check_entry(entry)
            audit.pages_scanned += 1
            if version is None:
                audit.damaged.append(pid)
    audit.bytes_scanned = os.path.getsize(path)
    return audit


def load_backup(path: str) -> BackupDatabase:
    """Reconstruct a completed backup from an archive file.

    Raises :class:`~repro.errors.CorruptPageError` if any page fails its
    integrity check — restoring from a silently damaged archive is never
    acceptable; use :func:`scan_archive` to inspect a damaged file.
    """
    backup, damaged = scan_archive(path)
    if damaged:
        raise CorruptPageError(
            damaged[0], store="archive",
            detail=f"{len(damaged)} damaged page(s) in {path}",
        )
    return backup
