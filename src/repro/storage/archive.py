"""Tertiary-storage archive: backups as real files on disk.

The paper's backups live "perhaps stored on tertiary storage"; this
module gives :class:`~repro.storage.backup_db.BackupDatabase` a durable
serialized form so the full operational loop — back up online, ship the
image off the box, restore on a fresh instance — is executable.

Format: a JSON envelope (schema-versioned) containing the backup's
bookkeeping plus one entry per page.  Page values are arbitrary
immutable Python data; they are encoded with a small self-describing
scheme (``_encode``/``_decode``) rather than pickle, so archives are
inspectable, diffable, and safe to load.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.codec import CodecError, decode_value, encode_value
from repro.errors import BackupError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase, BackupStatus
from repro.storage.page import PageVersion

FORMAT_VERSION = 1


def _encode(value: Any):
    """Encode a page value (shared codec; BackupError on failure)."""
    try:
        return encode_value(value)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def _decode(data: Any):
    try:
        return decode_value(data)
    except CodecError as exc:
        raise BackupError(str(exc)) from exc


def save_backup(backup: BackupDatabase, path: str) -> int:
    """Write a completed backup to ``path``; returns bytes written."""
    if not backup.is_complete:
        raise BackupError(
            f"backup {backup.backup_id} is {backup.status.value}; only "
            "completed backups are archived"
        )
    envelope: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "backup_id": backup.backup_id,
        "media_scan_start_lsn": backup.media_scan_start_lsn,
        "completion_lsn": backup.completion_lsn,
        "base_backup_id": getattr(backup, "base_backup_id", None),
        "pages": [
            {
                "partition": pid.partition,
                "slot": pid.slot,
                "lsn": version.page_lsn,
                "value": _encode(version.value),
            }
            for pid, version in sorted(backup.pages().items())
        ],
    }
    payload = json.dumps(envelope, separators=(",", ":"))
    with open(path, "w") as handle:
        handle.write(payload)
    return os.path.getsize(path)


def load_backup(path: str) -> BackupDatabase:
    """Reconstruct a completed backup from an archive file."""
    with open(path) as handle:
        envelope = json.load(handle)
    if envelope.get("format") != FORMAT_VERSION:
        raise BackupError(
            f"unsupported archive format {envelope.get('format')!r}"
        )
    backup = BackupDatabase(
        envelope["backup_id"], envelope["media_scan_start_lsn"]
    )
    backup.base_backup_id = envelope.get("base_backup_id")
    for entry in envelope["pages"]:
        backup.record_page(
            PageId(entry["partition"], entry["slot"]),
            PageVersion(_decode(entry["value"]), entry["lsn"]),
        )
    backup.complete(envelope["completion_lsn"])
    return backup
