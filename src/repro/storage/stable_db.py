"""The stable database S.

``StableDatabase`` is the simulated disk-resident database the cache
manager flushes to and the backup process copies from.  It provides:

* atomic single-page writes (disk write atomicity, assumed by the paper);
* atomic multi-page writes, used when a write-graph node's ``vars`` set
  contains several pages that must be installed together;
* simulated *media failure* (``fail_media``): after a failure every access
  raises :class:`~repro.errors.MediaFailureError` until the database is
  re-formatted from a backup (``restore_from``);
* an optional :class:`~repro.sim.faults.FaultPlane` (``faults``)
  consulted at every I/O boundary, able to inject transient errors,
  crashes mid-I/O, and torn multi-page writes.  Multi-page atomicity
  under torn writes is furnished the way real systems furnish it: a
  shadow (doublewrite) journal records the overwritten versions before a
  multi-page install and ``repair_torn`` rolls back any incomplete
  install at recovery time.

Write counts are tracked so benchmarks can report I/O volume.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import (
    CorruptPageError,
    MediaFailureError,
    PageNotFoundError,
    SimulatedCrash,
)
from repro.ids import LSN, NULL_LSN, PageId
from repro.storage.layout import Layout
from repro.storage.page import Page, PageVersion, rot_value


class StableDatabase:
    """Simulated stable medium holding one page cell per layout slot.

    Every page carries a **lazy** CRC32 integrity envelope.  The store
    stamps each write by retaining a reference to the exact
    :class:`~repro.storage.page.PageVersion` object installed; because
    versions are immutable, a cell whose current version *is* the stamp
    is provably undamaged with no CRC arithmetic at all.  Simulated
    corruption (:data:`~repro.sim.faults.FaultKind.BITROT`) replaces the
    cell's version object wholesale without refreshing the stamp — the
    identity check then misses and the CRC comparison (computed from the
    *stamp*, never from the possibly-rotted cell) raises
    :class:`~repro.errors.CorruptPageError`, exactly how real bit rot
    presents to a checksummed store.  The actual CRC is materialized
    only when an envelope leaves the process (archive serialization) or
    when an identity miss demands a content check.
    """

    def __init__(self, layout: Layout, initial_value: Any = None):
        self.layout = layout
        self._pages: Dict[PageId, Page] = {
            pid: Page.empty(pid, initial_value) for pid in layout.all_pages()
        }
        # Integrity stamps, one per page cell: the version object that
        # was legitimately installed there (see class docstring).
        self._stamps: Dict[PageId, PageVersion] = {
            pid: page.version for pid, page in self._pages.items()
        }
        self._failed = False
        self._failed_partitions: set = set()
        self.page_writes = 0
        self.multi_page_flushes = 0
        # Simulated per-request device latency (seconds), slept once per
        # read call — a bulk span read models one seek + one contiguous
        # transfer.  ``time.sleep`` releases the GIL, so concurrent span
        # reads against different partitions overlap exactly like the
        # independent disk arms of the paper's partitioned stores (§3.4).
        # Left at 0.0 (no sleep) outside latency-sensitive benchmarks.
        self.io_delay_s = 0.0
        # Fault plane (None = no injection) and the shadow journal: the
        # pre-images of an in-flight multi-page install, conceptually on
        # stable storage, so it survives a crash and lets recovery undo a
        # torn prefix.  Only maintained while a fault plane is attached —
        # without one, multi-page writes are natively atomic.
        self._faults = None
        self._shadow: List[Tuple[PageId, PageVersion]] = []
        # True in device-backed subclasses: gates the per-page device
        # hooks so the memory backend's hot loops stay branch-cheap.
        self._has_device = getattr(self, "_has_device", False)

    # ------------------------------------------------------ protocol plumbing

    @property
    def faults(self):
        """The attached fault plane (``None`` = no injection)."""
        return self._faults

    @faults.setter
    def faults(self, plane) -> None:
        warnings.warn(
            "assigning StableDatabase.faults directly is deprecated; call "
            "attach_faults(plane) (the PageStore protocol method) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._faults = plane

    def attach_faults(self, plane):
        """Attach a fault plane at the PageStore protocol boundary."""
        self._faults = plane
        return plane

    def sync(self) -> None:
        """Flush device buffers (no-op for the in-memory backend)."""

    def close(self) -> None:
        """Release device resources (no-op for the in-memory backend)."""

    # -- device hooks: no-ops here, overridden by file-backed subclasses.
    # They are called only when ``_has_device`` is set, so the in-memory
    # hot paths pay one attribute test, not a method call per page.

    def _device_read(self, page_id: PageId) -> None:
        """Pay the device cost of reading one page."""

    def _device_journal(
        self, entries: List[Tuple[PageId, PageVersion]]
    ) -> None:
        """Persist the shadow (doublewrite) journal before an install."""

    def _device_clear_journal(self) -> None:
        """Discard the shadow journal after a completed install."""

    # ------------------------------------------------------------- integrity

    def _store_version(self, page_id: PageId, version: PageVersion) -> None:
        """Install a version into its cell, refreshing the stamp."""
        self._pages[page_id].version = version
        self._stamps[page_id] = version

    def _verify(self, page_id: PageId, version: PageVersion) -> PageVersion:
        stamp = self._stamps[page_id]
        if version is not stamp and version.checksum() != stamp.checksum():
            raise CorruptPageError(page_id, store="stable")
        return version

    def verify_page(self, page_id: PageId) -> bool:
        """Does this page's content still match its integrity envelope?"""
        version = self._page(page_id).version
        stamp = self._stamps[page_id]
        return version is stamp or version.checksum() == stamp.checksum()

    def damaged_pages(self) -> List[PageId]:
        """Every page failing its integrity check (raw scan, no media
        gate — scrubbing and recovery must see damage on failed media)."""
        stamps = self._stamps
        return sorted(
            pid
            for pid, page in self._pages.items()
            if page.version is not stamps[pid]
            and page.version.checksum() != stamps[pid].checksum()
        )

    def pages_ahead_of(self, lsn: LSN) -> List[PageId]:
        """Pages stamped *after* ``lsn`` (raw scan).

        Under WAL no stable page can be ahead of the durable log end;
        after a corrupt log tail is truncated, any such page provably
        contains effects of discarded records and must be healed from a
        backup or quarantined.
        """
        return sorted(
            pid
            for pid, page in self._pages.items()
            if page.version.page_lsn > lsn
        )

    def _bitrot(self, rng) -> bool:
        """Silently rot one page (fault-plane corruptor callback).

        Prefers a page that has been written (a rotted never-touched
        page is indistinguishable from a formatting quirk and exercises
        nothing).  The envelope is deliberately left stale — that is the
        corruption.  Returns ``True`` if damage landed.
        """
        written = [
            pid
            for pid, page in self._pages.items()
            if page.version.page_lsn > NULL_LSN
        ]
        candidates = written or sorted(self._pages)
        if not candidates:
            return False
        self._rot_cell(candidates[rng.randrange(len(candidates))])
        return True

    def _rot_cell(self, pid: PageId) -> None:
        """Corrupt one page cell in place, leaving the stamp stale.

        Device-backed subclasses extend this to also flip bytes in the
        on-disk record, so the same injection damages both surfaces.
        """
        page = self._pages[pid]
        old = page.version
        page.version = PageVersion(rot_value(old.value), old.page_lsn)

    # ------------------------------------------------------------------ reads

    def read_page(self, page_id: PageId) -> PageVersion:
        self._check_media(page_id.partition)
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            self._faults.check(IOPoint.STABLE_READ, corrupt=self._bitrot)
        if self.io_delay_s:
            time.sleep(self.io_delay_s)
        if self._has_device:
            self._device_read(page_id)
        return self._verify(page_id, self._page(page_id).snapshot())

    def _begin_bulk_read(self) -> None:
        """Protocol-boundary checks shared by every bulk-read entry point.

        One media gate, one ``stable.read_pages`` fault-plane check, and
        one simulated seek per call — a bulk span read models one seek
        plus one contiguous transfer regardless of backend.
        """
        if self._failed:
            raise MediaFailureError("stable database media has failed")
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            self._faults.check(IOPoint.STABLE_BULK_READ, corrupt=self._bitrot)
        if self.io_delay_s:
            time.sleep(self.io_delay_s)

    def read_pages(self, page_ids) -> "list":
        """Bulk read used by the batched backup sweep.

        Returns ``(page_id, version)`` pairs in the order given, with one
        media check per distinct partition instead of one per page.
        """
        self._begin_bulk_read()
        failed_partitions = self._failed_partitions
        pages = self._pages
        stamps = self._stamps
        has_device = self._has_device
        checked: set = set()
        out = []
        for pid in page_ids:
            partition = pid.partition
            if partition not in checked:
                if partition in failed_partitions:
                    raise MediaFailureError(
                        f"partition {partition} has suffered a media failure"
                    )
                checked.add(partition)
            try:
                version = pages[pid].version
            except KeyError:
                raise PageNotFoundError(pid) from None
            if has_device:
                self._device_read(pid)
            stamp = stamps[pid]
            if version is not stamp and version.checksum() != stamp.checksum():
                raise CorruptPageError(pid, store="stable")
            out.append((pid, version))
        return out

    def page_lsn(self, page_id: PageId) -> LSN:
        return self.read_page(page_id).page_lsn

    def iter_pages(self) -> Iterator[Tuple[PageId, PageVersion]]:
        self._check_media()
        for pid in self.layout.all_pages():
            yield pid, self._pages[pid].snapshot()

    def snapshot(self) -> Dict[PageId, PageVersion]:
        """A consistent point-in-time copy of the whole store (test aid)."""
        self._check_media()
        return {pid: page.snapshot() for pid, page in self._pages.items()}

    # ----------------------------------------------------------------- writes

    def write_page(self, page_id: PageId, value: Any, lsn: LSN) -> None:
        """Atomically overwrite one page (disk write atomicity)."""
        self._check_media(page_id.partition)
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            self._faults.check(IOPoint.STABLE_WRITE, corrupt=self._bitrot)
        page = self._page(page_id)
        self._store_version(page_id, page.version.with_update(value, lsn))
        self.page_writes += 1

    def write_pages_atomically(
        self, versions: Mapping[PageId, PageVersion]
    ) -> None:
        """Install several pages as one atomic action.

        Used when a write-graph node requires vars(n) with |vars(n)| > 1 to
        be flushed together.  All pages are validated before any is
        modified, so the action is all-or-nothing even on errors.  With a
        fault plane attached, atomicity is furnished by the shadow
        journal: pre-images are journalled first, and a torn write (only
        a prefix of the cells lands, then :class:`SimulatedCrash`) is
        rolled back by :meth:`repair_torn` during recovery.
        """
        self._check_media()
        for pid in versions:
            self._check_media(pid.partition)
        cells = [(pid, self._page(pid), ver) for pid, ver in versions.items()]
        torn_keep: Optional[int] = None
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            # The check may raise (transient / crash) before anything is
            # mutated, so callers can retry cleanly.
            torn_keep = self._faults.check(
                IOPoint.STABLE_MULTI_WRITE, parts=len(cells),
                corrupt=self._bitrot,
            )
            if len(cells) > 1:
                self._shadow = [
                    (pid, self._pages[pid].version) for pid in versions
                ]
                if self._has_device:
                    self._device_journal(self._shadow)
        if torn_keep is not None:
            for pid, _cell, ver in cells[:torn_keep]:
                self._store_version(pid, ver)
                self.page_writes += 1
            raise SimulatedCrash(
                "stable.write_multi", self._faults.io_count, torn=True
            )
        for pid, _cell, ver in cells:
            self._store_version(pid, ver)
            self.page_writes += 1
        if self._shadow:
            self._shadow = []
            if self._has_device:
                self._device_clear_journal()
        if len(cells) > 1:
            self.multi_page_flushes += 1

    def install_version(self, page_id: PageId, version: PageVersion) -> None:
        """Atomically overwrite one page with a prepared version."""
        self.write_pages_atomically({page_id: version})

    # ------------------------------------------------------ torn-write repair

    def repair_torn(self) -> int:
        """Roll back an incomplete multi-page install from the shadow.

        Called at the start of crash recovery (the doublewrite-buffer
        scan every real system performs): if a multi-page write was in
        flight when the system halted, the journalled pre-images are
        restored, re-establishing all-or-nothing semantics.  Returns the
        number of pages reverted.
        """
        if not self._shadow:
            return 0
        reverted = 0
        for pid, version in self._shadow:
            self._store_version(pid, version)
            reverted += 1
        self._shadow = []
        if self._has_device:
            self._device_clear_journal()
        if self._faults is not None and self._faults.metrics is not None:
            self._faults.metrics.torn_writes_repaired += reverted
        return reverted

    # ---------------------------------------------------------- media failure

    @property
    def failed(self) -> bool:
        return self._failed

    def fail_media(self) -> None:
        """Simulate loss of the stable medium: content becomes inaccessible."""
        self._failed = True

    def fail_partition(self, partition: int) -> None:
        """Partial media failure (§6.3): one partition becomes unreadable."""
        self.layout.partition_size(partition)  # validates the id
        self._failed_partitions.add(partition)

    @property
    def failed_partitions(self) -> frozenset:
        return frozenset(self._failed_partitions)

    def restore_partition_from(
        self,
        partition: int,
        versions: Mapping[PageId, PageVersion],
        initial_value: Any = None,
    ) -> None:
        """Re-format one partition from backup content; other partitions
        are untouched."""
        self._failed_partitions.discard(partition)
        for pid in self.layout.pages_in_partition(partition):
            page = Page.empty(pid, initial_value)
            self._pages[pid] = page
            self._stamps[pid] = page.version
        for pid, ver in versions.items():
            if pid.partition != partition:
                raise PageNotFoundError(pid)
            self._store_version(pid, ver)

    def restore_from(
        self, versions, initial_value: Any = None
    ) -> None:
        """Re-format the store from backup content (off-line restore, §1).

        ``versions`` is a mapping of ``PageId`` to ``PageVersion``, or —
        for the streamed restore path — any iterable of ``(page_id,
        version)`` pairs (e.g. ``BackupDatabase.iter_pages()``), so the
        backup image never has to be materialized as a second full dict.
        Pages absent from ``versions`` (never copied because never
        written) are formatted to the initial value.
        """
        self._failed = False
        self._failed_partitions.clear()
        self._shadow = []
        self._pages = {
            pid: Page.empty(pid, initial_value)
            for pid in self.layout.all_pages()
        }
        self._stamps = {pid: page.version for pid, page in self._pages.items()}
        items = versions.items() if hasattr(versions, "items") else versions
        for pid, ver in items:
            self._page(pid)  # validates the id
            self._store_version(pid, ver)

    # --------------------------------------------------------------- plumbing

    def _page(self, page_id: PageId) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None

    def _check_media(self, partition: Optional[int] = None) -> None:
        if self._failed:
            raise MediaFailureError("stable database media has failed")
        if partition is not None and partition in self._failed_partitions:
            raise MediaFailureError(
                f"partition {partition} has suffered a media failure"
            )

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)
