"""Physical layout: the backup order ``#X`` of section 3.4.

With each object X the paper associates a value ``#X`` in the backup
(partial) order such that ``#X < #Y`` guarantees X is copied to the backup
before Y.  These values "can be derived from the physical locations of data
on disk"; here they are derived from the page's (partition, slot) address.

Progress is tracked *per partition* (section 3.4), which permits partitions
to be backed up in parallel.  Within a partition the order is total: the
position of ``PageId(p, s)`` is simply ``s``.  ``MIN_POS``/``max_pos`` play
the roles of the paper's Min and Max sentinels: ``Min < #X < Max`` for all
real pages.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import PartitionError
from repro.ids import PageId

# Sentinel strictly below every real position (real positions are >= 0).
MIN_POS = -1


class Layout:
    """Maps pages to partitions and backup-order positions.

    Parameters
    ----------
    pages_per_partition:
        list giving, for each partition index, how many page slots it has.
    """

    def __init__(self, pages_per_partition: List[int]):
        if not pages_per_partition:
            raise PartitionError("layout needs at least one partition")
        for i, n in enumerate(pages_per_partition):
            if n <= 0:
                raise PartitionError(
                    f"partition {i} must have a positive page count, got {n}"
                )
        self._sizes = list(pages_per_partition)

    @property
    def num_partitions(self) -> int:
        return len(self._sizes)

    def partition_size(self, partition: int) -> int:
        self._check_partition(partition)
        return self._sizes[partition]

    def max_pos(self, partition: int) -> int:
        """The paper's Max sentinel for ``partition``: strictly above all #X."""
        return self.partition_size(partition)

    def min_pos(self, partition: int) -> int:  # noqa: ARG002 - uniform API
        """The paper's Min sentinel: strictly below all #X."""
        self._check_partition(partition)
        return MIN_POS

    def position(self, page_id: PageId) -> int:
        """Backup-order position ``#X`` of ``page_id`` within its partition."""
        self._check_page(page_id)
        return page_id.slot

    def contains(self, page_id: PageId) -> bool:
        return (
            0 <= page_id.partition < len(self._sizes)
            and 0 <= page_id.slot < self._sizes[page_id.partition]
        )

    def pages_in_partition(self, partition: int) -> Iterator[PageId]:
        """All pages of ``partition`` in backup order."""
        self._check_partition(partition)
        for slot in range(self._sizes[partition]):
            yield PageId(partition, slot)

    def all_pages(self) -> Iterator[PageId]:
        for partition in range(len(self._sizes)):
            yield from self.pages_in_partition(partition)

    def total_pages(self) -> int:
        return sum(self._sizes)

    def step_boundaries(self, partition: int, steps: int) -> List[int]:
        """Positions P_1 < P_2 < ... < P_steps = Max for an N-step backup.

        The boundaries split the partition into ``steps`` approximately
        equal pieces, matching the analysis of section 5 ("a backup is done
        in N equal steps").
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        size = self.partition_size(partition)
        maximum = self.max_pos(partition)
        if steps >= size:
            # Degenerate: one page (or less) per step.
            return list(range(1, size)) + [maximum]
        boundaries = []
        for m in range(1, steps):
            boundaries.append((size * m) // steps)
        boundaries.append(maximum)
        # Deduplicate while preserving order (tiny partitions).
        out: List[int] = []
        for b in boundaries:
            if not out or b > out[-1]:
                out.append(b)
        if out[-1] != maximum:
            out.append(maximum)
        return out

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < len(self._sizes):
            raise PartitionError(
                f"partition {partition} out of range "
                f"[0, {len(self._sizes)})"
            )

    def _check_page(self, page_id: PageId) -> None:
        if not self.contains(page_id):
            raise PartitionError(f"page {page_id!r} not in layout")

    def describe(self) -> Dict[int, int]:
        """Partition → size mapping, for diagnostics."""
        return dict(enumerate(self._sizes))
