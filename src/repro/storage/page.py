"""Page objects: the paper's recoverable objects.

A page couples a *value* with the LSN of the last logged operation whose
effect on the page the value reflects (``page_lsn``).  The LSN is what the
LSN-based redo test of section 2 consults: an operation with LSN ``L`` must
be replayed against page ``X`` iff ``X.page_lsn < L``.

Values are arbitrary immutable Python objects (tuples, bytes, frozensets,
ints, strings).  Mutability is rejected defensively for lists/dicts/sets at
construction, because sharing a mutable value between the cache, S and B
would silently break the simulation's fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ids import LSN, NULL_LSN, PageId

_MUTABLE_TYPES = (list, dict, set, bytearray)


def check_value(value: Any) -> Any:
    """Reject obviously mutable page values; return the value unchanged."""
    if isinstance(value, _MUTABLE_TYPES):
        raise TypeError(
            f"page values must be immutable; got {type(value).__name__}. "
            "Use a tuple / frozenset / bytes instead."
        )
    return value


@dataclass(frozen=True)
class PageVersion:
    """An immutable (value, page_lsn) snapshot of a page."""

    value: Any
    page_lsn: LSN = NULL_LSN

    def __post_init__(self):
        check_value(self.value)
        if self.page_lsn < NULL_LSN:
            raise ValueError(f"page_lsn must be >= {NULL_LSN}")

    def with_update(self, value: Any, lsn: LSN) -> "PageVersion":
        """Return a new version carrying ``value`` stamped with ``lsn``."""
        return PageVersion(check_value(value), lsn)


@dataclass
class Page:
    """A mutable page cell as held by a page store or the cache.

    ``Page`` is a thin mutable wrapper over :class:`PageVersion` so that
    stores can update in place while snapshots stay immutable.
    """

    page_id: PageId
    version: PageVersion

    @classmethod
    def empty(cls, page_id: PageId, initial_value: Any = None) -> "Page":
        return cls(page_id, PageVersion(initial_value, NULL_LSN))

    @property
    def value(self) -> Any:
        return self.version.value

    @property
    def page_lsn(self) -> LSN:
        return self.version.page_lsn

    def update(self, value: Any, lsn: LSN) -> None:
        """Overwrite the page content, stamping it with ``lsn``.

        LSN-based recovery never rolls state backward, so the stamp must
        not decrease except for the deliberate NULL_LSN reset used when
        formatting a store.
        """
        self.version = self.version.with_update(value, lsn)

    def snapshot(self) -> PageVersion:
        return self.version
