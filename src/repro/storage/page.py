"""Page objects: the paper's recoverable objects.

A page couples a *value* with the LSN of the last logged operation whose
effect on the page the value reflects (``page_lsn``).  The LSN is what the
LSN-based redo test of section 2 consults: an operation with LSN ``L`` must
be replayed against page ``X`` iff ``X.page_lsn < L``.

Values are arbitrary immutable Python objects (tuples, bytes, frozensets,
ints, strings).  Mutability is rejected defensively for lists/dicts/sets at
construction, because sharing a mutable value between the cache, S and B
would silently break the simulation's fidelity.

This module also defines the **integrity envelope**: a CRC32 checksum
over a page version's canonical encoding (:func:`page_checksum`).  Page
stores stamp the checksum at write time and verify it on read, so silent
corruption (bit rot, a misdirected write) surfaces as a typed
:class:`~repro.errors.CorruptPageError` instead of propagating garbage
into replay — validated page reads are the precondition single-pass REDO
recovery relies on.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any

from repro.ids import LSN, NULL_LSN, PageId

_MUTABLE_TYPES = (list, dict, set, bytearray)

#: Marker prefix for a deliberately rotted value (see :func:`rot_value`).
BITROT_MARKER = "☠bitrot"


def page_checksum(value: Any, page_lsn: LSN) -> int:
    """CRC32 integrity envelope over a page's canonical encoding.

    The checksum covers both the value and its LSN stamp, so a
    misdirected write (right value, wrong LSN epoch) is detected too.
    ``bytes`` payloads — the shape real page images have — take a fast
    path: the CRC runs directly over a :class:`memoryview` of the
    payload, seeded with the LSN prefix, so no intermediate encoding or
    concatenation is allocated.  Structured values go through the shared
    codec; values it cannot encode (e.g. the replayer's POISON sentinel)
    fall back to ``repr`` — stable within a process, which is the
    lifetime of an in-memory store.
    """
    if type(value) is bytes:
        return zlib.crc32(memoryview(value), zlib.crc32(b"%d|" % page_lsn))

    from repro.codec import CodecError, encode_value

    try:
        payload = json.dumps(
            encode_value(value), sort_keys=True, separators=(",", ":")
        )
    except CodecError:
        payload = repr(value)
    return zlib.crc32(f"{page_lsn}|{payload}".encode("utf-8"))


def rot_value(value: Any) -> Any:
    """A deterministic "bit-flipped" replacement for a page value.

    Page values are structured Python objects, so bit rot is simulated
    by substituting a marked tuple that is never equal to the original —
    the stale checksum then fails verification exactly as a flipped bit
    in a real page image would.
    """
    return (BITROT_MARKER, repr(value))


def check_value(value: Any) -> Any:
    """Reject obviously mutable page values; return the value unchanged."""
    if isinstance(value, _MUTABLE_TYPES):
        raise TypeError(
            f"page values must be immutable; got {type(value).__name__}. "
            "Use a tuple / frozenset / bytes instead."
        )
    return value


@dataclass(frozen=True)
class PageVersion:
    """An immutable (value, page_lsn) snapshot of a page."""

    value: Any
    page_lsn: LSN = NULL_LSN

    def __post_init__(self):
        check_value(self.value)
        if self.page_lsn < NULL_LSN:
            raise ValueError(f"page_lsn must be >= {NULL_LSN}")

    def with_update(self, value: Any, lsn: LSN) -> "PageVersion":
        """Return a new version carrying ``value`` stamped with ``lsn``."""
        return PageVersion(check_value(value), lsn)

    def checksum(self) -> int:
        """This version's CRC32 integrity envelope (computed once).

        Versions are immutable, so the envelope is cached on the
        instance: a page that flows cache → stable → backup pays for
        one encoding, not one per hop.  Simulated rot replaces the
        version object wholesale (:func:`rot_value`), so a rotted cell
        recomputes from scratch and fails verification against the
        stale envelope its store recorded at install time.
        """
        crc = getattr(self, "_crc", None)
        if crc is None:
            crc = page_checksum(self.value, self.page_lsn)
            object.__setattr__(self, "_crc", crc)
        return crc


@dataclass
class Page:
    """A mutable page cell as held by a page store or the cache.

    ``Page`` is a thin mutable wrapper over :class:`PageVersion` so that
    stores can update in place while snapshots stay immutable.
    """

    page_id: PageId
    version: PageVersion

    @classmethod
    def empty(cls, page_id: PageId, initial_value: Any = None) -> "Page":
        return cls(page_id, PageVersion(initial_value, NULL_LSN))

    @property
    def value(self) -> Any:
        return self.version.value

    @property
    def page_lsn(self) -> LSN:
        return self.version.page_lsn

    def update(self, value: Any, lsn: LSN) -> None:
        """Overwrite the page content, stamping it with ``lsn``.

        LSN-based recovery never rolls state backward, so the stamp must
        not decrease except for the deliberate NULL_LSN reset used when
        formatting a store.
        """
        self.version = self.version.with_update(value, lsn)

    def snapshot(self) -> PageVersion:
        return self.version
