"""The backup database B.

A :class:`BackupDatabase` is the output of one backup run: a fuzzy copy of
the stable database taken page-by-page while updates continued, plus the
bookkeeping media recovery needs:

* ``media_scan_start_lsn`` — the media-recovery log scan start point,
  fixed when the backup begins (section 1.2: "the media recovery log scan
  start point can be the crash recovery log scan start point at the time
  backup begins");
* per-page versions recorded in copy order, so tests can verify that the
  backup respected the declared backup order.

The backup is immutable once sealed (``complete()``); media recovery only
ever reads completed backups.
"""

from __future__ import annotations

import enum
import warnings
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import BackupError, CorruptPageError, TornWriteError
from repro.ids import LSN, PageId
from repro.storage.page import PageVersion, rot_value


class BackupStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    COMPLETE = "complete"
    ABORTED = "aborted"


class BackupDatabase:
    """One backup image of the database, fuzzy w.r.t. transaction boundaries.

    Like the stable database, every recorded page carries a **lazy**
    integrity envelope: the stamp is a reference to the exact
    :class:`~repro.storage.page.PageVersion` recorded at copy time, so
    verifying an undamaged page is an identity check and costs no CRC
    arithmetic.  Simulated rot replaces the recorded version object
    without touching the stamp; the identity miss then forces a CRC
    comparison (always computed from the *stamp*, never laundered from
    the rotted cell) and the page reads as damaged.  :meth:`read_page`
    and :meth:`verify_pages` check this, and media recovery consults
    :meth:`damaged_pages` before trusting the image — a rotted backup
    page triggers fallback to an older generation instead of silently
    restoring garbage.
    """

    def __init__(
        self,
        backup_id: int,
        media_scan_start_lsn: LSN,
        base_backup_id: Optional[int] = None,
    ):
        self.backup_id = backup_id
        self.media_scan_start_lsn = media_scan_start_lsn
        # For incremental backups: the full backup this image extends.
        self.base_backup_id = base_backup_id
        self._versions: Dict[PageId, PageVersion] = {}
        self._stamps: Dict[PageId, PageVersion] = {}
        self._copy_order: List[PageId] = []
        self._status = BackupStatus.IN_PROGRESS
        self.completion_lsn: Optional[LSN] = None
        # Optional FaultPlane (see repro.sim.faults), wired by the engine.
        self._faults = None
        # True in device-backed subclasses (gates the per-record hooks).
        self._has_device = getattr(self, "_has_device", False)

    # ------------------------------------------------------ protocol plumbing

    @property
    def faults(self):
        """The attached fault plane (``None`` = no injection)."""
        return self._faults

    @faults.setter
    def faults(self, plane) -> None:
        warnings.warn(
            "assigning BackupDatabase.faults directly is deprecated; call "
            "attach_faults(plane) (the BackupStore protocol method) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._faults = plane

    def attach_faults(self, plane):
        """Attach a fault plane at the BackupStore protocol boundary."""
        self._faults = plane
        return plane

    def close(self) -> None:
        """Release device resources (no-op for the in-memory backend)."""

    # -- device hooks: no-ops here, overridden by file-backed subclasses.

    def _device_record(self, entries) -> None:
        """Persist freshly recorded ``(page_id, version)`` pairs."""

    def _device_complete(self) -> None:
        """Persist the seal (completion metadata) and release the fd."""

    # ------------------------------------------------------------- integrity

    def verify_page(self, page_id: PageId) -> bool:
        """Does a recorded page still match its integrity envelope?"""
        version = self._versions.get(page_id)
        if version is None:
            return True
        stamp = self._stamps[page_id]
        return version is stamp or version.checksum() == stamp.checksum()

    def verify_pages(self, page_ids: Iterable[PageId]) -> None:
        """Raise :class:`CorruptPageError` if any given page is damaged."""
        for pid in page_ids:
            if not self.verify_page(pid):
                raise CorruptPageError(
                    pid, store="backup",
                    detail=f"backup {self.backup_id}",
                )

    def damaged_pages(self) -> List[PageId]:
        """Every recorded page failing its integrity check."""
        stamps = self._stamps
        return sorted(
            pid
            for pid, version in self._versions.items()
            if version is not stamps[pid]
            and version.checksum() != stamps[pid].checksum()
        )

    def stored_checksum(self, page_id: PageId) -> int:
        """The envelope recorded at copy time, *not* recomputed.

        Archiving must carry the original envelope along so damage that
        crept in after the copy still fails verification downstream.
        The CRC is materialized here from the *stamp* — the version
        object recorded at copy time — never from the current cell, so
        post-copy rot cannot launder itself into the archive envelope.
        """
        stamp = self._stamps.get(page_id)
        if stamp is None:  # pre-envelope image (e.g. hand-built in tests)
            return self._versions[page_id].checksum()
        return stamp.checksum()

    def _bitrot(self, rng) -> bool:
        """Silently rot one recorded page (fault-plane corruptor).

        The envelope is left stale — detection happens at the next
        verified read.  Returns ``False`` when nothing has been recorded
        yet (the fault stays armed).
        """
        if not self._copy_order:
            return False
        self._rot_cell(self._copy_order[rng.randrange(len(self._copy_order))])
        return True

    def _rot_cell(self, pid: PageId) -> None:
        """Corrupt one recorded page in place, leaving the stamp stale.

        Device-backed subclasses extend this to also flip bytes in the
        on-disk record, so the same injection damages both surfaces.
        """
        old = self._versions[pid]
        self._versions[pid] = PageVersion(rot_value(old.value), old.page_lsn)

    # --------------------------------------------------------------- writing

    def record_page(self, page_id: PageId, version: PageVersion) -> None:
        """Record the copy of one page from S into this backup."""
        if self._status is not BackupStatus.IN_PROGRESS:
            raise BackupError(
                f"backup {self.backup_id} is {self._status.value}; "
                "cannot record pages"
            )
        if page_id in self._versions:
            raise BackupError(
                f"page {page_id!r} copied twice into backup {self.backup_id}"
            )
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            self._faults.check(IOPoint.BACKUP_RECORD, corrupt=self._bitrot)
        self._versions[page_id] = version
        self._stamps[page_id] = version
        self._copy_order.append(page_id)
        if self._has_device:
            self._device_record([(page_id, version)])

    def record_pages(self, entries) -> None:
        """Bulk variant of :meth:`record_page` for the batched sweep.

        ``entries`` is an iterable of ``(page_id, version)`` pairs; the
        status is checked once for the whole batch, the double-copy check
        still applies per page.  A torn fault lands only a prefix of the
        span and raises :class:`TornWriteError` carrying how many pages
        landed; the sweep re-issues the remainder (see
        ``BackupRun._record_span``).
        """
        if self._status is not BackupStatus.IN_PROGRESS:
            raise BackupError(
                f"backup {self.backup_id} is {self._status.value}; "
                "cannot record pages"
            )
        entries = list(entries)
        torn_keep = None
        if self._faults is not None:
            from repro.sim.faults import IOPoint

            torn_keep = self._faults.check(
                IOPoint.BACKUP_BULK_RECORD, parts=len(entries),
                corrupt=self._bitrot,
            )
        versions = self._versions
        stamps = self._stamps
        order = self._copy_order
        landing = entries if torn_keep is None else entries[:torn_keep]
        for page_id, version in landing:
            if page_id in versions:
                raise BackupError(
                    f"page {page_id!r} copied twice into backup "
                    f"{self.backup_id}"
                )
            versions[page_id] = version
            stamps[page_id] = version
            order.append(page_id)
        if self._has_device and landing:
            # A torn span still persists its landed prefix before the
            # tear is reported, matching the in-memory state.
            self._device_record(landing)
        if torn_keep is not None:
            raise TornWriteError(
                "backup.record_pages", landed=torn_keep, total=len(entries)
            )

    # ---------------------------------------------------- post-seal repair

    def heal_page(self, page_id: PageId, version: PageVersion) -> None:
        """Replace a damaged recorded page with a reconstructed version.

        The archive healer's install point (docs/ARCHIVE.md): the page
        must already be recorded (healing never widens a copy set), and
        the envelope is re-stamped so the healed cell verifies clean.
        The in-memory image is the recovery read surface; file-backed
        images keep their original on-disk record — its stale envelope
        still fails verification if the file is read fresh, so damage is
        never laundered into the durable artifact.
        """
        if self._status is not BackupStatus.COMPLETE:
            raise BackupError(
                f"backup {self.backup_id} is {self._status.value}; only "
                "sealed images can be healed"
            )
        if page_id not in self._versions:
            raise BackupError(
                f"page {page_id!r} was never recorded in backup "
                f"{self.backup_id}; healing cannot widen the copy set"
            )
        self._versions[page_id] = version
        self._stamps[page_id] = version

    def drop_page(self, page_id: PageId) -> None:
        """Remove a damaged recorded page from a sealed image.

        Used when a newer chain generation shadows the page: the overlay
        never reads the dropped cell, and restores fall back to an
        earlier copy plus the base-scan-start replay (cost-only, never
        wrong — the same argument as skip-damaged-link-pages).
        """
        if self._status is not BackupStatus.COMPLETE:
            raise BackupError(
                f"backup {self.backup_id} is {self._status.value}; only "
                "sealed images can drop pages"
            )
        if page_id not in self._versions:
            raise BackupError(
                f"page {page_id!r} was never recorded in backup "
                f"{self.backup_id}"
            )
        del self._versions[page_id]
        del self._stamps[page_id]
        self._copy_order.remove(page_id)

    def complete(self, completion_lsn: LSN) -> None:
        if self._status is not BackupStatus.IN_PROGRESS:
            raise BackupError(f"backup {self.backup_id} already sealed")
        self._status = BackupStatus.COMPLETE
        self.completion_lsn = completion_lsn
        if self._has_device:
            self._device_complete()

    def abort(self) -> None:
        if self._status is BackupStatus.IN_PROGRESS:
            self._status = BackupStatus.ABORTED
            self.close()

    # --------------------------------------------------------------- reading

    @property
    def status(self) -> BackupStatus:
        return self._status

    @property
    def is_complete(self) -> bool:
        return self._status is BackupStatus.COMPLETE

    def read_page(self, page_id: PageId) -> Optional[PageVersion]:
        version = self._versions.get(page_id)
        if version is not None:
            stamp = self._stamps[page_id]
            if version is not stamp and version.checksum() != stamp.checksum():
                raise CorruptPageError(
                    page_id, store="backup", detail=f"backup {self.backup_id}"
                )
        return version

    def pages(self) -> Dict[PageId, PageVersion]:
        return dict(self._versions)

    def iter_pages(self) -> Iterable[Tuple[PageId, PageVersion]]:
        """Stream ``(page_id, version)`` pairs without materializing a dict.

        Media recovery restores from this at O(page) peak memory (the
        in-memory image is shared, not copied; file-backed subclasses
        read the same surface).  Like :meth:`pages`, versions are the raw
        recorded cells — callers that need damage screening consult
        :meth:`damaged_pages` first, exactly as the generation-selection
        gate does.
        """
        return iter(list(self._versions.items()))

    def read_span(
        self, partition: int, start: int, stop: int
    ) -> List[Tuple[PageId, PageVersion]]:
        """Recorded pages of one partition with ``start <= slot < stop``.

        The per-span read surface for background instant restore: worker
        tasks pull whole partitions (or step-sized slices) in one call,
        mirroring the sweep's span reads on the stable side.  Pages the
        backup never recorded are simply absent from the result.
        """
        versions = self._versions
        out = []
        for slot in range(start, stop):
            pid = PageId(partition, slot)
            version = versions.get(pid)
            if version is not None:
                out.append((pid, version))
        return out

    def copy_order(self) -> List[PageId]:
        return list(self._copy_order)

    def copied_count(self) -> int:
        return len(self._copy_order)

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._versions

    def __repr__(self):
        return (
            f"BackupDatabase(id={self.backup_id}, status={self._status.value},"
            f" pages={len(self._versions)},"
            f" scan_start={self.media_scan_start_lsn})"
        )
