"""Identifier types used throughout the library.

The paper's recoverable objects are pages; a page lives in a partition and
occupies a slot within that partition.  The pair (partition, slot) is the
page's *physical address*, and the backup order ``#X`` of section 3.4 is
derived from it (see :mod:`repro.storage.layout`).

``LSN`` values are plain integers; ``NULL_LSN`` (0) sorts before every real
log sequence number, so a page that has never been written has
``page_lsn == NULL_LSN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter as _itemgetter
from typing import Union

# Log sequence numbers are plain ints; the first record appended gets LSN 1.
LSN = int
NULL_LSN: LSN = 0


class PageId(tuple):
    """Physical address of a recoverable page: (partition, slot).

    Ordering is lexicographic (partition, slot), which is also the default
    backup order used by :class:`repro.storage.layout.Layout`.

    PageId is the dict key on every cache, holder-map, and backup-progress
    lookup, so it subclasses ``tuple``: hashing, equality and ordering run
    at C speed with no Python-level dispatch (hashing dominates those
    lookups otherwise).  ``partition``/``slot`` are itemgetter properties
    over the two elements.
    """

    __slots__ = ()

    def __new__(cls, partition: int, slot: int):
        if partition < 0:
            raise ValueError(f"partition must be >= 0, got {partition}")
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return tuple.__new__(cls, (partition, slot))

    partition = property(_itemgetter(0), doc="Partition index.")
    slot = property(_itemgetter(1), doc="Slot within the partition.")

    def __getnewargs__(self):
        return tuple(self)

    def __repr__(self):
        return f"P{self[0]}:{self[1]}"


@dataclass(frozen=True, order=True)
class AppId:
    """Identifier of an application whose state is a recoverable object.

    Application state (section 6.2 of the paper) is modelled as a page in a
    dedicated partition, but callers address applications by name.
    """

    name: str

    def __repr__(self):
        return f"App({self.name})"


# An object identifier appearing in read/write sets: always a PageId once
# resolved; AppId is resolved to a PageId by the application domain layer.
ObjectId = Union[PageId]


def page_range(partition: int, count: int, start: int = 0):
    """Yield ``count`` consecutive PageIds in ``partition`` from ``start``."""
    for slot in range(start, start + count):
        yield PageId(partition, slot)
