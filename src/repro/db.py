"""``Database``: the public facade over the whole system.

A ``Database`` wires together the stable store, log manager, cache
manager, oracle, and backup engine, and exposes the operations a
downstream user (or an experiment harness) needs:

>>> from repro import BackupConfig, Database, CopyOp, PhysicalWrite
>>> from repro.ids import PageId
>>> db = Database(pages_per_partition=[64])
>>> db.execute(PhysicalWrite(PageId(0, 3), ("hello",)))   # doctest: +ELLIPSIS
<LSN 1: W_P(P0:3)>
>>> db.execute(CopyOp(PageId(0, 3), PageId(0, 40)))       # doctest: +ELLIPSIS
<LSN 2: copy(P0:3 -> P0:40)>
>>> run = db.start_backup(BackupConfig(steps=4))
>>> backup = db.run_backup(BackupConfig(pages_per_tick=16))
>>> db.media_failure()
>>> outcome = db.media_recover()
>>> outcome.ok
True
"""

from __future__ import annotations

import random
import warnings
from typing import Any, List, Optional, Sequence, Set, Union

from repro.cache.cache_manager import CacheManager
from repro.core.backup_engine import BackupEngine, BackupRun
from repro.core.config import BackupConfig
from repro.core.linked_flush import LinkedFlushBackup
from repro.core.naive_backup import NaiveFuzzyDump
from repro.core.incremental import run_media_recovery_chain
from repro.core.partial_recovery import run_partition_media_recovery
from repro.core.retention import LogRetention
from repro.core.verify_backup import validate_backup
from repro.recovery.analysis_pass import run_analyzed_crash_recovery
from repro.recovery.selective_redo import run_selective_redo
from repro.sim.faults import FaultPlane
from repro.wal.checkpoint import CheckpointManager
from repro.core.policy import (
    FlushPolicy,
    GeneralOpsPolicy,
    PageOrientedPolicy,
    TreeOpsPolicy,
)
from repro.errors import NoBackupError, RecoveryError, ReproError
from repro.ids import LSN, PageId
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER
from repro.ops.base import Operation
from repro.recovery.crash_recovery import run_crash_recovery
from repro.recovery.explain import RecoveryOutcome
from repro.recovery.instant_restore import RestoreManager
from repro.recovery.media_recovery import run_media_recovery
from repro.sim.metrics import Metrics
from repro.sim.oracle import Oracle
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag

_POLICIES = {
    "general": GeneralOpsPolicy,
    "tree": TreeOpsPolicy,
    "page": PageOrientedPolicy,
    "page-oriented": PageOrientedPolicy,
}


class Database:
    """A single-node database with media recovery via online backup."""

    @classmethod
    def bootstrap_from_backup(
        cls,
        backup: BackupDatabase,
        source_log: LogManager,
        pages_per_partition: Sequence[int],
        policy: Union[str, FlushPolicy] = "general",
        initial_value: Any = None,
    ) -> "Database":
        """Stand up a brand-new node from an archived backup + log.

        The replacement-hardware flow: load the backup (e.g. via
        :func:`repro.storage.archive.load_backup`), roll the shipped log
        forward, and return a fresh, fully functional database in a new
        LSN epoch.  Implemented as seed-and-promote of a standby.
        """
        from repro.core.standby import StandbyReplica

        layout = Layout(list(pages_per_partition))
        replica = StandbyReplica.seed_from_backup(
            backup, source_log, layout, initial_value
        )
        policy_name = policy if isinstance(policy, str) else policy.name
        return replica.promote(policy=policy_name)

    def __init__(
        self,
        pages_per_partition: Sequence[int] = (256,),
        policy: Union[str, FlushPolicy] = "general",
        initial_value: Any = None,
        auto_force_log: bool = True,
        faults: Optional[FaultPlane] = None,
        tracer=None,
        log_streams: int = 1,
        backend: str = "memory",
        data_dir: Optional[str] = None,
        storage=None,
        redo_workers: int = 1,
    ):
        """``log_streams=1`` (the default) keeps the plain single-stream
        :class:`~repro.wal.log_manager.LogManager`; ``log_streams > 1``
        stripes the WAL across that many independent streams with group
        commit (:class:`~repro.wal.multi_log.MultiLogManager`) — the
        same LSN/recovery contract, concurrent appends without a shared
        hot counter.

        ``redo_workers=1`` keeps recovery replay serial;
        ``redo_workers > 1`` fans every recovery flavour's replay
        (crash, media, chain, selective, instant restore, PITR) out to
        the dependency-aware parallel replayer
        (:mod:`repro.recovery.parallel_redo`) with byte-identical
        outcomes.

        ``backend``/``data_dir`` select the storage backend (see
        :func:`repro.storage.api.open_backend`): ``"memory"`` keeps the
        in-memory stores, ``"file"`` puts the stable pages, the WAL
        streams, and every backup image on real files under ``data_dir``
        with explicit ``fsync``.  ``storage`` accepts a pre-built
        :class:`~repro.storage.api.StorageBackend` instead; ``close()``
        releases whatever the backend opened."""
        if isinstance(policy, str):
            try:
                policy = _POLICIES[policy]()
            except KeyError:
                raise ReproError(
                    f"unknown policy {policy!r}; choose from "
                    f"{sorted(_POLICIES)}"
                ) from None
        self.layout = Layout(list(pages_per_partition))
        self.initial_value = initial_value
        if redo_workers < 1:
            raise ReproError("redo_workers must be >= 1")
        self.redo_workers = redo_workers
        from repro.storage.api import open_backend

        self.storage = (
            storage
            if storage is not None
            else open_backend(backend=backend, data_dir=data_dir)
        )
        self.stable = self.storage.create_stable(self.layout, initial_value)
        self.metrics = Metrics()
        if log_streams > 1:
            from repro.wal.multi_log import MultiLogManager

            self.log = MultiLogManager(
                streams=log_streams, auto_force=auto_force_log
            )
            self.log.metrics = self.metrics
        else:
            self.log = LogManager(auto_force=auto_force_log)
        device = self.storage.create_log_device(log_streams)
        if device is not None:
            self.log.attach_device(device)
        self.cm = CacheManager(
            self.stable,
            self.log,
            policy=policy,
            metrics=self.metrics,
            initial_value=initial_value,
        )
        self.oracle = Oracle(self.log, initial_value)
        self.engine = BackupEngine(self.cm, storage=self.storage)
        self.naive = NaiveFuzzyDump(self.cm, storage=self.storage)
        self.linked = LinkedFlushBackup(self.cm, storage=self.storage)
        self.retention = LogRetention(self.cm, self.engine)
        self.checkpoints = CheckpointManager(self.log, lambda: self.cm.rec)
        # Pages updated since the last completed full/incremental backup,
        # for incremental update-set capture (section 6.1).
        self.updated_since_backup: Set[PageId] = set()
        # Which engine the active backup belongs to ("engine"/"naive").
        self._backup_engine_kind = "engine"
        # The log-structured archive tier, attached on demand
        # (attach_archive); None until then.
        self.archive = None
        self.faults: Optional[FaultPlane] = None
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)
        if faults is not None:
            self.attach_faults(faults)

    # ---------------------------------------------------------- observability

    def attach_tracer(self, tracer) -> "Database":
        """Wire a :class:`repro.obs.Tracer` into every subsystem.

        The cache manager (flush decisions, Iw/oF writes, backup
        latches), the log manager (forces), the fault plane (injections)
        and every recovery entry point emit structured events into the
        tracer from now on.  The tracer's histogram sink is pointed at
        this database's metrics so span timings land in
        ``Metrics.phase_timings``.
        """
        self.tracer = tracer
        if getattr(tracer, "metrics", None) is None and tracer.enabled:
            tracer.metrics = self.metrics
        self.cm.attach_tracer(tracer)
        self.log.tracer = tracer
        if self.faults is not None:
            self.faults.tracer = tracer
        return self

    # -------------------------------------------------------- fault injection

    def attach_faults(self, plane: FaultPlane) -> FaultPlane:
        """Wire a :class:`FaultPlane` into every simulated device.

        The stable database, the log manager, and every backup image the
        engine creates from now on consult the plane at each I/O
        boundary; the plane mirrors its injection counters into this
        database's :class:`~repro.sim.metrics.Metrics`.
        """
        self.faults = plane
        plane.metrics = self.metrics
        plane.tracer = self.tracer
        self.stable.attach_faults(plane)
        self.log.attach_faults(plane)
        self.engine.attach_faults(plane)
        return plane

    def ensure_fault_plane(self) -> FaultPlane:
        """The attached fault plane, creating (and wiring) one if absent."""
        if self.faults is None:
            self.attach_faults(FaultPlane())
        return self.faults

    def _faults_suspended(self):
        """Context manager: pause injection while recovery itself runs
        (recovery I/O is driven by the recovery algorithms, not the
        workload under test)."""
        if self.faults is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.faults.suspended()

    def _stamp_outcome(self, outcome):
        """Fill the fault-survival counter on a recovery outcome."""
        if self.faults is not None:
            outcome.faults_survived = self.faults.injected_total
        return outcome

    # ---------------------------------------------------------- transactions

    def execute(self, op: Operation, source: str = "") -> LogRecord:
        """Run one logged operation against the database.

        ``source`` tags the log record with its originator (application
        or transaction name); selective redo (§6.3) uses the tag to
        exclude a corrupting source.
        """
        record = self.cm.execute(op, source=source)
        self.updated_since_backup.update(op.writeset)
        return record

    def execute_all(self, ops: Sequence[Operation]) -> List[LogRecord]:
        return [self.execute(op) for op in ops]

    def read(self, page_id: PageId) -> Any:
        return self.cm.read_page(page_id)

    # --------------------------------------------------------------- flushing

    def flush_page(self, page_id: PageId) -> bool:
        return self.cm.flush_page(page_id)

    def checkpoint(self) -> int:
        return self.cm.checkpoint()

    def install_some(self, count: int, rng: Optional[random.Random] = None) -> int:
        return self.cm.install_some(count, rng or random.Random(0))

    # ---------------------------------------------------------------- backup

    _LEGACY_BACKUP_KWARGS = (
        "steps", "incremental", "dynamic_extend", "batched",
    )

    def _resolve_backup_config(
        self, config, legacy: dict, method: str
    ) -> BackupConfig:
        """Accept a :class:`BackupConfig` or the deprecated keyword/
        positional shape; normalize to a config."""
        if isinstance(config, int):
            # Legacy positional: start_backup(8) meant steps=8.
            legacy = dict(legacy, steps=config)
            config = None
        supplied = {k: v for k, v in legacy.items() if v is not None}
        if config is not None:
            if not isinstance(config, BackupConfig):
                raise ReproError(
                    f"{method} expects a BackupConfig, got {config!r}"
                )
            if supplied:
                raise ReproError(
                    f"{method}: pass either a BackupConfig or the legacy "
                    f"keywords, not both ({sorted(supplied)})"
                )
            return config
        if supplied:
            warnings.warn(
                f"Database.{method}({', '.join(sorted(supplied))}=...) is "
                "deprecated; pass a repro.BackupConfig instead (legacy "
                "keywords are kept as an alias until 2.0)",
                DeprecationWarning,
                stacklevel=3,
            )
        return BackupConfig(**supplied)

    def start_backup(
        self,
        config: Optional[BackupConfig] = None,
        *,
        steps: Optional[int] = None,
        incremental: Optional[bool] = None,
        dynamic_extend: Optional[bool] = None,
        batched: Optional[bool] = None,
    ) -> BackupRun:
        """Begin an online backup; drive it with :meth:`backup_step`.

        Pass a :class:`~repro.core.config.BackupConfig`; the individual
        keyword arguments are a deprecated alias.  With
        ``config.incremental`` only pages updated since the previous
        completed backup are copied (requires a prior backup as base);
        ``config.batched=False`` forces page-at-a-time round-robin
        copying (see :meth:`BackupRun.copy_some`);
        ``config.workers > 1`` fans the batched span reads out to a
        thread pool (§3.4 partition parallelism; see
        :class:`~repro.core.backup_engine.ParallelBackupRun` — the
        sealed image stays byte-identical to the serial sweep's);
        ``config.engine="naive"`` starts the §1.2 fuzzy-dump baseline
        instead (``"linked"`` is synchronous — use :meth:`run_backup`).
        """
        cfg = self._resolve_backup_config(
            config,
            dict(steps=steps, incremental=incremental,
                 dynamic_extend=dynamic_extend, batched=batched),
            "start_backup",
        )
        if cfg.engine == "linked":
            raise ReproError(
                "the linked-flush strawman is synchronous; call "
                "run_backup(BackupConfig(engine='linked')) directly"
            )
        if cfg.engine == "naive":
            self._backup_engine_kind = "naive"
            return self.naive.start_backup()
        self._backup_engine_kind = "engine"
        if cfg.incremental:
            base = self.engine.latest_backup()
            if base is None:
                raise NoBackupError(
                    "incremental backup requires a completed base backup"
                )
            run = self.engine.start_backup(
                steps=cfg.steps,
                update_set=set(self.updated_since_backup),
                base_backup=base,
                dynamic_extend=cfg.dynamic_extend,
                batched=cfg.batched,
                workers=cfg.workers,
                executor=cfg.executor,
            )
        else:
            run = self.engine.start_backup(
                steps=cfg.steps, batched=cfg.batched, workers=cfg.workers,
                executor=cfg.executor,
            )
        self.updated_since_backup = set()
        return run

    def backup_step(self, pages: int = 8) -> int:
        """Copy some pages of the active backup; returns pages copied."""
        if self._backup_engine_kind == "naive":
            return self.naive.copy_some(pages)
        return self.engine.copy_some(pages)

    def run_backup(
        self,
        config: Optional[BackupConfig] = None,
        *,
        pages_per_tick: Optional[int] = None,
        tick=None,
    ) -> BackupDatabase:
        """Drive the active backup to completion (see ``tick`` for
        interleaving a workload).

        Accepts a :class:`BackupConfig` (``pages_per_tick`` is the batch
        size; ``engine="linked"`` takes a complete synchronous
        linked-flush backup, no :meth:`start_backup` needed).  The bare
        ``pages_per_tick`` keyword is a deprecated alias.
        """
        if isinstance(config, int):
            config, pages_per_tick = None, config
        cfg = self._resolve_backup_config(
            config, dict(pages_per_tick=pages_per_tick), "run_backup"
        )
        if not self.backup_in_progress() and cfg.engine == "linked":
            return self.linked.run()
        if self._backup_engine_kind == "naive":
            while self.naive.active is not None:
                self.naive.copy_some(cfg.pages_per_tick)
                if tick is not None and self.naive.active is not None:
                    tick()
            return self.naive.completed[-1]
        return self.engine.run_to_completion(cfg.pages_per_tick, tick=tick)

    def backup_in_progress(self) -> bool:
        if self._backup_engine_kind == "naive":
            return self.naive.active is not None
        return self.engine.active is not None

    # ------------------------------------------------------- archive tier

    def attach_archive(
        self,
        config: Optional[BackupConfig] = None,
        manifest_store=None,
        adopt: bool = True,
    ):
        """Attach the log-structured archive tier (docs/ARCHIVE.md).

        Returns the :class:`~repro.archive.manager.ArchiveManager`
        managing this database's generation chain.  ``config`` supplies
        both the sweep shape for the generations it takes and the
        scheduling knobs (``incremental_every``, ``compact_threshold``);
        the manifest lands in ``manifest_store`` (default: a file store
        under the file backend's data directory, else in memory).  With
        ``adopt=True`` an empty manifest adopts the engine's trailing
        completed chain, so attaching to an already-backed-up database
        keeps its history restorable.  Idempotent: a second call returns
        the existing manager.
        """
        if self.archive is not None:
            return self.archive
        from repro.archive.manager import ArchiveManager

        cfg = config or BackupConfig()
        self.archive = ArchiveManager(
            self,
            incremental_every=cfg.incremental_every,
            compact_threshold=cfg.compact_threshold,
            manifest_store=manifest_store,
            sweep_config=cfg,
        )
        if adopt:
            self.archive.adopt_existing()
        return self.archive

    def restore_to_lsn(
        self, to_lsn: LSN, verify: bool = False
    ) -> RecoveryOutcome:
        """Point-in-time restore: recover the state as of ``to_lsn``.

        Overlays the longest archive-chain prefix sealed at-or-before
        the target and replays the media-log suffix truncated at the
        target — so an operator can restore to a pre-corruption LSN.
        Requires an attached archive (:meth:`attach_archive` is called
        implicitly, adopting the engine's chain if no manifest exists).

        ``verify=True`` checks the result against the oracle — only
        meaningful when ``to_lsn`` is the current log end (the oracle
        tracks the latest state); earlier targets skip verification.

        Afterwards the stable store reflects exactly the history up to
        ``to_lsn``; the log suffix past the target is *kept*, so a
        subsequent :meth:`recover` rolls forward to the present if the
        operator decides the later history was good after all.
        """
        archive = self.archive or self.attach_archive()
        from repro.archive.manager import select_chain_prefix

        prefix = select_chain_prefix(archive.chain(), to_lsn)
        damaged = {pid for b in prefix for pid in b.damaged_pages()}
        if damaged:
            self.metrics.corruption_detected += len(damaged)
        with self._faults_suspended():
            outcome = run_media_recovery_chain(
                self.stable,
                prefix,
                self.log,
                to_lsn=to_lsn,
                oracle=(
                    self.oracle.state()
                    if verify and to_lsn == self.log.end_lsn
                    else None
                ),
                initial_value=self.initial_value,
                tracer=self.tracer,
                redo_workers=self.redo_workers,
                metrics=self.metrics,
            )
        if damaged:
            self.metrics.pages_quarantined += len(outcome.quarantined)
            self.metrics.corruption_healed += max(
                0, len(damaged) - len(outcome.quarantined)
            )
        self.cm.reload_after_recovery()
        # Stable now reflects history up to the target only; anything
        # after it on the log is replayable (roll-forward) but not yet
        # installed.
        self.cm.stable_truncation_point = to_lsn + 1
        return self._stamp_outcome(outcome)

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release storage-backend resources (fds for the file backend).

        Idempotent; a no-op for the in-memory backend.  The in-memory
        state stays readable afterwards, so metrics/inspection after
        ``close()`` are fine — only device I/O is off the table.
        """
        self.storage.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def latest_backup(self) -> Optional[BackupDatabase]:
        if self._backup_engine_kind == "naive" and self.naive.completed:
            return self.naive.completed[-1]
        return self.engine.latest_backup()

    # --------------------------------------------------------------- failure

    def crash(self) -> int:
        """System failure: lose the cache and the unforced log tail.

        Returns the number of log records lost.  An active backup is
        aborted (its partial image is useless after a crash).
        """
        lost = self.log.discard_unflushed()
        self.engine.abort_active()
        self.cm.crash()
        if lost:
            self.oracle.rebuild(self.log)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.CRASH, lost_records=lost, flushed_lsn=self.log.flushed_lsn
            )
        return lost

    def recover(
        self, verify: bool = True, from_log_only: bool = False
    ) -> RecoveryOutcome:
        """Crash recovery: redo from the stable truncation point.

        ``from_log_only=True`` uses the analysis pass instead: the scan
        start is reconstructed from the durable log's checkpoint records
        alone, with no reliance on any surviving bookkeeping — the fully
        self-contained recovery path.

        Corruption handling runs first: the log tail is truncated at the
        first checksum-failed record (torn-tail repair), and if the
        stable database has damaged pages — or pages provably containing
        effects of truncated records — recovery escalates: heal from a
        completed backup (media recovery with generation fallback) when
        one covers the surviving log, rebuild the whole store from the
        log when it still reaches back to LSN 1, and otherwise quarantine
        the unhealable pages on the outcome instead of crashing.
        """
        with self._faults_suspended():
            dropped = self.log.repair_tail()
            # Mirror the log's cumulative repair counter so it is always
            # visible in Metrics.snapshot() (faultsweep/bench reports).
            self.metrics.tail_repair_dropped = self.log.tail_repair_dropped
            if dropped:
                self.metrics.log_tail_truncated += dropped
                self.metrics.corruption_detected += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.CORRUPTION_DETECTED, site="log",
                        dropped=dropped, end_lsn=self.log.end_lsn,
                    )
                    self.tracer.emit(
                        ev.CHAIN_FALLBACK, action="truncate-log-tail",
                        end_lsn=self.log.end_lsn,
                    )
                # The surviving prefix is now the whole truth; the
                # oracle (and the truncation point) must agree.
                self.oracle.rebuild(self.log)
                self.cm.stable_truncation_point = min(
                    self.cm.stable_truncation_point, self.log.end_lsn + 1
                )
            damaged = self.stable.damaged_pages()
            future = (
                self.stable.pages_ahead_of(self.log.end_lsn)
                if dropped
                else []
            )
            problems = sorted(set(damaged) | set(future))
            if damaged:
                self.metrics.corruption_detected += len(damaged)
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.CORRUPTION_DETECTED, site="stable",
                        pages=[str(p) for p in damaged],
                    )
            if problems:
                outcome = self._recover_damaged_stable(problems, verify)
            elif from_log_only:
                outcome = run_analyzed_crash_recovery(
                    self.stable,
                    self.log,
                    oracle=self.oracle.state() if verify else None,
                    initial_value=self.initial_value,
                    tracer=self.tracer,
                    redo_workers=self.redo_workers,
                    metrics=self.metrics,
                )
            else:
                outcome = run_crash_recovery(
                    self.stable,
                    self.log,
                    scan_start_lsn=self.cm.stable_truncation_point,
                    oracle=self.oracle.state() if verify else None,
                    initial_value=self.initial_value,
                    tracer=self.tracer,
                    redo_workers=self.redo_workers,
                    metrics=self.metrics,
                )
        self.cm.reload_after_recovery()
        # After redo, S holds the current state: nothing is dirty.
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return self._stamp_outcome(outcome)

    def _recover_damaged_stable(
        self, problems: Sequence[PageId], verify: bool
    ) -> RecoveryOutcome:
        """Escalation ladder for crash recovery over a damaged store.

        ``problems`` are stable pages that cannot be trusted (checksum
        failures plus pages ahead of a truncated log end).  Called with
        the fault plane already suspended.
        """
        # (a) Heal from a backup: whole-image restore + roll forward to
        # the log end re-creates every page, damaged ones included.
        fulls = [
            b
            for b in self.engine.completed
            if b.is_complete
            and getattr(b, "base_backup_id", None) is None
            and (b.completion_lsn or 0) <= self.log.end_lsn
            and b.media_scan_start_lsn >= self.log.first_retained_lsn
        ]
        oracle = self.oracle.state() if verify else None
        if fulls:
            newest = fulls[-1]
            older = list(reversed(fulls[:-1]))
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.CHAIN_FALLBACK, action="escalate-media",
                    backup_id=newest.backup_id,
                    pages=[str(p) for p in problems],
                )
            outcome = run_media_recovery(
                self.stable,
                newest,
                self.log,
                oracle=oracle,
                initial_value=self.initial_value,
                tracer=self.tracer,
                fallback=older,
                metrics=self.metrics,
                redo_workers=self.redo_workers,
            )
        elif self.log.first_retained_lsn == 1:
            # (b) Full-history rebuild: the log still reaches LSN 1, so
            # replaying it against a freshly formatted store reproduces
            # the current state by construction.
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.CHAIN_FALLBACK, action="rebuild-from-log",
                    pages=[str(p) for p in problems],
                )
            self.stable.restore_from({}, initial_value=self.initial_value)
            outcome = run_crash_recovery(
                self.stable,
                self.log,
                scan_start_lsn=1,
                oracle=oracle,
                initial_value=self.initial_value,
                tracer=self.tracer,
                rebuild_from_log=True,
                redo_workers=self.redo_workers,
                metrics=self.metrics,
            )
        else:
            # (c) No healing source: quarantine what replay cannot fix.
            outcome = run_crash_recovery(
                self.stable,
                self.log,
                scan_start_lsn=self.cm.stable_truncation_point,
                oracle=oracle,
                initial_value=self.initial_value,
                tracer=self.tracer,
                quarantine=problems,
                redo_workers=self.redo_workers,
                metrics=self.metrics,
            )
        self.metrics.pages_quarantined += len(outcome.quarantined)
        self.metrics.corruption_healed += max(
            0, len(problems) - len(outcome.quarantined)
        )
        return outcome

    def validate_backup(
        self, backup: Optional[BackupDatabase] = None,
        base_chain: Sequence[BackupDatabase] = (),
    ):
        """Offline recoverability audit of a backup (no restore)."""
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to validate")
        return validate_backup(
            backup, self.log, self.layout,
            base_chain=base_chain, initial_value=self.initial_value,
        )

    def media_failure(self) -> None:
        """The stable medium fails; S becomes inaccessible."""
        self.engine.abort_active()
        self.stable.fail_media()
        self.cm.crash()
        if self.tracer.enabled:
            self.tracer.emit(ev.MEDIA_FAILURE, scope="all")

    def media_recover(
        self,
        backup: Optional[BackupDatabase] = None,
        to_lsn: Optional[LSN] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Restore from a backup (default: latest completed) and roll
        forward the media recovery log.

        Older completed full backups are passed along as the fallback
        chain: if the chosen image fails its integrity check, recovery
        restores the newest intact generation instead (longer redo span,
        same result) and only quarantines pages when every generation is
        damaged.
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        fallback = [
            b
            for b in reversed(self.engine.completed)
            if b is not backup
            and b.is_complete
            and getattr(b, "base_backup_id", None) is None
        ]
        damaged = backup.damaged_pages()
        if damaged:
            self.metrics.corruption_detected += len(damaged)
        with self._faults_suspended():
            outcome = run_media_recovery(
                self.stable,
                backup,
                self.log,
                to_lsn=to_lsn,
                oracle=(
                    self.oracle.state() if verify and to_lsn is None else None
                ),
                initial_value=self.initial_value,
                tracer=self.tracer,
                fallback=fallback,
                metrics=self.metrics,
                redo_workers=self.redo_workers,
            )
        if damaged:
            self.metrics.pages_quarantined += len(outcome.quarantined)
            self.metrics.corruption_healed += max(
                0, len(damaged) - len(outcome.quarantined)
            )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return self._stamp_outcome(outcome)

    def begin_instant_restore(
        self,
        backup: Optional[BackupDatabase] = None,
        to_lsn: Optional[LSN] = None,
        verify: bool = True,
        eager: bool = True,
        workers: int = 2,
        executor: str = "thread",
    ) -> RestoreManager:
        """Start an incremental (instant) media restore and resume service.

        Unlike :meth:`media_recover`, this returns as soon as the restore
        *begins*: the store is re-formatted, every page is marked
        not-yet-restored, and a restore hook is installed in the cache
        manager so any read or write of an unrestored page restores just
        that page (backup copy + its media-log slice) on demand.  With
        ``eager=True`` the remaining partitions restore in the background
        on ``workers`` pool workers (``executor="process"`` ships span
        reads to a process pool for file-backed backups).  Call
        :meth:`finish_instant_restore` to drain and obtain the
        :class:`RecoveryOutcome` — byte-identical to what
        :meth:`media_recover` would have produced at the same target.
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        fallback = [
            b
            for b in reversed(self.engine.completed)
            if b is not backup
            and b.is_complete
            and getattr(b, "base_backup_id", None) is None
        ]
        damaged = backup.damaged_pages()
        if damaged:
            self.metrics.corruption_detected += len(damaged)
        self._instant_damaged = len(damaged)
        manager = RestoreManager(
            self.stable,
            backup,
            self.log,
            to_lsn=to_lsn,
            fallback=fallback,
            oracle=(
                self.oracle.state() if verify and to_lsn is None else None
            ),
            initial_value=self.initial_value,
            tracer=self.tracer,
            metrics=self.metrics,
            io_guard=self._faults_suspended,
            redo_workers=self.redo_workers,
        )
        with self._faults_suspended():
            manager.begin()
        # Service resumes here: cold cache, lazy restore on every miss.
        self.cm.reload_after_recovery()
        self.cm.restore_hook = manager.ensure_restored
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        if eager:
            manager.start_background(workers=workers, executor=executor)
        self._instant = manager
        return manager

    def finish_instant_restore(self) -> RecoveryOutcome:
        """Drain the active instant restore and return its outcome.

        Blocks until every page is restored, removes the lazy-restore
        hook, and performs the same quarantine/healing accounting the
        offline path does.  The cache is *not* invalidated: mid-restore
        traffic only ever observed fully restored pages, so its cached
        (possibly dirty) contents remain the current state.
        """
        manager = getattr(self, "_instant", None)
        if manager is None:
            raise RecoveryError("no instant restore in progress")
        outcome = manager.drain()
        self.cm.restore_hook = None
        self._instant = None
        if self._instant_damaged:
            self.metrics.pages_quarantined += len(outcome.quarantined)
            self.metrics.corruption_healed += max(
                0, self._instant_damaged - len(outcome.quarantined)
            )
        return self._stamp_outcome(outcome)

    def media_recover_chain(
        self,
        chain: Optional[Sequence[BackupDatabase]] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Restore from a full+incremental chain (section 6.1).

        Damaged link pages are skipped during the overlay (an earlier
        link's copy plus the base-scan-start replay heals them); pages
        damaged in every link that carries them are quarantined.
        """
        if chain is None:
            chain = self.engine.completed
        damaged = {
            pid for b in chain for pid in b.damaged_pages()
        }
        if damaged:
            self.metrics.corruption_detected += len(damaged)
        with self._faults_suspended():
            outcome = run_media_recovery_chain(
                self.stable,
                list(chain),
                self.log,
                oracle=self.oracle.state() if verify else None,
                initial_value=self.initial_value,
                tracer=self.tracer,
                redo_workers=self.redo_workers,
                metrics=self.metrics,
            )
        if damaged:
            self.metrics.pages_quarantined += len(outcome.quarantined)
            self.metrics.corruption_healed += max(
                0, len(damaged) - len(outcome.quarantined)
            )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return self._stamp_outcome(outcome)

    # ---------------------------------------------- partial failure (§6.3 #2)

    def fail_partition(self, partition: int) -> None:
        """Partial media failure: one partition becomes unreadable."""
        self.engine.abort_active()
        self.stable.fail_partition(partition)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.MEDIA_FAILURE, scope="partition", partition=partition
            )
        # The cache may hold dirty pages of the failed partition whose
        # flushes would now fail; volatile state is dropped like a crash
        # confined to recovery concerns (healthy partitions' stable data
        # is untouched).
        self.cm.crash()

    def recover_partition(
        self, partition: int, backup: Optional[BackupDatabase] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Media-recover a single failed partition (section 6.3).

        Requires every logged operation touching the partition since the
        backup's scan start to be confined to it.
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        with self._faults_suspended():
            outcome = run_partition_media_recovery(
                self.stable,
                partition,
                backup,
                self.log,
                oracle=self.oracle.state() if verify else None,
                initial_value=self.initial_value,
                tracer=self.tracer,
            )
        self.cm.reload_after_recovery()
        return self._stamp_outcome(outcome)

    # ----------------------------------------------- selective redo (§6.3 #3)

    def selective_recover(
        self,
        corrupt_source: str,
        backup: Optional[BackupDatabase] = None,
        verify: bool = True,
        transactional: bool = False,
    ) -> RecoveryOutcome:
        """Recover to a state excluding one source's operations and all
        operations tainted by them (section 6.3, direction 3).

        ``transactional=True`` treats each source tag as an atomicity
        group: a transaction with one tainted operation is excluded
        whole (a half-excluded transfer would break atomicity).

        The database afterwards reflects the corruption-free history;
        note the oracle still reflects the corrupted history, so the
        result carries its own verification diffs (against the
        corruption-free expected state).
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        with self._faults_suspended():
            result = run_selective_redo(
                self.stable,
                backup,
                self.log,
                corrupt=lambda record: record.source == corrupt_source,
                initial_value=self.initial_value,
                verify=verify,
                group_of=(
                    (lambda record: record.source or None)
                    if transactional
                    else None
                ),
                tracer=self.tracer,
                redo_workers=self.redo_workers,
                metrics=self.metrics,
            )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return self._stamp_outcome(result)

    # ------------------------------------------- checkpoints / log retention

    def take_checkpoint(self) -> LogRecord:
        """Log a fuzzy checkpoint (dirty-page table snapshot)."""
        return self.checkpoints.take_checkpoint()

    def truncate_log(self) -> int:
        """Physically discard the log prefix no retained backup or dirty
        page needs; returns records discarded."""
        return self.retention.truncate_log()

    def retire_backup(self, backup: BackupDatabase) -> None:
        """Release a backup's pin on the log."""
        self.retention.retire_backup(backup)

    # ------------------------------------------------------------- inspection

    def oracle_state(self):
        return self.oracle.state()

    def dirty_page_count(self) -> int:
        return len(self.cm.dirty_pages())

    def __repr__(self):
        return (
            f"Database(pages={self.layout.total_pages()}, "
            f"policy={self.cm.policy.name}, log_end={self.log.end_lsn})"
        )
