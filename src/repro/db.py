"""``Database``: the public facade over the whole system.

A ``Database`` wires together the stable store, log manager, cache
manager, oracle, and backup engine, and exposes the operations a
downstream user (or an experiment harness) needs:

>>> from repro import Database, CopyOp, PhysicalWrite
>>> from repro.ids import PageId
>>> db = Database(pages_per_partition=[64])
>>> db.execute(PhysicalWrite(PageId(0, 3), ("hello",)))   # doctest: +ELLIPSIS
<LSN 1: W_P(P0:3)>
>>> db.execute(CopyOp(PageId(0, 3), PageId(0, 40)))       # doctest: +ELLIPSIS
<LSN 2: copy(P0:3 -> P0:40)>
>>> run = db.start_backup(steps=4)
>>> backup = db.run_backup(pages_per_tick=16)
>>> db.media_failure()
>>> outcome = db.media_recover()
>>> outcome.ok
True
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Set, Union

from repro.cache.cache_manager import CacheManager
from repro.core.backup_engine import BackupEngine, BackupRun
from repro.core.linked_flush import LinkedFlushBackup
from repro.core.naive_backup import NaiveFuzzyDump
from repro.core.incremental import run_media_recovery_chain
from repro.core.partial_recovery import run_partition_media_recovery
from repro.core.retention import LogRetention
from repro.core.verify_backup import validate_backup
from repro.recovery.analysis_pass import run_analyzed_crash_recovery
from repro.recovery.selective_redo import SelectiveRedoResult, run_selective_redo
from repro.wal.checkpoint import CheckpointManager
from repro.core.policy import (
    FlushPolicy,
    GeneralOpsPolicy,
    PageOrientedPolicy,
    TreeOpsPolicy,
)
from repro.errors import NoBackupError, ReproError
from repro.ids import LSN, PageId
from repro.ops.base import Operation
from repro.recovery.crash_recovery import run_crash_recovery
from repro.recovery.explain import RecoveryOutcome
from repro.recovery.media_recovery import run_media_recovery
from repro.sim.metrics import Metrics
from repro.sim.oracle import Oracle
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag

_POLICIES = {
    "general": GeneralOpsPolicy,
    "tree": TreeOpsPolicy,
    "page": PageOrientedPolicy,
    "page-oriented": PageOrientedPolicy,
}


class Database:
    """A single-node database with media recovery via online backup."""

    @classmethod
    def bootstrap_from_backup(
        cls,
        backup: BackupDatabase,
        source_log: LogManager,
        pages_per_partition: Sequence[int],
        policy: Union[str, FlushPolicy] = "general",
        initial_value: Any = None,
    ) -> "Database":
        """Stand up a brand-new node from an archived backup + log.

        The replacement-hardware flow: load the backup (e.g. via
        :func:`repro.storage.archive.load_backup`), roll the shipped log
        forward, and return a fresh, fully functional database in a new
        LSN epoch.  Implemented as seed-and-promote of a standby.
        """
        from repro.core.standby import StandbyReplica

        layout = Layout(list(pages_per_partition))
        replica = StandbyReplica.seed_from_backup(
            backup, source_log, layout, initial_value
        )
        policy_name = policy if isinstance(policy, str) else policy.name
        return replica.promote(policy=policy_name)

    def __init__(
        self,
        pages_per_partition: Sequence[int] = (256,),
        policy: Union[str, FlushPolicy] = "general",
        initial_value: Any = None,
        auto_force_log: bool = True,
    ):
        if isinstance(policy, str):
            try:
                policy = _POLICIES[policy]()
            except KeyError:
                raise ReproError(
                    f"unknown policy {policy!r}; choose from "
                    f"{sorted(_POLICIES)}"
                ) from None
        self.layout = Layout(list(pages_per_partition))
        self.initial_value = initial_value
        self.stable = StableDatabase(self.layout, initial_value)
        self.log = LogManager(auto_force=auto_force_log)
        self.metrics = Metrics()
        self.cm = CacheManager(
            self.stable,
            self.log,
            policy=policy,
            metrics=self.metrics,
            initial_value=initial_value,
        )
        self.oracle = Oracle(self.log, initial_value)
        self.engine = BackupEngine(self.cm)
        self.naive = NaiveFuzzyDump(self.cm)
        self.linked = LinkedFlushBackup(self.cm)
        self.retention = LogRetention(self.cm, self.engine)
        self.checkpoints = CheckpointManager(self.log, lambda: self.cm.rec)
        # Pages updated since the last completed full/incremental backup,
        # for incremental update-set capture (section 6.1).
        self.updated_since_backup: Set[PageId] = set()

    # ---------------------------------------------------------- transactions

    def execute(self, op: Operation, source: str = "") -> LogRecord:
        """Run one logged operation against the database.

        ``source`` tags the log record with its originator (application
        or transaction name); selective redo (§6.3) uses the tag to
        exclude a corrupting source.
        """
        record = self.cm.execute(op, source=source)
        self.updated_since_backup.update(op.writeset)
        return record

    def execute_all(self, ops: Sequence[Operation]) -> List[LogRecord]:
        return [self.execute(op) for op in ops]

    def read(self, page_id: PageId) -> Any:
        return self.cm.read_page(page_id)

    # --------------------------------------------------------------- flushing

    def flush_page(self, page_id: PageId) -> bool:
        return self.cm.flush_page(page_id)

    def checkpoint(self) -> int:
        return self.cm.checkpoint()

    def install_some(self, count: int, rng: Optional[random.Random] = None) -> int:
        return self.cm.install_some(count, rng or random.Random(0))

    # ---------------------------------------------------------------- backup

    def start_backup(
        self, steps: int = 8, incremental: bool = False,
        dynamic_extend: bool = True, batched: bool = True,
    ) -> BackupRun:
        """Begin an online backup; drive it with :meth:`backup_step`.

        With ``incremental=True`` only pages updated since the previous
        completed backup are copied (requires a prior backup as base).
        ``batched=False`` forces page-at-a-time round-robin copying (see
        :meth:`BackupRun.copy_some`).
        """
        if incremental:
            base = self.engine.latest_backup()
            if base is None:
                raise NoBackupError(
                    "incremental backup requires a completed base backup"
                )
            run = self.engine.start_backup(
                steps=steps,
                update_set=set(self.updated_since_backup),
                base_backup=base,
                dynamic_extend=dynamic_extend,
                batched=batched,
            )
        else:
            run = self.engine.start_backup(steps=steps, batched=batched)
        self.updated_since_backup = set()
        return run

    def backup_step(self, pages: int = 8) -> int:
        """Copy some pages of the active backup; returns pages copied."""
        return self.engine.copy_some(pages)

    def run_backup(self, pages_per_tick: int = 8, tick=None) -> BackupDatabase:
        """Drive the active backup to completion (see ``tick`` for
        interleaving a workload)."""
        return self.engine.run_to_completion(pages_per_tick, tick=tick)

    def backup_in_progress(self) -> bool:
        return self.engine.active is not None

    def latest_backup(self) -> Optional[BackupDatabase]:
        return self.engine.latest_backup()

    # --------------------------------------------------------------- failure

    def crash(self) -> int:
        """System failure: lose the cache and the unforced log tail.

        Returns the number of log records lost.  An active backup is
        aborted (its partial image is useless after a crash).
        """
        lost = self.log.discard_unflushed()
        self.engine.abort_active()
        self.cm.crash()
        if lost:
            self.oracle.rebuild(self.log)
        return lost

    def recover(
        self, verify: bool = True, from_log_only: bool = False
    ) -> RecoveryOutcome:
        """Crash recovery: redo from the stable truncation point.

        ``from_log_only=True`` uses the analysis pass instead: the scan
        start is reconstructed from the durable log's checkpoint records
        alone, with no reliance on any surviving bookkeeping — the fully
        self-contained recovery path.
        """
        if from_log_only:
            outcome = run_analyzed_crash_recovery(
                self.stable,
                self.log,
                oracle=self.oracle.state() if verify else None,
                initial_value=self.initial_value,
            )
        else:
            outcome = run_crash_recovery(
                self.stable,
                self.log,
                scan_start_lsn=self.cm.stable_truncation_point,
                oracle=self.oracle.state() if verify else None,
                initial_value=self.initial_value,
            )
        self.cm.reload_after_recovery()
        # After redo, S holds the current state: nothing is dirty.
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return outcome

    def validate_backup(
        self, backup: Optional[BackupDatabase] = None,
        base_chain: Sequence[BackupDatabase] = (),
    ):
        """Offline recoverability audit of a backup (no restore)."""
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to validate")
        return validate_backup(
            backup, self.log, self.layout,
            base_chain=base_chain, initial_value=self.initial_value,
        )

    def media_failure(self) -> None:
        """The stable medium fails; S becomes inaccessible."""
        self.engine.abort_active()
        self.stable.fail_media()
        self.cm.crash()

    def media_recover(
        self,
        backup: Optional[BackupDatabase] = None,
        to_lsn: Optional[LSN] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Restore from a backup (default: latest completed) and roll
        forward the media recovery log."""
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        outcome = run_media_recovery(
            self.stable,
            backup,
            self.log,
            to_lsn=to_lsn,
            oracle=self.oracle.state() if verify and to_lsn is None else None,
            initial_value=self.initial_value,
        )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return outcome

    def media_recover_chain(
        self,
        chain: Optional[Sequence[BackupDatabase]] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Restore from a full+incremental chain (section 6.1)."""
        if chain is None:
            chain = self.engine.completed
        outcome = run_media_recovery_chain(
            self.stable,
            list(chain),
            self.log,
            oracle=self.oracle.state() if verify else None,
            initial_value=self.initial_value,
        )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return outcome

    # ---------------------------------------------- partial failure (§6.3 #2)

    def fail_partition(self, partition: int) -> None:
        """Partial media failure: one partition becomes unreadable."""
        self.engine.abort_active()
        self.stable.fail_partition(partition)
        # The cache may hold dirty pages of the failed partition whose
        # flushes would now fail; volatile state is dropped like a crash
        # confined to recovery concerns (healthy partitions' stable data
        # is untouched).
        self.cm.crash()

    def recover_partition(
        self, partition: int, backup: Optional[BackupDatabase] = None,
        verify: bool = True,
    ) -> RecoveryOutcome:
        """Media-recover a single failed partition (section 6.3).

        Requires every logged operation touching the partition since the
        backup's scan start to be confined to it.
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        outcome = run_partition_media_recovery(
            self.stable,
            partition,
            backup,
            self.log,
            oracle=self.oracle.state() if verify else None,
            initial_value=self.initial_value,
        )
        self.cm.reload_after_recovery()
        return outcome

    # ----------------------------------------------- selective redo (§6.3 #3)

    def selective_recover(
        self,
        corrupt_source: str,
        backup: Optional[BackupDatabase] = None,
        verify: bool = True,
        transactional: bool = False,
    ) -> SelectiveRedoResult:
        """Recover to a state excluding one source's operations and all
        operations tainted by them (section 6.3, direction 3).

        ``transactional=True`` treats each source tag as an atomicity
        group: a transaction with one tainted operation is excluded
        whole (a half-excluded transfer would break atomicity).

        The database afterwards reflects the corruption-free history;
        note the oracle still reflects the corrupted history, so the
        result carries its own verification diffs (against the
        corruption-free expected state).
        """
        backup = backup or self.engine.latest_backup()
        if backup is None:
            raise NoBackupError("no completed backup to restore from")
        result = run_selective_redo(
            self.stable,
            backup,
            self.log,
            corrupt=lambda record: record.source == corrupt_source,
            initial_value=self.initial_value,
            verify=verify,
            group_of=(
                (lambda record: record.source or None)
                if transactional
                else None
            ),
        )
        self.cm.reload_after_recovery()
        self.cm.stable_truncation_point = self.log.end_lsn + 1
        return result

    # ------------------------------------------- checkpoints / log retention

    def take_checkpoint(self) -> LogRecord:
        """Log a fuzzy checkpoint (dirty-page table snapshot)."""
        return self.checkpoints.take_checkpoint()

    def truncate_log(self) -> int:
        """Physically discard the log prefix no retained backup or dirty
        page needs; returns records discarded."""
        return self.retention.truncate_log()

    def retire_backup(self, backup: BackupDatabase) -> None:
        """Release a backup's pin on the log."""
        self.retention.retire_backup(backup)

    # ------------------------------------------------------------- inspection

    def oracle_state(self):
        return self.oracle.state()

    def dirty_page_count(self) -> int:
        return len(self.cm.dirty_pages())

    def __repr__(self):
        return (
            f"Database(pages={self.layout.total_pages()}, "
            f"policy={self.cm.policy.name}, log_end={self.log.end_lsn})"
        )
