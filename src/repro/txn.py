"""Transactions: atomic, durable groups of operations.

The paper deliberately ignores transaction boundaries ("every logged
operation is treated as committed"), and this library's recovery core
follows it.  ``Transaction`` layers classic ACID-style atomicity and
durability on top *without* touching the redo machinery, using deferred
writes:

* operations executed inside a transaction are **buffered**, applied to
  a private overlay so the transaction reads its own writes;
* ``commit()`` replays the buffer against the database (each operation
  is logged and applied normally, tagged with the transaction's name)
  and forces the log — all-or-nothing durability falls out of the WAL
  boundary: either every record of the transaction is on the stable log
  or (after a crash before the force) none of its effects exist
  anywhere;
* ``abort()`` simply drops the buffer — nothing was ever logged.

The workload/recovery loop runs on one thread (only the backup sweep's
span reads fan out to worker threads — see
``repro.core.backup_engine.ParallelBackupRun``), so deferred
application at commit reproduces exactly the states the operations saw
when buffered.

>>> from repro import Database, PhysicalWrite
>>> from repro.ids import PageId
>>> from repro.txn import TransactionManager
>>> db = Database(pages_per_partition=[8])
>>> txns = TransactionManager(db)
>>> with txns.begin("load") as txn:
...     _ = txn.execute(PhysicalWrite(PageId(0, 0), "v"))
>>> db.read(PageId(0, 0))
'v'
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.base import Operation


class TransactionError(ReproError):
    """Misuse of the transaction API (double commit, use after end)."""


class Transaction:
    def __init__(self, db, name: str):
        self.db = db
        self.name = name
        self._buffer: List[Operation] = []
        self._overlay: Dict[PageId, Any] = {}
        self._state = "active"

    # --------------------------------------------------------------- queries

    @property
    def is_active(self) -> bool:
        return self._state == "active"

    @property
    def pending_operations(self) -> int:
        return len(self._buffer)

    def read(self, page_id: PageId) -> Any:
        """Read through the transaction: own writes first, then the DB."""
        self._check_active()
        if page_id in self._overlay:
            return self._overlay[page_id]
        return self.db.read(page_id)

    # -------------------------------------------------------------- mutation

    def execute(self, op: Operation) -> Operation:
        """Buffer one operation; its effects are visible to this
        transaction immediately and to the database only at commit."""
        self._check_active()
        reads = {pid: self.read(pid) for pid in op.readset}
        result = op.apply(reads)
        self._overlay.update(result)
        self._buffer.append(op)
        return op

    def commit(self) -> int:
        """Apply and log every buffered operation, then force the log.

        Returns the number of operations committed.
        """
        self._check_active()
        from repro.sim.faults import with_retries

        for op in self._buffer:
            self.db.execute(op, source=self.name)
        with_retries(self.db.log.force, metrics=self.db.metrics)
        count = len(self._buffer)
        self._state = "committed"
        self._buffer.clear()
        self._overlay.clear()
        return count

    def abort(self) -> None:
        """Discard the buffer; the database never sees the operations."""
        self._check_active()
        self._state = "aborted"
        self._buffer.clear()
        self._overlay.clear()

    def _check_active(self) -> None:
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.name!r} is {self._state}"
            )

    # -------------------------------------------------------- context manager

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state == "active":
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    def __repr__(self):
        return (
            f"Transaction({self.name!r}, {self._state}, "
            f"{len(self._buffer)} pending)"
        )


class TransactionManager:
    """Creates named transactions over one database."""

    def __init__(self, db):
        self.db = db
        self._counter = 0
        self.committed = 0
        self.aborted = 0

    def begin(self, name: Optional[str] = None) -> Transaction:
        self._counter += 1
        txn = Transaction(self.db, name or f"txn-{self._counter}")
        original_commit = txn.commit
        original_abort = txn.abort

        def counted_commit():
            count = original_commit()
            self.committed += 1
            return count

        def counted_abort():
            original_abort()
            self.aborted += 1

        txn.commit = counted_commit  # type: ignore[method-assign]
        txn.abort = counted_abort  # type: ignore[method-assign]
        return txn
