"""A page-based B+-tree whose node splits are logged logically.

The tree is the paper's motivating database example (section 1.1): a
logical split ``MovRec(old, key, new)`` avoids logging the initial
contents of the new page, which is unavoidable with page-oriented
operations.  :class:`BTree` supports both logging modes so the
logging-economy benchmark can compare them byte for byte.
"""

from repro.btree.btree import BTree
from repro.btree.ops import (
    BTreeBorrow,
    BTreeDelete,
    BTreeDeleteEntry,
    BTreeInit,
    BTreeInsert,
    BTreeMergeInto,
    BTreeSetSeparator,
    BTreeSplitMove,
    BTreeSplitParent,
    BTreeSplitRemove,
)

__all__ = [
    "BTree",
    "BTreeBorrow",
    "BTreeDelete",
    "BTreeDeleteEntry",
    "BTreeInit",
    "BTreeInsert",
    "BTreeMergeInto",
    "BTreeSetSeparator",
    "BTreeSplitMove",
    "BTreeSplitParent",
    "BTreeSplitRemove",
]
