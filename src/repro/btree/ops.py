"""B-tree log operations and their transforms.

Node page values are tagged tuples ``(kind, records)`` where ``kind`` is
``"leaf"`` or ``"int"`` and ``records`` is a sorted tuple of
``(key, payload)`` pairs — for internal nodes the payload is a child page
slot and the entry means "child covers keys ≤ key".  The meta page (slot
managed by :class:`~repro.btree.btree.BTree`) holds
``("meta", root_slot, next_free_slot)``.

The split pair mirrors section 4.1 exactly:

* :class:`BTreeSplitMove` — the tree operation ``MovRec(old, key, new)``:
  read ``old``, write ``new`` with the records whose key exceeds the
  split key.  Only identifiers and the key are logged.
* :class:`BTreeSplitRemove` — ``RmvRec(old, key)``: physiological removal
  of the moved records.  MovRec must precede RmvRec in the log.

For the page-oriented baseline the move is logged as a physical write of
the new page's entire initial image (``PhysicalWrite``), per the paper's
"Page-oriented operations" description of the split.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import OperationError
from repro.ids import PageId
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.registry import default_registry
from repro.ops.tree import WriteNew

LEAF = "leaf"
INTERNAL = "int"


def node_value(kind: str, records: Tuple) -> Tuple:
    if kind not in (LEAF, INTERNAL):
        raise OperationError(f"bad node kind {kind!r}")
    return (kind, tuple(sorted(records)))


def node_kind(value: Any) -> str:
    if not isinstance(value, tuple) or len(value) != 2:
        raise OperationError(f"not a B-tree node value: {value!r}")
    return value[0]


def node_records(value: Any) -> Tuple:
    """Records of a node value; defensive for replay-time garbage."""
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] in (LEAF, INTERNAL)
        and isinstance(value[1], tuple)
    ):
        return value[1]
    return ()


def _take_high(value: Any, split_key: Any) -> Tuple:
    kind = value[0] if isinstance(value, tuple) and value else LEAF
    return (
        kind,
        tuple(r for r in node_records(value) if r[0] > split_key),
    )


def _remove_high(value: Any, split_key: Any) -> Tuple:
    kind = value[0] if isinstance(value, tuple) and value else LEAF
    return (
        kind,
        tuple(r for r in node_records(value) if r[0] <= split_key),
    )


def _insert(value: Any, key: Any, payload: Any) -> Tuple:
    kind = value[0] if isinstance(value, tuple) and value else LEAF
    records = tuple(r for r in node_records(value) if r[0] != key)
    return (kind, tuple(sorted(records + ((key, payload),))))


def _delete(value: Any, key: Any) -> Tuple:
    kind = value[0] if isinstance(value, tuple) and value else LEAF
    return (kind, tuple(r for r in node_records(value) if r[0] != key))


def _split_parent(
    value: Any, routed_key: Any, split_key: Any, old_slot: int, new_slot: int
) -> Tuple:
    """Re-route the parent after a child split.

    The entry (routed_key, old_slot) becomes (split_key, old_slot) and a
    new entry (routed_key, new_slot) is added.
    """
    kind = value[0] if isinstance(value, tuple) and value else INTERNAL
    records = tuple(
        r for r in node_records(value) if r != (routed_key, old_slot)
    )
    records += ((split_key, old_slot), (routed_key, new_slot))
    return (kind, tuple(sorted(records)))


def _register(name, fn, multi=False):
    if name not in default_registry:
        default_registry.register(name, fn, multi=multi)


_register("btree_take_high", _take_high)
_register("btree_remove_high", _remove_high)
_register("btree_insert", _insert)
_register("btree_delete", _delete)
_register("btree_split_parent", _split_parent)


def _merge_into(reads, src, dst):
    """dst := dst ∪ src's records (src's separator is the smaller)."""
    dst_value = reads[dst]
    kind = dst_value[0] if isinstance(dst_value, tuple) and dst_value else LEAF
    merged = node_records(dst_value) + node_records(reads[src])
    return (kind, tuple(sorted(merged)))


def _borrow(reads, target, src, dst, count, from_low):
    """Move ``count`` records from src to dst; computes either target.

    ``from_low`` moves src's lowest records (dst is src's left
    neighbour), otherwise its highest (dst is the right neighbour).
    """
    src_records = node_records(reads[src])
    count = min(count, len(src_records))
    moved = src_records[:count] if from_low else src_records[-count:]
    if target == dst:
        dst_value = reads[dst]
        kind = (
            dst_value[0]
            if isinstance(dst_value, tuple) and dst_value
            else LEAF
        )
        return (kind, tuple(sorted(node_records(dst_value) + moved)))
    src_value = reads[src]
    kind = src_value[0] if isinstance(src_value, tuple) and src_value else LEAF
    remaining = src_records[count:] if from_low else src_records[:-count]
    return (kind, tuple(remaining))


def _set_separator(value, child_slot, new_key):
    """Replace the parent entry routing to ``child_slot`` with a new key."""
    kind = value[0] if isinstance(value, tuple) and value else INTERNAL
    records = tuple(
        (new_key, child) if child == child_slot else (key, child)
        for key, child in node_records(value)
    )
    return (kind, tuple(sorted(records)))


def _delete_entry(value, key, child_slot):
    kind = value[0] if isinstance(value, tuple) and value else INTERNAL
    records = tuple(
        r for r in node_records(value) if r != (key, child_slot)
    )
    return (kind, records)


_register("btree_merge_into", _merge_into, multi=True)
_register("btree_borrow", _borrow, multi=True)
_register("btree_set_separator", _set_separator)
_register("btree_delete_entry", _delete_entry)


class BTreeInit(PhysicalWrite):
    """Format a page as an empty node (physical write of a tiny value)."""

    def __init__(self, target: PageId, kind: str = LEAF):
        super().__init__(target, node_value(kind, ()))


class BTreeInsert(PhysiologicalWrite):
    """Insert (key, payload) into a node page."""

    def __init__(self, target: PageId, key: Any, payload: Any):
        super().__init__(target, "btree_insert", (key, payload))
        self.key = key
        self.payload = payload

    def __repr__(self):
        return f"BTreeInsert({self.target!r}, {self.key!r})"


class BTreeDelete(PhysiologicalWrite):
    """Delete a key from a node page."""

    def __init__(self, target: PageId, key: Any):
        super().__init__(target, "btree_delete", (key,))
        self.key = key


class BTreeSplitMove(WriteNew):
    """``MovRec(old, key, new)`` over tagged node values."""

    def __init__(self, old: PageId, split_key: Any, new: PageId):
        super().__init__(old, new, "btree_take_high", (split_key,))
        self.split_key = split_key

    def __repr__(self):
        return (
            f"BTreeMovRec({self.old!r}, key={self.split_key!r}, {self.new!r})"
        )


class BTreeSplitRemove(PhysiologicalWrite):
    """``RmvRec(old, key)`` over tagged node values."""

    def __init__(self, old: PageId, split_key: Any):
        super().__init__(old, "btree_remove_high", (split_key,))
        self.split_key = split_key

    def __repr__(self):
        return f"BTreeRmvRec({self.target!r}, key={self.split_key!r})"


class BTreeSplitParent(PhysiologicalWrite):
    """Re-route a parent entry after a child split (page-oriented)."""

    def __init__(
        self,
        target: PageId,
        routed_key: Any,
        split_key: Any,
        old_slot: int,
        new_slot: int,
    ):
        super().__init__(
            target,
            "btree_split_parent",
            (routed_key, split_key, old_slot, new_slot),
        )


class BTreeMergeInto(GeneralLogicalOp):
    """Merge node ``src`` into its higher-separator neighbour ``dst``.

    A *general* logical operation (reads two existing pages, writes one
    of them) — deliberately outside the tree-operation class of §4.1,
    so B-tree deletion exercises the general flush policy.
    """

    def __init__(self, src: PageId, dst: PageId):
        if src == dst:
            raise OperationError("merge source and target must differ")
        self.src = src
        self.dst = dst
        super().__init__(
            [src, dst], [dst], "btree_merge_into", (src, dst),
            per_target=False,
        )

    def compute(self, reads):
        return {self.dst: _merge_into(reads, self.src, self.dst)}

    def __repr__(self):
        return f"BTreeMerge({self.src!r} -> {self.dst!r})"


class BTreeBorrow(GeneralLogicalOp):
    """Move ``count`` records between neighbouring nodes.

    Reads and writes BOTH pages — a multi-object write set, so its
    write-graph node carries |vars| = 2 and the pair is flushed
    atomically (exercising multi-page atomic installs).
    """

    def __init__(self, src: PageId, dst: PageId, count: int, from_low: bool):
        if src == dst:
            raise OperationError("borrow source and target must differ")
        if count <= 0:
            raise OperationError("borrow count must be positive")
        self.src = src
        self.dst = dst
        self.count = count
        self.from_low = from_low
        super().__init__(
            [src, dst], [src, dst], "btree_borrow",
            (src, dst, count, from_low), per_target=True,
        )

    def __repr__(self):
        direction = "low" if self.from_low else "high"
        return (
            f"BTreeBorrow({self.src!r} -> {self.dst!r}, "
            f"{self.count} {direction})"
        )


class BTreeSetSeparator(PhysiologicalWrite):
    """Update the parent separator for one child after a borrow."""

    def __init__(self, target: PageId, child_slot: int, new_key: Any):
        super().__init__(
            target, "btree_set_separator", (child_slot, new_key)
        )


class BTreeDeleteEntry(PhysiologicalWrite):
    """Remove a (key, child) routing entry after a merge."""

    def __init__(self, target: PageId, key: Any, child_slot: int):
        super().__init__(target, "btree_delete_entry", (key, child_slot))
