"""A page-based B+-tree over a :class:`~repro.db.Database`.

Layout: the tree owns a contiguous slot range of one partition.  Slot 0
of the range is the *meta page* ``("meta", root_slot, next_free_slot)``;
node pages are tagged ``("leaf"|"int", records)`` (see
:mod:`repro.btree.ops`).  Every structural change — inserts, splits,
allocations, root growth — is a logged operation executed through the
database, so the tree is fully crash- and media-recoverable: after
recovery, :meth:`BTree.attach` re-reads the meta page and continues.

Internal-node convention: an entry ``(k, child_slot)`` routes keys
``<= k`` to that child; the right-most entry uses the ``INF`` sentinel.

``logging="tree"`` logs splits as the MovRec/RmvRec tree-operation pair
(no record data on the log); ``logging="page"`` logs the new node's whole
initial image physically — the byte-for-byte comparison of the paper's
section 1.1 / section 4.1 discussion.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.btree.ops import (
    INTERNAL,
    LEAF,
    BTreeBorrow,
    BTreeDelete,
    BTreeDeleteEntry,
    BTreeInit,
    BTreeInsert,
    BTreeMergeInto,
    BTreeSetSeparator,
    BTreeSplitMove,
    BTreeSplitParent,
    BTreeSplitRemove,
    node_kind,
    node_records,
    node_value,
)
from repro.errors import OperationError, ReproError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite

INF = float("inf")

_LOGGING_MODES = ("tree", "page")


class BTree:
    """A B+-tree with logically (or page-oriented) logged splits."""

    def __init__(
        self,
        db,
        partition: int = 0,
        first_slot: int = 0,
        capacity: Optional[int] = None,
        order: int = 8,
        logging: str = "tree",
    ):
        if logging not in _LOGGING_MODES:
            raise ReproError(
                f"logging must be one of {_LOGGING_MODES}, got {logging!r}"
            )
        if order < 2:
            raise ReproError(f"order must be >= 2, got {order}")
        self.db = db
        self.partition = partition
        self.first_slot = first_slot
        size = db.layout.partition_size(partition)
        self.capacity = capacity if capacity is not None else size - first_slot
        if first_slot + self.capacity > size:
            raise ReproError("B-tree slot range exceeds the partition")
        self.order = order
        self.logging = logging

    # ------------------------------------------------------------- lifecycle

    @property
    def meta_page(self) -> PageId:
        return PageId(self.partition, self.first_slot)

    def _page(self, slot: int) -> PageId:
        return PageId(self.partition, slot)

    def create(self) -> "BTree":
        """Format the meta page and an empty root leaf."""
        root_slot = self.first_slot + 1
        self.db.execute(BTreeInit(self._page(root_slot), LEAF))
        self.db.execute(
            PhysicalWrite(self.meta_page, ("meta", root_slot, root_slot + 1))
        )
        return self

    @classmethod
    def attach(
        cls,
        db,
        partition: int = 0,
        first_slot: int = 0,
        capacity: Optional[int] = None,
        order: int = 8,
        logging: str = "tree",
    ) -> "BTree":
        """Re-open an existing tree (e.g. after recovery)."""
        tree = cls(db, partition, first_slot, capacity, order, logging)
        meta = db.read(tree.meta_page)
        if not (isinstance(meta, tuple) and meta and meta[0] == "meta"):
            raise ReproError(
                f"no B-tree meta page at {tree.meta_page!r}: {meta!r}"
            )
        return tree

    def _meta(self) -> Tuple[int, int]:
        root, next_free, _ = self._meta_full()
        return root, next_free

    def _meta_full(self) -> Tuple[int, int, Tuple[int, ...]]:
        meta = self.db.read(self.meta_page)
        if not (
            isinstance(meta, tuple)
            and len(meta) in (3, 4)
            and meta[0] == "meta"
        ):
            raise ReproError(f"corrupt meta page: {meta!r}")
        freed = meta[3] if len(meta) == 4 else ()
        return meta[1], meta[2], freed

    def _set_meta(
        self,
        root_slot: int,
        next_free: int,
        freed: Tuple[int, ...] = (),
    ) -> None:
        self.db.execute(
            PhysicalWrite(
                self.meta_page, ("meta", root_slot, next_free, freed)
            )
        )

    def _alloc(self) -> int:
        root, next_free, freed = self._meta_full()
        if freed:
            self._set_meta(root, next_free, freed[1:])
            return freed[0]
        if next_free >= self.first_slot + self.capacity:
            raise OperationError("B-tree slot range exhausted")
        self._set_meta(root, next_free + 1, freed)
        return next_free

    def _free(self, slot: int) -> None:
        root, next_free, freed = self._meta_full()
        self._set_meta(root, next_free, freed + (slot,))

    # ----------------------------------------------------------------- reads

    def search(self, key: Any) -> Optional[Any]:
        """The payload stored under ``key``, or None."""
        slot = self._meta()[0]
        while True:
            value = self.db.read(self._page(slot))
            if node_kind(value) == LEAF:
                for k, payload in node_records(value):
                    if k == key:
                        return payload
                return None
            slot = self._route(node_records(value), key)

    @staticmethod
    def _route(entries: Tuple, key: Any) -> int:
        for k, child in entries:
            if key <= k:
                return child
        raise ReproError(f"routing failed for key {key!r}: {entries!r}")

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, payload) pairs in key order."""
        root, _ = self._meta()
        yield from self._walk(root)

    def _walk(self, slot: int) -> Iterator[Tuple[Any, Any]]:
        value = self.db.read(self._page(slot))
        if node_kind(value) == LEAF:
            yield from node_records(value)
            return
        for _, child in node_records(value):
            yield from self._walk(child)

    def height(self) -> int:
        slot = self._meta()[0]
        height = 1
        while True:
            value = self.db.read(self._page(slot))
            if node_kind(value) == LEAF:
                return height
            slot = node_records(value)[0][1]
            height += 1

    # ---------------------------------------------------------------- writes

    def insert(self, key: Any, payload: Any) -> None:
        """Insert (or overwrite) ``key``; splits full nodes on the way out."""
        root, _ = self._meta()
        # Descend, recording (slot, routed_key) per internal hop.
        path: List[Tuple[int, Any]] = []
        slot, routed = root, INF
        while True:
            value = self.db.read(self._page(slot))
            if node_kind(value) == LEAF:
                break
            path.append((slot, routed))
            entries = node_records(value)
            for k, child in entries:
                if key <= k:
                    slot, routed = child, k
                    break
            else:
                raise ReproError(f"routing failed inserting {key!r}")
        self.db.execute(BTreeInsert(self._page(slot), key, payload))
        self._split_upward(slot, routed, path)

    def _split_upward(
        self, slot: int, routed: Any, path: List[Tuple[int, Any]]
    ) -> None:
        while True:
            value = self.db.read(self._page(slot))
            records = node_records(value)
            if len(records) <= self.order:
                return
            split_key = records[len(records) // 2 - 1][0]
            new_slot = self._alloc()
            self._log_split(slot, split_key, new_slot, value)
            if path:
                parent_slot, parent_routed = path.pop()
                self.db.execute(
                    BTreeSplitParent(
                        self._page(parent_slot),
                        routed,
                        split_key,
                        slot,
                        new_slot,
                    )
                )
                slot, routed = parent_slot, parent_routed
                continue
            # Root split: grow the tree by one level.
            new_root = self._alloc()
            self.db.execute(
                PhysicalWrite(
                    self._page(new_root),
                    node_value(
                        INTERNAL,
                        ((split_key, slot), (INF, new_slot)),
                    ),
                )
            )
            _, next_free, freed = self._meta_full()
            self._set_meta(new_root, next_free, freed)
            return

    def _log_split(
        self, old_slot: int, split_key: Any, new_slot: int, old_value
    ) -> None:
        old_page, new_page = self._page(old_slot), self._page(new_slot)
        if self.logging == "tree":
            # MovRec then RmvRec (MovRec must precede: the updated old no
            # longer contains the moved records).
            self.db.execute(BTreeSplitMove(old_page, split_key, new_page))
        else:
            kind = node_kind(old_value)
            image = node_value(
                kind,
                tuple(r for r in node_records(old_value) if r[0] > split_key),
            )
            self.db.execute(PhysicalWrite(new_page, image))
        self.db.execute(BTreeSplitRemove(old_page, split_key))

    # --------------------------------------------------------------- deletes

    @property
    def _min_fill(self) -> int:
        """Underflow threshold: nodes rebalance below this record count."""
        return max(1, self.order // 3)

    def delete(self, key: Any) -> bool:
        """Delete ``key``; rebalances underflowing nodes on the way up.

        Borrows between siblings are :class:`BTreeBorrow` operations
        (general logical: two pages read AND written — an atomic
        two-page flush set); merges are :class:`BTreeMergeInto` (general
        logical: read two, write one).  Returns False if absent.
        """
        root, _ = self._meta()
        path: List[Tuple[int, Any]] = []
        slot, routed = root, INF
        while True:
            value = self.db.read(self._page(slot))
            if node_kind(value) == LEAF:
                break
            path.append((slot, routed))
            for k, child in node_records(value):
                if key <= k:
                    slot, routed = child, k
                    break
            else:
                return False
        if all(k != key for k, _ in node_records(value)):
            return False
        self.db.execute(BTreeDelete(self._page(slot), key))
        self._rebalance_upward(slot, routed, path)
        return True

    def _rebalance_upward(
        self, slot: int, routed: Any, path: List[Tuple[int, Any]]
    ) -> None:
        while True:
            value = self.db.read(self._page(slot))
            records = node_records(value)
            if not path:
                # slot is the root: collapse single-child internal roots
                # (possibly several levels at once).
                while node_kind(value) == INTERNAL and len(records) == 1:
                    child = records[0][1]
                    _, next_free, freed = self._meta_full()
                    self._set_meta(child, next_free, freed + (slot,))
                    slot = child
                    value = self.db.read(self._page(slot))
                    records = node_records(value)
                return
            threshold = (
                self._min_fill
                if node_kind(value) == LEAF
                # Internal nodes with a single child are degenerate:
                # they must merge or borrow so chains collapse.
                else max(2, self._min_fill)
            )
            if len(records) >= threshold:
                return
            parent_slot, parent_routed = path[-1]
            parent_value = self.db.read(self._page(parent_slot))
            entries = node_records(parent_value)
            if len(entries) < 2:
                # No sibling to merge with or borrow from: the parent is
                # a transient single-child internal node.  Climb — the
                # root check collapses the chain when it reaches the top.
                path.pop()
                slot, routed = parent_slot, parent_routed
                continue
            index = entries.index((routed, slot))
            if index + 1 < len(entries):
                sibling_key, sibling_slot = entries[index + 1]
                sibling_on_right = True
            else:
                sibling_key, sibling_slot = entries[index - 1]
                sibling_on_right = False
            sibling_records = node_records(
                self.db.read(self._page(sibling_slot))
            )

            if len(records) + len(sibling_records) <= self.order:
                self._merge(
                    slot, routed, sibling_slot, sibling_key,
                    sibling_on_right, parent_slot,
                )
                path.pop()
                slot, routed = parent_slot, parent_routed
                continue

            self._borrow(
                slot, sibling_slot, sibling_key, sibling_records,
                sibling_on_right, parent_slot,
                need=threshold - len(records),
            )
            return

    def _merge(
        self, slot, routed, sibling_slot, sibling_key, sibling_on_right,
        parent_slot,
    ) -> None:
        """Merge the lower-separator node into the higher one; the
        higher separator keeps covering every merged key."""
        if sibling_on_right:
            src_slot, src_key, dst_slot = slot, routed, sibling_slot
        else:
            src_slot, src_key, dst_slot = sibling_slot, sibling_key, slot
        if self.logging == "tree":
            # Merge is outside the tree-op class; even in tree mode it
            # must be logged as a general logical op (or page-oriented).
            self.db.execute(
                BTreeMergeInto(self._page(src_slot), self._page(dst_slot))
            )
        else:
            src_value = self.db.read(self._page(src_slot))
            dst_value = self.db.read(self._page(dst_slot))
            merged = node_value(
                node_kind(dst_value),
                node_records(dst_value) + node_records(src_value),
            )
            self.db.execute(PhysicalWrite(self._page(dst_slot), merged))
        self.db.execute(
            BTreeDeleteEntry(self._page(parent_slot), src_key, src_slot)
        )
        self._free(src_slot)

    def _borrow(
        self, slot, sibling_slot, sibling_key, sibling_records,
        sibling_on_right, parent_slot, need,
    ) -> None:
        need = max(1, need)
        if self.logging == "tree":
            self.db.execute(
                BTreeBorrow(
                    self._page(sibling_slot),
                    self._page(slot),
                    need,
                    from_low=sibling_on_right,
                )
            )
        else:
            self._borrow_page_oriented(
                slot, sibling_slot, sibling_records, sibling_on_right, need
            )
        if sibling_on_right:
            # Our separator rises to the largest key we received.
            new_separator = sibling_records[need - 1][0]
            self.db.execute(
                BTreeSetSeparator(
                    self._page(parent_slot), slot, new_separator
                )
            )
        else:
            # The left sibling's separator shrinks to its new maximum.
            new_separator = sibling_records[-(need + 1)][0]
            self.db.execute(
                BTreeSetSeparator(
                    self._page(parent_slot), sibling_slot, new_separator
                )
            )

    def _borrow_page_oriented(
        self, slot, sibling_slot, sibling_records, sibling_on_right, need
    ) -> None:
        """Page-oriented baseline: both new images logged physically."""
        value = self.db.read(self._page(slot))
        moved = (
            sibling_records[:need]
            if sibling_on_right
            else sibling_records[-need:]
        )
        remaining = (
            sibling_records[need:]
            if sibling_on_right
            else sibling_records[:-need]
        )
        self.db.execute(
            PhysicalWrite(
                self._page(slot),
                node_value(node_kind(value), node_records(value) + moved),
            )
        )
        sibling_value = self.db.read(self._page(sibling_slot))
        self.db.execute(
            PhysicalWrite(
                self._page(sibling_slot),
                node_value(node_kind(sibling_value), remaining),
            )
        )

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> int:
        """Validate ordering/routing; returns the number of keys."""
        root, next_free = self._meta()
        count, _, _ = self._check_subtree(root, INF)
        if next_free > self.first_slot + self.capacity:
            raise ReproError("allocation cursor beyond capacity")
        return count

    def _check_subtree(self, slot: int, upper: Any):
        value = self.db.read(self._page(slot))
        records = node_records(value)
        keys = [k for k, _ in records]
        if keys != sorted(keys):
            raise ReproError(f"unsorted node at slot {slot}: {keys!r}")
        if node_kind(value) == LEAF:
            for k in keys:
                if k > upper:
                    raise ReproError(
                        f"leaf key {k!r} above routing bound {upper!r}"
                    )
            return len(keys), keys[0] if keys else None, keys[-1] if keys else None
        total = 0
        for k, child in records:
            if k > upper and k is not INF:
                raise ReproError(
                    f"separator {k!r} above routing bound {upper!r}"
                )
            child_count, _, child_max = self._check_subtree(child, k)
            total += child_count
            if child_max is not None and child_max > k:
                raise ReproError(
                    f"child max {child_max!r} exceeds separator {k!r}"
                )
        return total, None, None
