"""Multi-stream WAL: N append-only log streams behind one manager.

The single-stream :class:`~repro.wal.log_manager.LogManager` serializes
every append through one LSN counter and makes every ``force()`` its own
durability event.  ``MultiLogManager`` removes both bottlenecks while
preserving the exact ``LogManager`` API:

* **N independent streams** (:class:`LogStream`, one per executor
  thread/shard).  An append takes only its stream's lock; appends to
  different streams never contend.  Each record carries its stream id
  and a dense per-stream sequence number, plus the global sequence the
  simulation uses as the LSN — a GIL-atomic fetch-and-add
  (``itertools.count``), the "cheap global epoch/sequence" of
  Taurus-style designs, not a lock-protected counter + shared list.
* **Object→stream pinning**: every record is routed by a stable hash of
  its *home object* (the smallest page of its writeset), so all records
  for a given object — in particular the paper's Iw/oF identity writes —
  land on **one** stream in order.  This is the reproduction-faithful
  constraint: the backup-order reasoning (D/P frontiers vs. log order)
  relies on per-object record order, which striping must not scramble.
  Control records with an empty writeset (checkpoints) go to stream 0.
* **Group commit**: concurrent ``force()`` callers coalesce behind one
  fsync-equivalent *tick*.  A leader captures a consistent cut of the
  log (all stream locks held briefly — no device wait under locks),
  pays one ``force_delay_s`` device sync for every stream in parallel,
  marks the streams durable, and wakes the followers.  Batch sizes and
  follower wait latencies are recorded in ``Metrics``
  (``force_batch_sizes``, ``log.force.wait`` phase histogram), and each
  tick emits a ``log_force`` trace event carrying its batch size.
* **Ordered merge scans**: :meth:`merge_scan` yields records across
  streams in recovered total order (a k-way heap merge; each stream is
  internally ordered).  All recovery paths consume the log through this
  surface.

Durability across streams is a *consistent cut*: ``flushed_lsn`` is the
largest L such that **every** record with LSN <= L is durable on its
stream.  A crash (:meth:`discard_unflushed`) first loses each stream's
unforced suffix, then trims each stream back to that globally consistent
frontier — per-stream suffixes only, never an interior record — so the
surviving log is gap-free and all single-stream recovery reasoning
carries over unchanged.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional

from repro.errors import LogTruncatedError
from repro.ids import LSN, PageId
from repro.obs.events import LOG_FORCE
from repro.ops.base import Operation
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag


def stream_for_page(page: PageId, num_streams: int) -> int:
    """Stable object→stream hash (same page, same stream, every run)."""
    return ((page.partition * 2654435761) ^ (page.slot * 40503)) % num_streams


class LogStream:
    """One physical append-only log stream.

    Records are appended in ascending global-LSN order (the manager
    draws the LSN under this stream's lock), so ``lsns`` is sorted and
    range queries are binary searches.  ``flushed_count`` is the durable
    prefix length of this stream.
    """

    __slots__ = ("stream_id", "records", "lsns", "flushed_count", "lock")

    def __init__(self, stream_id: int):
        self.stream_id = stream_id
        self.records: List[LogRecord] = []
        self.lsns: List[LSN] = []
        self.flushed_count = 0
        self.lock = threading.Lock()

    def append(self, record: LogRecord) -> None:
        """Append under the (held) stream lock; stamps stream addressing."""
        record.stream_id = self.stream_id
        record.stream_seq = len(self.records) + 1
        self.records.append(record)
        self.lsns.append(record.lsn)

    def flush_to(self, target_lsn: LSN) -> None:
        """Mark this stream durable through ``target_lsn``."""
        with self.lock:
            n = bisect_right(self.lsns, target_lsn)
            if n > self.flushed_count:
                self.flushed_count = n

    def first_unflushed_lsn(self) -> Optional[LSN]:
        if self.flushed_count < len(self.records):
            return self.lsns[self.flushed_count]
        return None

    def unflushed_count(self) -> int:
        return len(self.records) - self.flushed_count

    def slice(self, from_lsn: LSN, to_lsn: LSN) -> Iterator[LogRecord]:
        """This stream's records with ``from_lsn <= lsn <= to_lsn``."""
        lo = bisect_left(self.lsns, from_lsn)
        hi = bisect_right(self.lsns, to_lsn)
        return iter(self.records[lo:hi])

    def drop_after(self, keep_lsn: LSN) -> List[LogRecord]:
        """Drop (and return) the suffix of records with lsn > keep_lsn."""
        cut = bisect_right(self.lsns, keep_lsn)
        dropped = self.records[cut:]
        if dropped:
            del self.records[cut:]
            del self.lsns[cut:]
            if self.flushed_count > len(self.records):
                self.flushed_count = len(self.records)
        return dropped

    def drop_before(self, cut_lsn: LSN) -> List[LogRecord]:
        """Drop (and return) the prefix of records with lsn < cut_lsn."""
        cut = bisect_left(self.lsns, cut_lsn)
        dropped = self.records[:cut]
        if dropped:
            del self.records[:cut]
            del self.lsns[:cut]
            self.flushed_count = max(0, self.flushed_count - cut)
        return dropped

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self):
        return (
            f"LogStream({self.stream_id}, records={len(self.records)}, "
            f"flushed={self.flushed_count})"
        )


class MultiLogManager(LogManager):
    """N log streams behind the single-stream ``LogManager`` API.

    Drop-in compatible: global LSNs stay dense and every inherited
    consumer (scans, truncation arithmetic, WAL assertions, statistics)
    sees the same contract as the single-stream manager.  The inherited
    ``_records`` list is kept as the *merged global index* — appended
    lock-free in arrival order and re-sorted lazily before ordered reads
    (appends are timsort-friendly: at most a few positions out of
    order).  Scans, statistics and recovery may only run quiesced (no
    concurrent appends), exactly like the rest of the simulation.
    """

    def __init__(
        self,
        streams: int = 4,
        auto_force: bool = True,
        group_commit: bool = True,
        force_delay_s: float = 0.0,
    ):
        super().__init__(auto_force=auto_force)
        if streams < 1:
            raise ValueError("MultiLogManager needs at least one stream")
        self.streams = [LogStream(i) for i in range(streams)]
        self.num_streams = streams
        self.group_commit = group_commit
        self.force_delay_s = force_delay_s
        # Completed group-commit ticks; stamped into log_force events.
        self.epoch = 0
        # Optional Metrics sink for group-commit histograms.
        self.metrics = None
        self._lsn_seq = itertools.count(1)
        self._order_dirty = False
        # Per-caller force path: device serialization.
        self._sync_lock = threading.Lock()
        # Group-commit leader/follower state.
        self._gc_cond = threading.Condition()
        self._gc_leader = False
        self._gc_waiters = 0

    # ------------------------------------------------------------- routing

    def stream_of(self, op: Operation) -> int:
        """The stream an operation's record is pinned to.

        The home object is the smallest page of the writeset (for pure
        reads, of the readset), so every record of a given object —
        Iw/oF identity writes above all — lands on one stream.  Records
        touching no pages at all (checkpoints) go to stream 0.
        """
        ws = op.writeset
        home = min(ws) if ws else None
        if home is None:
            rs = op.readset
            home = min(rs) if rs else None
        if home is None:
            return 0
        return stream_for_page(home, self.num_streams)

    # ------------------------------------------------------------- appends

    def append(
        self,
        op: Operation,
        flags: RecordFlag = RecordFlag.NONE,
        source: str = "",
    ) -> LogRecord:
        if self.faults is not None:
            from repro.sim.faults import IOPoint

            self.faults.check(IOPoint.LOG_APPEND, corrupt=self._bitrot)
        stream = self.streams[self.stream_of(op)]
        device = self.device
        with stream.lock:
            lsn = next(self._lsn_seq)
            record = LogRecord(lsn, op, flags, source)
            stream.append(record)
            if device is not None:
                # Under the stream lock so the device file's record order
                # matches the stream's stream_seq order.
                device.append(stream.stream_id, record)
            if self.auto_force:
                stream.flushed_count = len(stream.records)
        # The global index: append-only in arrival order, lazily
        # re-sorted before ordered reads.  list.append is GIL-atomic.
        self._records.append(record)
        self._order_dirty = True
        self.stats.add(record)
        if self.auto_force:
            if device is not None:
                device.sync()
            self._advance_frontier()
        if self._append_listeners:
            for listener in self._append_listeners:
                listener(record)
        return record

    def _ensure_order(self) -> None:
        if self._order_dirty:
            self._records.sort(key=lambda r: r.lsn)
            self._order_dirty = False

    # ----------------------------------------------------------- durability

    def _consistent_cut(self) -> LSN:
        """The highest LSN such that every drawn LSN <= it is appended.

        Takes every stream lock briefly (fixed order, no device wait):
        with all locks held no append is in flight, so the dense global
        sequence has no holes and ``end_lsn`` is a consistent cut.
        """
        for stream in self.streams:
            stream.lock.acquire()
        try:
            return self.end_lsn
        finally:
            for stream in reversed(self.streams):
                stream.lock.release()

    def _advance_frontier(self) -> LSN:
        """Recompute the globally consistent durable frontier.

        The frontier is the largest L with no unflushed record at or
        below it.  Concurrent appends can only add unflushed records
        with *higher* LSNs than any completed cut, so a stale read here
        under-reports — never over-reports — durability.
        """
        frontier = self.end_lsn
        for stream in self.streams:
            first = stream.first_unflushed_lsn()
            if first is not None and first - 1 < frontier:
                frontier = first - 1
        if frontier > self._flushed_lsn:
            self._flushed_lsn = frontier
        return self._flushed_lsn

    def _sync(self, target: LSN, batch: int) -> None:
        """One durability event: device sync, then mark streams durable.

        The delay is paid once for the whole tick — the N streams model
        N devices syncing in parallel.  Fault injection happens before
        any state changes so a failed sync can simply be retried.
        """
        if self.faults is not None:
            from repro.sim.faults import IOPoint

            self.faults.check(IOPoint.LOG_FORCE, corrupt=self._bitrot)
        if self.force_delay_s:
            time.sleep(self.force_delay_s)
        if self.device is not None:
            # One real device sync covers every stream's pending suffix,
            # the whole point of the group-commit tick.
            self.device.sync()
        previous = self._flushed_lsn
        for stream in self.streams:
            stream.flush_to(target)
        flushed = self._advance_frontier()
        self.epoch += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.group_commit_ticks += 1
            metrics.group_commit_coalesced += batch - 1
            metrics.force_batch_sizes[batch] = (
                metrics.force_batch_sizes.get(batch, 0) + 1
            )
        if self.tracer.enabled:
            self.tracer.emit(
                LOG_FORCE, lsn=flushed, from_lsn=previous, batch=batch,
                tick=self.epoch,
            )

    def force(self, up_to: Optional[LSN] = None) -> None:
        """Force the log durable up to ``up_to`` (default: everything).

        With ``group_commit`` concurrent callers coalesce: one becomes
        the tick leader and syncs a consistent cut covering every
        waiter; the rest block on a condition until a tick that covers
        their target completes.  ``force`` never returns before every
        LSN up to the caller's target is durable, and ``flushed_lsn``
        never covers an LSN whose tick has not completed.
        """
        cut = self._consistent_cut()
        end = cut if up_to is None else min(up_to, cut)
        if end <= self._flushed_lsn:
            return
        if not self.group_commit:
            # Per-caller mode: every force that saw undurable work at
            # entry performs its own device sync, serialized on the
            # device lock — the pre-group-commit baseline the append/
            # force benchmarks contrast against.
            with self._sync_lock:
                self._sync(end, batch=1)
            return
        cond = self._gc_cond
        wait_started: Optional[float] = None
        with cond:
            while True:
                if self._flushed_lsn >= end:
                    # A tick led by someone else covered us.
                    if wait_started is not None:
                        self._observe_wait(wait_started)
                    return
                if not self._gc_leader:
                    self._gc_leader = True
                    break
                if wait_started is None:
                    wait_started = time.perf_counter()
                self._gc_waiters += 1
                try:
                    cond.wait()
                finally:
                    self._gc_waiters -= 1
        # Tick leader: sync a fresh consistent cut (coalesces every
        # append and waiter that arrived since we decided to lead).
        try:
            if wait_started is not None:
                self._observe_wait(wait_started)
            target = self._consistent_cut()
            batch = 1 + self._gc_waiters
            self._sync(target, batch=batch)
        finally:
            with cond:
                self._gc_leader = False
                cond.notify_all()

    def _observe_wait(self, started: float) -> None:
        if self.metrics is not None:
            self.metrics.observe_phase(
                "log.force.wait", time.perf_counter() - started
            )

    # ------------------------------------------------------------ integrity

    def _bitrot(self, rng) -> bool:
        """Rot the globally newest record (some stream's tail)."""
        tails = [s.records[-1] for s in self.streams if s.records]
        if not tails:
            return False
        record = max(tails, key=lambda r: r.lsn)
        if record.crc is None:
            record.crc = 0
        record.crc ^= 1 << rng.randrange(32)
        return True

    def repair_tail(self) -> int:
        """Cut every stream back to just before the first corrupt record.

        The first (lowest-LSN) checksum-failed record marks the end of
        the trustworthy log *globally*: it and everything after it — a
        suffix of each stream — is discarded, exactly matching the
        single-stream cut semantics.
        """
        damaged = [
            r.lsn
            for s in self.streams
            for r in s.records
            if not self.verify_record(r)
        ]
        if not damaged:
            return 0
        cut_lsn = min(damaged)
        dropped = 0
        for stream in self.streams:
            removed = stream.drop_after(cut_lsn - 1)
            self.stats.remove_all(removed)
            dropped += len(removed)
        self._ensure_order()
        del self._records[cut_lsn - self._first_lsn:]
        if self._flushed_lsn > self.end_lsn:
            self._flushed_lsn = self.end_lsn
        self.tail_repair_dropped += dropped
        self._emit_tail_repair(dropped)
        return dropped

    def discard_unflushed(self) -> int:
        """Crash: lose each stream's unforced suffix.

        Every stream is trimmed back to the globally consistent durable
        frontier (``flushed_lsn``).  Records forced on their own stream
        but not yet covered by a completed tick are sacrificed too —
        they were never *claimed* durable — keeping the surviving log a
        gap-free global prefix.  The cut is always a per-stream suffix.
        """
        frontier = self._flushed_lsn
        lost = 0
        per_stream: Dict[str, int] = {}
        for stream in self.streams:
            removed = stream.drop_after(frontier)
            if removed:
                self.stats.remove_all(removed)
                per_stream[str(stream.stream_id)] = len(removed)
                lost += len(removed)
        if lost:
            self._ensure_order()
            del self._records[frontier - self._first_lsn + 1:]
            if self.device is not None:
                # The volatile device buffer is lost with the process.
                self.device.drop_pending()
            self._emit_tail_lost(lost, per_stream=per_stream)
        return lost

    def truncate_prefix(self, up_to_lsn: LSN) -> int:
        """Discard the global prefix below ``up_to_lsn``, per stream.

        Each stream drops its own prefix of records below the global
        safe point; LSN addressing stays stable.
        """
        if up_to_lsn <= self._first_lsn:
            return 0
        self._ensure_order()
        cut = min(up_to_lsn, self.end_lsn + 1)
        discarded = cut - self._first_lsn
        self.stats.remove_all(self._records[:discarded])
        del self._records[:discarded]
        self._first_lsn = cut
        for stream in self.streams:
            stream.drop_before(cut)
        if self._flushed_lsn < self._first_lsn - 1:
            self._flushed_lsn = self._first_lsn - 1
        return discarded

    # ---------------------------------------------------------------- scans

    def record_at(self, lsn: LSN) -> LogRecord:
        self._ensure_order()
        return super().record_at(lsn)

    def scan(
        self, from_lsn: LSN = 1, to_lsn: Optional[LSN] = None
    ) -> Iterator[LogRecord]:
        self._ensure_order()
        return super().scan(from_lsn, to_lsn)

    def merge_scan(
        self, from_lsn: LSN = 1, to_lsn: Optional[LSN] = None
    ) -> Iterator[LogRecord]:
        """K-way ordered merge across the physical streams.

        Yields exactly the records of :meth:`scan` in the recovered
        total order (ascending global LSN); each stream contributes an
        already-ordered run, merged through a heap.
        """
        start = max(from_lsn, 1)
        end = self.end_lsn if to_lsn is None else min(to_lsn, self.end_lsn)
        if start < self._first_lsn and start <= end:
            raise LogTruncatedError(
                f"scan from LSN {start} but log is truncated before "
                f"{self._first_lsn}"
            )
        runs = [s.slice(start, end) for s in self.streams]
        return heapq.merge(*runs, key=lambda r: r.lsn)

    # ---------------------------------------------------------- inspection

    def stream_lengths(self) -> Dict[int, int]:
        return {s.stream_id: len(s) for s in self.streams}

    def __repr__(self):
        return (
            f"MultiLogManager(streams={self.num_streams}, "
            f"end={self.end_lsn}, flushed={self._flushed_lsn})"
        )
