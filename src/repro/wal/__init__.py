"""Write-ahead log: records, the log manager, truncation, media-log view.

The log is the single sequential record stream of a conventional recovery
system; the *media recovery log* (section 1) is not a separate stream but a
suffix view of the same log starting at the scan-start LSN captured when a
backup begins.
"""

from repro.wal.records import LogRecord, RecordFlag
from repro.wal.log_manager import LogManager, LogStats
from repro.wal.multi_log import LogStream, MultiLogManager, stream_for_page
from repro.wal.truncation import RecLSNTracker
from repro.wal.media_log import MediaLogView
from repro.wal.checkpoint import CheckpointManager, CheckpointOp
from repro.wal.serialize import load_log, save_log

__all__ = [
    "LogRecord",
    "RecordFlag",
    "LogManager",
    "LogStats",
    "LogStream",
    "MultiLogManager",
    "stream_for_page",
    "RecLSNTracker",
    "MediaLogView",
    "CheckpointManager",
    "CheckpointOp",
    "load_log",
    "save_log",
]
