"""The media recovery log: a suffix view over the shared log stream.

"Maintaining the media recovery log is conventional and is not impacted by
the choice of log operations" (section 1) — so the media log is simply the
record stream from the backup's scan-start LSN onward.  What *is* new with
logical operations is the content: Iw/oF identity-write records appear in
this view and are what make the backup recoverable.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ids import LSN
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class MediaLogView:
    """Read-only view of ``log`` starting at ``scan_start_lsn``."""

    def __init__(self, log: LogManager, scan_start_lsn: LSN):
        self._log = log
        self.scan_start_lsn = scan_start_lsn

    def scan(self, to_lsn: Optional[LSN] = None) -> Iterator[LogRecord]:
        # Ordered merge across physical streams on a striped log.
        return self._log.merge_scan(self.scan_start_lsn, to_lsn)

    def record_count(self) -> int:
        return self._log.count(self.scan_start_lsn)

    def iwof_count(self) -> int:
        return self._log.iwof_count(self.scan_start_lsn)

    def bytes_total(self) -> int:
        return self._log.bytes_logged(self.scan_start_lsn)

    def iwof_bytes(self) -> int:
        return self._log.bytes_logged(
            self.scan_start_lsn, predicate=lambda r: r.is_iwof
        )
