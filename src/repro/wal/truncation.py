"""Log truncation / rLSN tracking.

The crash-recovery log scan start point is the minimum *recovery LSN*
(recLSN) over all dirty pages: every operation that might need replay has
an LSN at or after it.  The paper's Iw/oF insight (sections 3.2, 2.5) shows
up here concretely: logging an identity write for a page *advances its
rLSN* exactly the way flushing does, "permitting the truncation of the log
in the same way that flushing does".

``RecLSNTracker`` is maintained by the cache manager:

* ``mark_dirty(page, lsn)`` when a clean page is first updated;
* ``mark_installed(page)`` when the page's operations are installed —
  either by an actual flush or by Iw/oF logging of its value.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ids import LSN, PageId


class RecLSNTracker:
    def __init__(self):
        self._rec_lsn: Dict[PageId, LSN] = {}

    def mark_dirty(self, page_id: PageId, lsn: LSN) -> None:
        """Record the first update of a clean page (keeps the oldest LSN)."""
        self._rec_lsn.setdefault(page_id, lsn)

    def mark_installed(self, page_id: PageId) -> None:
        """The page's pending updates are now recoverable without the log
        prefix (flushed to S, or identity-logged)."""
        self._rec_lsn.pop(page_id, None)

    def mark_redirtied(self, page_id: PageId, lsn: LSN) -> None:
        """A page updated again after installation restarts its recLSN."""
        self._rec_lsn[page_id] = lsn

    def rec_lsn(self, page_id: PageId) -> Optional[LSN]:
        return self._rec_lsn.get(page_id)

    def truncation_point(self, end_lsn: LSN) -> LSN:
        """First LSN that must be retained; ``end_lsn + 1`` if none dirty.

        Recovery scans from this LSN; everything before it may be
        discarded from the (crash) log.
        """
        if not self._rec_lsn:
            return end_lsn + 1
        return min(self._rec_lsn.values())

    def dirty_count(self) -> int:
        return len(self._rec_lsn)

    def dirty_pages(self):
        return set(self._rec_lsn)
