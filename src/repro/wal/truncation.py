"""Log truncation / rLSN tracking.

The crash-recovery log scan start point is the minimum *recovery LSN*
(recLSN) over all dirty pages: every operation that might need replay has
an LSN at or after it.  The paper's Iw/oF insight (sections 3.2, 2.5) shows
up here concretely: logging an identity write for a page *advances its
rLSN* exactly the way flushing does, "permitting the truncation of the log
in the same way that flushing does".

``RecLSNTracker`` is maintained by the cache manager:

* ``mark_dirty(page, lsn)`` when a clean page is first updated;
* ``mark_installed(page)`` when the page's operations are installed —
  either by an actual flush or by Iw/oF logging of its value.

``truncation_point`` is consulted on every install (the cache manager
advances its conceptual checkpoint record), so the minimum recLSN is
served from a lazy-deletion min-heap rather than a scan of the dirty
table: entries are pushed on (re)dirty and simply left stale on
install, and lookups pop stale heads until a live minimum surfaces —
amortized O(log dirty) per operation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.ids import LSN, PageId


class RecLSNTracker:
    def __init__(self):
        self._rec_lsn: Dict[PageId, LSN] = {}
        # Min-heap of (lsn, page) with lazy deletion: an entry is live
        # iff it matches the dirty table exactly.
        self._heap: List[Tuple[LSN, PageId]] = []

    def mark_dirty(self, page_id: PageId, lsn: LSN) -> None:
        """Record the first update of a clean page (keeps the oldest LSN)."""
        if page_id not in self._rec_lsn:
            self._rec_lsn[page_id] = lsn
            heapq.heappush(self._heap, (lsn, page_id))

    def mark_installed(self, page_id: PageId) -> None:
        """The page's pending updates are now recoverable without the log
        prefix (flushed to S, or identity-logged)."""
        self._rec_lsn.pop(page_id, None)

    def mark_redirtied(self, page_id: PageId, lsn: LSN) -> None:
        """A page updated again after installation restarts its recLSN."""
        self._rec_lsn[page_id] = lsn
        heapq.heappush(self._heap, (lsn, page_id))

    def rec_lsn(self, page_id: PageId) -> Optional[LSN]:
        return self._rec_lsn.get(page_id)

    def truncation_point(self, end_lsn: LSN) -> LSN:
        """First LSN that must be retained; ``end_lsn + 1`` if none dirty.

        Recovery scans from this LSN; everything before it may be
        discarded from the (crash) log.
        """
        rec_lsn = self._rec_lsn
        if not rec_lsn:
            if self._heap:
                self._heap.clear()
            return end_lsn + 1
        heap = self._heap
        while heap:
            lsn, page_id = heap[0]
            if rec_lsn.get(page_id) == lsn:
                return lsn
            heapq.heappop(heap)
        # Defensive: every dirty entry was pushed when recorded, so the
        # heap cannot run dry while the table is non-empty — but rebuild
        # rather than misreport if the invariant is ever broken.
        heap[:] = [(lsn, pid) for pid, lsn in rec_lsn.items()]
        heapq.heapify(heap)
        return heap[0][0]

    def dirty_count(self) -> int:
        return len(self._rec_lsn)

    def dirty_pages(self):
        return set(self._rec_lsn)
