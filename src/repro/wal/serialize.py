"""Log serialization: operations, records, and whole logs as JSON.

With the backup archive this completes the cross-machine story: a node
can ship its log as a file and a replacement can reconstruct a working
:class:`~repro.wal.log_manager.LogManager` from it.

Operations serialize to *specs* keyed by structural family, not by
Python class: a ``BTreeSplitRemove`` round-trips as a physiological
operation with transform ``btree_remove_high`` — replay-equivalent by
construction, because compute always dispatches through the transform
registry.  Families:

* ``physical``      — target + logged value (+ identity flag);
* ``physiological`` — target + transform + args;
* ``logical``       — reads + writes + transform + args + per_target;
* ``write_new``     — old + new + transform + args (tree class);
* ``checkpoint``    — the dirty-page table;
* ``app_step`` / ``app_feed`` / ``app_emit`` / ``app_read`` — the
  application-runtime forms (resolved back to their exact classes so
  successor metadata is preserved).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Any, Dict, List

from repro.codec import decode_value, encode_value
from repro.errors import CorruptLogRecordError, LogError
from repro.ids import PageId
from repro.ops.base import Operation
from repro.ops.identity import IdentityWrite
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import WriteNew
from repro.wal.checkpoint import CheckpointOp
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag

FORMAT_VERSION = 1
#: Multi-stream envelope: per-stream record lists with their own
#: durable boundaries.  Single-stream logs always ship format 1, so
#: their files stay byte-identical to pre-striping builds.
MULTI_FORMAT_VERSION = 2


def _pid_spec(page: PageId):
    return [page.partition, page.slot]


def _pid_from(spec) -> PageId:
    return PageId(spec[0], spec[1])


def op_to_spec(op: Operation) -> Dict[str, Any]:
    """Serialize one operation to a JSON-safe spec."""
    from repro.appfs.application import AppRead
    from repro.appfs.runtime import AppEmit, AppFeed, AppStep

    if isinstance(op, CheckpointOp):
        return {
            "kind": "checkpoint",
            "table": [
                [pid.partition, pid.slot, lsn]
                for pid, lsn in sorted(op.dirty_table.items())
            ],
        }
    if isinstance(op, AppStep):
        return {
            "kind": "app_step",
            "app": _pid_spec(op.app_page),
            "logic": op.logic_name,
        }
    if isinstance(op, AppFeed):
        return {
            "kind": "app_feed",
            "source": _pid_spec(op.source),
            "app": _pid_spec(op.app_page),
        }
    if isinstance(op, AppEmit):
        return {
            "kind": "app_emit",
            "app": _pid_spec(op.app_page),
            "target": _pid_spec(op.target),
        }
    if isinstance(op, AppRead):
        return {
            "kind": "app_read",
            "source": _pid_spec(op.source),
            "app": _pid_spec(op.app_page),
        }
    if isinstance(op, IdentityWrite):
        return {
            "kind": "physical",
            "target": _pid_spec(op.target),
            "value": encode_value(op.value),
            "identity": True,
        }
    if isinstance(op, PhysicalWrite):
        return {
            "kind": "physical",
            "target": _pid_spec(op.target),
            "value": encode_value(op.value),
            "identity": False,
        }
    if isinstance(op, WriteNew):
        return {
            "kind": "write_new",
            "old": _pid_spec(op.old),
            "new": _pid_spec(op.new),
            "transform": op.transform,
            "args": encode_value(tuple(op.args)),
        }
    if isinstance(op, PhysiologicalWrite):
        return {
            "kind": "physiological",
            "target": _pid_spec(op.target),
            "transform": op.transform,
            "args": encode_value(tuple(op.args)),
        }
    if isinstance(op, GeneralLogicalOp):
        return {
            "kind": "logical",
            "reads": [_pid_spec(p) for p in sorted(op.readset)],
            "writes": [_pid_spec(p) for p in sorted(op.writeset)],
            "transform": op.transform,
            "args": encode_value(tuple(op.args)),
            "per_target": op.per_target,
        }
    raise LogError(
        f"cannot serialize operation of type {type(op).__name__}"
    )


def op_from_spec(spec: Dict[str, Any]) -> Operation:
    """Reconstruct a replay-equivalent operation from a spec."""
    from repro.appfs.application import AppRead
    from repro.appfs.runtime import AppEmit, AppFeed, AppStep

    kind = spec.get("kind")
    if kind == "checkpoint":
        return CheckpointOp(
            {PageId(p, s): lsn for p, s, lsn in spec["table"]}
        )
    if kind == "app_step":
        return AppStep(_pid_from(spec["app"]), spec["logic"])
    if kind == "app_feed":
        return AppFeed(_pid_from(spec["source"]), _pid_from(spec["app"]))
    if kind == "app_emit":
        return AppEmit(_pid_from(spec["app"]), _pid_from(spec["target"]))
    if kind == "app_read":
        return AppRead(_pid_from(spec["source"]), _pid_from(spec["app"]))
    if kind == "physical":
        cls = IdentityWrite if spec.get("identity") else PhysicalWrite
        return cls(_pid_from(spec["target"]), decode_value(spec["value"]))
    if kind == "write_new":
        return WriteNew(
            _pid_from(spec["old"]),
            _pid_from(spec["new"]),
            spec["transform"],
            decode_value(spec["args"]),
        )
    if kind == "physiological":
        return PhysiologicalWrite(
            _pid_from(spec["target"]),
            spec["transform"],
            decode_value(spec["args"]),
        )
    if kind == "logical":
        return GeneralLogicalOp(
            [_pid_from(p) for p in spec["reads"]],
            [_pid_from(p) for p in spec["writes"]],
            spec["transform"],
            decode_value(spec["args"]),
            per_target=spec["per_target"],
        )
    raise LogError(f"unknown operation spec kind {kind!r}")


def spec_checksum(spec: Dict[str, Any]) -> int:
    """CRC32 integrity envelope over a record spec's canonical form.

    Covers the LSN, flags, source and the full operation spec (the
    ``crc`` key itself is excluded).  Computed over the spec dict rather
    than the reconstructed record, so verification does not depend on
    operation round-trip stability.
    """
    body = {
        "lsn": spec["lsn"],
        "flags": spec["flags"],
        "source": spec.get("source", ""),
        "op": spec["op"],
    }
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


def record_checksum(record: LogRecord) -> int:
    """The integrity envelope :class:`LogManager` stamps at append time.

    Operations the serializer does not know (test fakes) are covered via
    their ``repr`` — stable within a process, which is the lifetime of
    an in-memory log.
    """
    try:
        op_spec = op_to_spec(record.op)
    except LogError:
        op_spec = {"kind": "opaque", "repr": repr(record.op)}
    return spec_checksum(
        {
            "lsn": record.lsn,
            "flags": record.flags.value,
            "source": record.source,
            "op": op_spec,
        }
    )


def record_to_spec(record: LogRecord) -> Dict[str, Any]:
    spec = {
        "lsn": record.lsn,
        "flags": record.flags.value,
        "source": record.source,
        "op": op_to_spec(record.op),
    }
    spec["crc"] = record.crc if record.crc is not None else spec_checksum(spec)
    return spec


def record_from_spec(spec: Dict[str, Any]) -> LogRecord:
    crc = spec.get("crc")
    if crc is not None and crc != spec_checksum(spec):
        raise CorruptLogRecordError(spec.get("lsn", "?"))
    return LogRecord(
        lsn=spec["lsn"],
        op=op_from_spec(spec["op"]),
        flags=RecordFlag(spec["flags"]),
        source=spec.get("source", ""),
        crc=crc,
    )


def save_log(log: LogManager, path: str) -> int:
    """Serialize the retained, durable portion of a log to a file.

    Streams one record spec at a time rather than materializing the spec
    list for the whole log, so peak memory is a single record regardless
    of log length.  The bytes written are identical to a single
    ``json.dumps`` of the full envelope with ``separators=(",", ":")``.

    A multi-stream log (``log.num_streams > 1``) ships the format-2
    envelope: one record list per physical stream, each with its own
    durable boundary.  Single-stream logs always write format 1, so
    their files are byte-identical whether or not striping exists.
    """
    if getattr(log, "num_streams", 1) > 1 and hasattr(log, "streams"):
        return _save_multi(log, path)
    dumps = json.dumps
    with open(path, "w") as handle:
        write = handle.write
        write(
            '{"format":%s,"first_lsn":%s,"flushed_lsn":%s,"records":['
            % (
                dumps(FORMAT_VERSION),
                dumps(log.first_retained_lsn),
                dumps(log.flushed_lsn),
            )
        )
        first = True
        for record in log.durable_scan(log.first_retained_lsn):
            if first:
                first = False
            else:
                write(",")
            write(dumps(record_to_spec(record), separators=(",", ":")))
        write("]}")
    return os.path.getsize(path)


def _save_multi(log, path: str) -> int:
    """Format-2 writer: the durable prefix of each stream, per stream.

    Only records at or below the *globally consistent* durable frontier
    are shipped — exactly the records a crash at save time would have
    preserved — so a loaded log equals the crash-surviving log.
    """
    from bisect import bisect_right

    dumps = json.dumps
    flushed = log.flushed_lsn
    first = log.first_retained_lsn
    with open(path, "w") as handle:
        write = handle.write
        write(
            '{"format":%s,"log_streams":%s,"first_lsn":%s,'
            '"flushed_lsn":%s,"streams":['
            % (
                dumps(MULTI_FORMAT_VERSION),
                dumps(log.num_streams),
                dumps(first),
                dumps(flushed),
            )
        )
        for i, stream in enumerate(log.streams):
            if i:
                write(",")
            hi = bisect_right(stream.lsns, flushed)
            stream_flushed = stream.lsns[hi - 1] if hi else first - 1
            write(
                '{"stream_id":%s,"flushed_lsn":%s,"records":['
                % (dumps(stream.stream_id), dumps(stream_flushed))
            )
            first_record = True
            for record in stream.records[:hi]:
                if first_record:
                    first_record = False
                else:
                    write(",")
                spec = record_to_spec(record)
                spec["stream"] = record.stream_id
                spec["seq"] = record.stream_seq
                write(dumps(spec, separators=(",", ":")))
            write("]}")
        write("]}")
    return os.path.getsize(path)


_HEADER_RE = re.compile(
    r'^\{"format":\s*(-?\d+),\s*"first_lsn":\s*(-?\d+),'
    r'\s*"flushed_lsn":\s*(-?\d+),\s*"records":\s*\['
)


def _salvage_specs(text: str, pos: int):
    """Yield record specs decoded one at a time from ``text``.

    Stops (without raising) at the first position that is not a
    decodable JSON object — the boundary of the surviving prefix of a
    damaged file.
    """
    decoder = json.JSONDecoder()
    length = len(text)
    while True:
        while pos < length and text[pos] in ", \t\r\n":
            pos += 1
        if pos >= length or text[pos] != "{":
            return
        try:
            spec, pos = decoder.raw_decode(text, pos)
        except ValueError:
            return
        yield spec


def load_log(path: str, repair_tail: bool = False) -> LogManager:
    """Reconstruct a LogManager (with original LSNs) from a file.

    With ``repair_tail=False`` (the default) any damage — invalid JSON,
    a checksum-failed record, an out-of-sequence LSN — raises.  With
    ``repair_tail=True`` the loader is tolerant: records are decoded one
    at a time and the log is truncated at the first record that cannot
    be decoded or fails its integrity check, yielding the longest clean
    prefix (torn-tail repair for shipped log files).  The number of
    records dropped is exposed as ``log.tail_repair_dropped``.
    """
    with open(path) as handle:
        text = handle.read()
    envelope = None
    try:
        envelope = json.loads(text)
    except ValueError:
        if not repair_tail:
            raise LogError(f"log file {path} is not valid JSON") from None
    if envelope is not None:
        fmt = envelope.get("format")
        if fmt == MULTI_FORMAT_VERSION:
            return _load_multi(envelope, path, repair_tail)
        if fmt != FORMAT_VERSION:
            raise LogError(f"unsupported log format {fmt!r}")
        first_lsn = envelope["first_lsn"]
        claimed_flushed = envelope["flushed_lsn"]
        specs = iter(envelope["records"])
    else:
        header = _HEADER_RE.match(text)
        if header is None or int(header.group(1)) != FORMAT_VERSION:
            raise LogError(
                f"log file {path}: header unreadable, nothing salvageable"
            )
        first_lsn = int(header.group(2))
        claimed_flushed = int(header.group(3))
        specs = _salvage_specs(text, header.end())
    log = LogManager(auto_force=True)
    log._first_lsn = first_lsn  # noqa: SLF001
    for spec in specs:
        try:
            record = record_from_spec(spec)
            if record.lsn != log.next_lsn:
                raise LogError(
                    f"log file out of sequence at LSN {record.lsn} "
                    f"(expected {log.next_lsn})"
                )
        except (LogError, KeyError, TypeError, ValueError):
            if repair_tail:
                break  # everything from here on is untrustworthy
            raise
        log._records.append(record)  # noqa: SLF001
        log.stats.add(record)  # keep incremental statistics consistent
    log.force()
    # How many records the file claimed beyond what survived.
    log.tail_repair_dropped = max(0, claimed_flushed - (log.next_lsn - 1))
    return log


def _load_multi(envelope: Dict[str, Any], path: str, repair_tail: bool):
    """Reconstruct a ``MultiLogManager`` from a format-2 envelope.

    Damage handling with ``repair_tail=True`` mirrors the single-stream
    cut: a record that cannot be decoded or fails its checksum poisons
    its stream from that point on, and the global log is cut back to the
    highest LSN below every poisoned point (keeping the retained log a
    dense global prefix, per-stream suffix drops only).  Note the
    byte-level salvage path for a *torn* file remains format-1 only: a
    format-2 file that is not valid JSON is not salvageable.
    """
    import itertools

    from repro.wal.multi_log import MultiLogManager

    num_streams = envelope["log_streams"]
    if not isinstance(num_streams, int) or num_streams < 1:
        raise LogError(f"log file {path}: bad log_streams {num_streams!r}")
    first_lsn = envelope["first_lsn"]
    claimed_flushed = envelope["flushed_lsn"]
    loaded: List[LogRecord] = []
    cut_lsn = None  # keep only LSNs strictly below this, if set
    for stream_env in envelope["streams"]:
        stream_id = stream_env["stream_id"]
        if not 0 <= stream_id < num_streams:
            raise LogError(f"log file {path}: bad stream id {stream_id!r}")
        last_good = None
        for spec in stream_env["records"]:
            try:
                record = record_from_spec(spec)
            except (LogError, KeyError, TypeError, ValueError):
                if not repair_tail:
                    raise
                # This stream is untrustworthy from here on; the cut
                # falls just above its last good record (the corrupt
                # record's own LSN may itself be unreadable).
                poison = first_lsn if last_good is None else last_good + 1
                if cut_lsn is None or poison < cut_lsn:
                    cut_lsn = poison
                break
            record.stream_id = stream_id
            loaded.append(record)
            last_good = record.lsn
    if cut_lsn is not None:
        loaded = [r for r in loaded if r.lsn < cut_lsn]
    loaded.sort(key=lambda r: r.lsn)
    kept: List[LogRecord] = []
    for i, record in enumerate(loaded):
        if record.lsn != first_lsn + i:
            if repair_tail:
                break  # first gap/duplicate: everything above is suspect
            raise LogError(
                f"log file out of sequence at LSN {record.lsn} "
                f"(expected {first_lsn + i})"
            )
        kept.append(record)
    log = MultiLogManager(streams=num_streams, auto_force=True)
    log._first_lsn = first_lsn  # noqa: SLF001
    for record in kept:
        stream = log.streams[record.stream_id]
        record.stream_seq = len(stream.records) + 1
        stream.records.append(record)
        stream.lsns.append(record.lsn)
        stream.flushed_count = len(stream.records)
        log._records.append(record)  # noqa: SLF001
        log.stats.add(record)
    log._flushed_lsn = log.end_lsn  # noqa: SLF001
    log._lsn_seq = itertools.count(log.end_lsn + 1)  # noqa: SLF001
    log.tail_repair_dropped = max(0, claimed_flushed - log.end_lsn)
    return log
