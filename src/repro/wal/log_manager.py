"""The log manager: append-only record stream with a force point.

Responsibilities:

* assign LSNs (monotone from 1);
* track ``flushed_lsn`` — the stable prefix of the log.  A record is only
  durable (survives a crash) once forced; the WAL rule requires a page's
  last-update record to be forced before the page reaches S
  (:meth:`assert_wal` is called by the cache manager before each flush);
* expose ordered scans from any LSN for recovery and statistics used by
  the benchmarks (record counts / byte volumes by flag and kind).

For simplicity transactions are not modelled as explicit begin/commit
records: the paper's protocol is entirely about operation installation
and redo, and every logged operation is treated as committed.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.errors import LogTruncatedError, WALViolationError
from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import LOG_FORCE
from repro.obs.tracer import NULL_TRACER
from repro.ops.base import Operation
from repro.wal.records import LogRecord, RecordFlag

# Cached late import (see LogManager._checksum).
_record_checksum = None


class LogManager:
    def __init__(self, auto_force: bool = True):
        self._records: List[LogRecord] = []
        # LSN of the first retained record; physical truncation advances
        # this (LSN addressing is stable across truncation).
        self._first_lsn: LSN = 1
        self._flushed_lsn: LSN = NULL_LSN
        # When True every append is immediately forced, modelling a system
        # that forces the log aggressively; tests set False to exercise the
        # WAL rule and crash-durability boundary.
        self.auto_force = auto_force
        self._append_listeners: List[Callable[[LogRecord], None]] = []
        # Optional FaultPlane (see repro.sim.faults) consulted before the
        # mutating part of append/force, so a failed call can be retried.
        self.faults = None
        # Tracer (repro.obs): explicit forces emit log_force events.
        self.tracer = NULL_TRACER
        # Records dropped when a damaged tail was truncated (repair_tail
        # here, or load_log(repair_tail=True) for shipped log files).
        self.tail_repair_dropped = 0

    # --------------------------------------------------------------- appends

    def append(
        self,
        op: Operation,
        flags: RecordFlag = RecordFlag.NONE,
        source: str = "",
    ) -> LogRecord:
        if self.faults is not None:
            from repro.sim.faults import IOPoint

            self.faults.check(IOPoint.LOG_APPEND, corrupt=self._bitrot)
        lsn = self._first_lsn + len(self._records)
        record = LogRecord(lsn, op, flags, source)
        self._records.append(record)
        if self.auto_force:
            self._flushed_lsn = lsn
        if self._append_listeners:
            for listener in self._append_listeners:
                listener(record)
        return record

    def on_append(self, listener: Callable[[LogRecord], None]) -> None:
        """Register a callback invoked after every append (metrics hooks)."""
        self._append_listeners.append(listener)

    def force(self, up_to: Optional[LSN] = None) -> None:
        """Force the log to stable storage up to ``up_to`` (default: all)."""
        end = self.end_lsn if up_to is None else min(up_to, self.end_lsn)
        if end > self._flushed_lsn:
            if self.faults is not None:
                from repro.sim.faults import IOPoint

                self.faults.check(IOPoint.LOG_FORCE, corrupt=self._bitrot)
            if self.tracer.enabled:
                self.tracer.emit(
                    LOG_FORCE, lsn=end, from_lsn=self._flushed_lsn
                )
            self._flushed_lsn = end

    # ------------------------------------------------------------- integrity

    @staticmethod
    def _checksum(record: LogRecord) -> int:
        # Late import: repro.wal.serialize imports this module at top
        # level, so the checksum helper must be resolved lazily.
        global _record_checksum
        if _record_checksum is None:
            from repro.wal.serialize import record_checksum

            _record_checksum = record_checksum
        return _record_checksum(record)

    def verify_record(self, record: LogRecord) -> bool:
        """Does a record still match its integrity envelope?

        Envelopes are **lazy**: an in-memory append does not compute a
        CRC (``record.crc`` stays ``None``) — the envelope is stamped
        when the record is serialized to a shipped log file
        (:func:`repro.wal.serialize.record_to_spec`), which is the only
        boundary where bit rot can creep in undetected.  Records without
        an envelope are therefore trusted; records carrying one (loaded
        from a file, or rotted in place by the fault plane, which stamps
        a bogus CRC) are checked against it.
        """
        return record.crc is None or record.crc == self._checksum(record)

    def damaged_records(self) -> List[LSN]:
        """LSNs of retained records failing their integrity check."""
        return [r.lsn for r in self._records if not self.verify_record(r)]

    def repair_tail(self) -> int:
        """Truncate the log at the first corrupt record (torn-tail repair).

        Crash recovery calls this before analysis: the first record
        whose integrity envelope no longer matches marks the end of the
        trustworthy log, and it plus everything after it is discarded.
        ``flushed_lsn`` is pulled back accordingly.  Returns the number
        of records dropped (also accumulated on
        ``tail_repair_dropped``).
        """
        cut = None
        for i, record in enumerate(self._records):
            if not self.verify_record(record):
                cut = i
                break
        if cut is None:
            return 0
        dropped = len(self._records) - cut
        del self._records[cut:]
        if self._flushed_lsn > self.end_lsn:
            self._flushed_lsn = self.end_lsn
        self.tail_repair_dropped += dropped
        return dropped

    def _bitrot(self, rng) -> bool:
        """Silently rot one log record (fault-plane corruptor).

        Flips one bit of the *last* record's stored envelope — tail rot,
        the damage torn-tail repair is built for.  Returns ``False``
        when the log is empty (the fault stays armed).
        """
        if not self._records:
            return False
        record = self._records[-1]
        if record.crc is None:
            record.crc = 0
        record.crc ^= 1 << rng.randrange(32)
        return True

    def discard_unflushed(self) -> int:
        """Crash simulation: drop the volatile log tail.

        Records beyond ``flushed_lsn`` never reached stable storage, so a
        crash loses them.  Returns the number of records lost.
        """
        lost = self.end_lsn - self._flushed_lsn
        if lost > 0:
            del self._records[self._flushed_lsn - self._first_lsn + 1:]
        return max(lost, 0)

    # ---------------------------------------------------------------- status

    @property
    def end_lsn(self) -> LSN:
        """LSN of the last appended record (first_lsn - 1 when empty)."""
        return self._first_lsn - 1 + len(self._records)

    @property
    def next_lsn(self) -> LSN:
        return self.end_lsn + 1

    @property
    def first_retained_lsn(self) -> LSN:
        """Oldest LSN still on the log (after physical truncation)."""
        return self._first_lsn

    @property
    def flushed_lsn(self) -> LSN:
        return self._flushed_lsn

    def assert_wal(self, page_id: PageId, page_lsn: LSN) -> None:
        """Enforce the write-ahead rule for a page about to be flushed."""
        if page_lsn > self._flushed_lsn:
            raise WALViolationError(
                f"flushing {page_id!r} with page_lsn {page_lsn} but log is "
                f"only stable to {self._flushed_lsn}"
            )

    # ----------------------------------------------------------------- scans

    def record_at(self, lsn: LSN) -> LogRecord:
        if not self._first_lsn <= lsn <= self.end_lsn:
            raise LogTruncatedError(f"no record at LSN {lsn}")
        return self._records[lsn - self._first_lsn]

    def scan(self, from_lsn: LSN = 1, to_lsn: Optional[LSN] = None) -> Iterator[LogRecord]:
        """Records with ``from_lsn <= lsn <= to_lsn`` in LSN order.

        Raises :class:`LogTruncatedError` if the requested range starts
        before the physically retained prefix — recovery asking for a
        truncated record is a hard error, never silence.
        """
        start = max(from_lsn, 1)
        end = self.end_lsn if to_lsn is None else min(to_lsn, self.end_lsn)
        if start < self._first_lsn and start <= end:
            raise LogTruncatedError(
                f"scan from LSN {start} but log is truncated before "
                f"{self._first_lsn}"
            )
        for i in range(start - self._first_lsn, end - self._first_lsn + 1):
            yield self._records[i]

    def durable_scan(self, from_lsn: LSN = 1) -> Iterator[LogRecord]:
        """Only the records that survived a crash (forced prefix)."""
        return self.scan(from_lsn, self._flushed_lsn)

    def truncate_prefix(self, up_to_lsn: LSN) -> int:
        """Physically discard records with LSN < ``up_to_lsn``.

        The caller is responsible for choosing a safe point: crash
        recovery needs the tracker's truncation point, media recovery
        needs every retained backup's scan start (see
        :class:`repro.core.retention.LogRetention`).  Returns the number
        of records discarded.
        """
        if up_to_lsn <= self._first_lsn:
            return 0
        cut = min(up_to_lsn, self.end_lsn + 1)
        discarded = cut - self._first_lsn
        del self._records[:discarded]
        self._first_lsn = cut
        if self._flushed_lsn < self._first_lsn - 1:
            self._flushed_lsn = self._first_lsn - 1
        return discarded

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------ statistics

    def count(
        self,
        from_lsn: LSN = 1,
        to_lsn: Optional[LSN] = None,
        predicate: Optional[Callable[[LogRecord], bool]] = None,
    ) -> int:
        return sum(
            1
            for r in self.scan(from_lsn, to_lsn)
            if predicate is None or predicate(r)
        )

    def bytes_logged(
        self,
        from_lsn: LSN = 1,
        to_lsn: Optional[LSN] = None,
        predicate: Optional[Callable[[LogRecord], bool]] = None,
    ) -> int:
        return sum(
            r.size_bytes
            for r in self.scan(from_lsn, to_lsn)
            if predicate is None or predicate(r)
        )

    def iwof_count(self, from_lsn: LSN = 1) -> int:
        return self.count(from_lsn, predicate=lambda r: r.is_iwof)
