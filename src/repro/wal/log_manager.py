"""The log manager: append-only record stream with a force point.

Responsibilities:

* assign LSNs (monotone from 1);
* track ``flushed_lsn`` — the stable prefix of the log.  A record is only
  durable (survives a crash) once forced; the WAL rule requires a page's
  last-update record to be forced before the page reaches S
  (:meth:`assert_wal` is called by the cache manager before each flush);
* expose ordered scans from any LSN for recovery and statistics used by
  the benchmarks (record counts / byte volumes by flag and kind).

Statistics (``count`` / ``bytes_logged`` / ``iwof_count``) are served
from incremental per-flag / per-kind counters (:class:`LogStats`)
maintained at append and adjusted by truncation, tail repair and crash
discards — whole-log queries are O(1) instead of a rescan.

Recovery consumes the log through :meth:`merge_scan` /
:meth:`durable_merge_scan`: on this single-stream manager they are the
plain ordered scans, on :class:`~repro.wal.multi_log.MultiLogManager`
they are a k-way ordered merge across the physical streams.  Writing
recovery against the merge surface is what lets the striped log slot in
underneath unchanged.

For simplicity transactions are not modelled as explicit begin/commit
records: the paper's protocol is entirely about operation installation
and redo, and every logged operation is treated as committed.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import LogTruncatedError, WALViolationError
from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import LOG_FORCE, LOG_TAIL_LOST, LOG_TAIL_REPAIR
from repro.obs.tracer import NULL_TRACER
from repro.ops.base import Operation
from repro.wal.records import LogRecord, RecordFlag

# Cached late import (see LogManager._checksum).
_record_checksum = None


class LogStats:
    """Incremental record/byte counters for one log.

    Maintained by the owning log manager at append time and *decremented*
    when records leave the log (prefix truncation, torn-tail repair,
    crash discards), so whole-log statistics never rescan the record
    list.  ``by_kind`` / ``bytes_by_kind`` are keyed by
    ``OperationKind.value``.
    """

    __slots__ = ("records", "bytes", "iwof_records", "iwof_bytes",
                 "cm_injected", "by_kind", "bytes_by_kind")

    def __init__(self):
        self.records = 0
        self.bytes = 0
        self.iwof_records = 0
        self.iwof_bytes = 0
        self.cm_injected = 0
        self.by_kind: Dict[str, int] = {}
        self.bytes_by_kind: Dict[str, int] = {}

    def add(self, record: LogRecord) -> None:
        size = record.size_bytes
        self.records += 1
        self.bytes += size
        if record.is_iwof:
            self.iwof_records += 1
            self.iwof_bytes += size
        if record.is_cm_injected:
            self.cm_injected += 1
        kind = record.kind.value
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size

    def remove(self, record: LogRecord) -> None:
        size = record.size_bytes
        self.records -= 1
        self.bytes -= size
        if record.is_iwof:
            self.iwof_records -= 1
            self.iwof_bytes -= size
        if record.is_cm_injected:
            self.cm_injected -= 1
        kind = record.kind.value
        self.by_kind[kind] = self.by_kind.get(kind, 0) - 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) - size

    def remove_all(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.remove(record)

    def snapshot(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "bytes": self.bytes,
            "iwof_records": self.iwof_records,
            "iwof_bytes": self.iwof_bytes,
            "cm_injected": self.cm_injected,
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
        }


class LogManager:
    #: Number of physical streams behind this manager (overridden by
    #: :class:`~repro.wal.multi_log.MultiLogManager`).
    num_streams = 1

    def __init__(self, auto_force: bool = True):
        self._records: List[LogRecord] = []
        # LSN of the first retained record; physical truncation advances
        # this (LSN addressing is stable across truncation).
        self._first_lsn: LSN = 1
        self._flushed_lsn: LSN = NULL_LSN
        # When True every append is immediately forced, modelling a system
        # that forces the log aggressively; tests set False to exercise the
        # WAL rule and crash-durability boundary.
        self.auto_force = auto_force
        self._append_listeners: List[Callable[[LogRecord], None]] = []
        # Optional FaultPlane (see repro.sim.faults) consulted before the
        # mutating part of append/force, so a failed call can be retried.
        self.faults = None
        # Optional LogDevice (repro.storage.api): the durability surface
        # behind the buffer.  Appends are handed to it record by record;
        # ``force`` calls its ``sync()`` so the pending suffix becomes
        # durable with a real fsync.  None = buffer-only (memory backend).
        self.device = None
        # Tracer (repro.obs): explicit forces emit log_force events.
        self.tracer = NULL_TRACER
        # Records dropped when a damaged tail was truncated (repair_tail
        # here, or load_log(repair_tail=True) for shipped log files).
        self.tail_repair_dropped = 0
        # Simulated cost of one durability event (fsync-equivalent).
        # Zero by default; the append/force benchmarks set it so the
        # one-force-per-caller pattern pays a per-call device latency.
        self.force_delay_s = 0.0
        # Incremental statistics; see LogStats.
        self.stats = LogStats()

    # --------------------------------------------------------------- appends

    def append(
        self,
        op: Operation,
        flags: RecordFlag = RecordFlag.NONE,
        source: str = "",
    ) -> LogRecord:
        if self.faults is not None:
            from repro.sim.faults import IOPoint

            self.faults.check(IOPoint.LOG_APPEND, corrupt=self._bitrot)
        lsn = self._first_lsn + len(self._records)
        record = LogRecord(lsn, op, flags, source)
        record.stream_seq = lsn
        self._records.append(record)
        self.stats.add(record)
        device = self.device
        if device is not None:
            device.append(0, record)
        if self.auto_force:
            self._flushed_lsn = lsn
            if device is not None:
                device.sync()
        if self._append_listeners:
            for listener in self._append_listeners:
                listener(record)
        return record

    def on_append(self, listener: Callable[[LogRecord], None]) -> None:
        """Register a callback invoked after every append (metrics hooks)."""
        self._append_listeners.append(listener)

    def attach_faults(self, plane):
        """Attach a fault plane at the log protocol boundary."""
        self.faults = plane
        return plane

    def attach_device(self, device):
        """Attach a :class:`~repro.storage.api.LogDevice` behind the buffer."""
        self.device = device
        return device

    def force(self, up_to: Optional[LSN] = None) -> None:
        """Force the log to stable storage up to ``up_to`` (default: all).

        Each call is its own durability event: with a nonzero
        ``force_delay_s`` every caller that actually advances the stable
        prefix pays one full device sync.  The group-commit path that
        coalesces concurrent callers behind a single tick lives on
        :class:`~repro.wal.multi_log.MultiLogManager`.
        """
        end = self.end_lsn if up_to is None else min(up_to, self.end_lsn)
        if end > self._flushed_lsn:
            if self.faults is not None:
                from repro.sim.faults import IOPoint

                self.faults.check(IOPoint.LOG_FORCE, corrupt=self._bitrot)
            if self.force_delay_s:
                time.sleep(self.force_delay_s)
            if self.device is not None:
                self.device.sync()
            if self.tracer.enabled:
                self.tracer.emit(
                    LOG_FORCE, lsn=end, from_lsn=self._flushed_lsn, batch=1
                )
            self._flushed_lsn = end

    # ------------------------------------------------------------- integrity

    @staticmethod
    def _checksum(record: LogRecord) -> int:
        # Late import: repro.wal.serialize imports this module at top
        # level, so the checksum helper must be resolved lazily.
        global _record_checksum
        if _record_checksum is None:
            from repro.wal.serialize import record_checksum

            _record_checksum = record_checksum
        return _record_checksum(record)

    def verify_record(self, record: LogRecord) -> bool:
        """Does a record still match its integrity envelope?

        Envelopes are **lazy**: an in-memory append does not compute a
        CRC (``record.crc`` stays ``None``) — the envelope is stamped
        when the record is serialized to a shipped log file
        (:func:`repro.wal.serialize.record_to_spec`), which is the only
        boundary where bit rot can creep in undetected.  Records without
        an envelope are therefore trusted; records carrying one (loaded
        from a file, or rotted in place by the fault plane, which stamps
        a bogus CRC) are checked against it.
        """
        return record.crc is None or record.crc == self._checksum(record)

    def damaged_records(self) -> List[LSN]:
        """LSNs of retained records failing their integrity check."""
        return [r.lsn for r in self._records if not self.verify_record(r)]

    def _emit_tail_repair(self, dropped: int) -> None:
        if dropped and self.tracer.enabled:
            self.tracer.emit(
                LOG_TAIL_REPAIR, dropped=dropped, cut_lsn=self.end_lsn + 1,
                end_lsn=self.end_lsn,
            )

    def _emit_tail_lost(self, dropped: int, per_stream=None) -> None:
        if dropped and self.tracer.enabled:
            fields = dict(dropped=dropped, cut_lsn=self.end_lsn + 1,
                          end_lsn=self.end_lsn)
            if per_stream is not None:
                fields["per_stream"] = per_stream
            self.tracer.emit(LOG_TAIL_LOST, **fields)

    def repair_tail(self) -> int:
        """Truncate the log at the first corrupt record (torn-tail repair).

        Crash recovery calls this before analysis: the first record
        whose integrity envelope no longer matches marks the end of the
        trustworthy log, and it plus everything after it is discarded.
        ``flushed_lsn`` is pulled back accordingly.  Returns the number
        of records dropped (also accumulated on
        ``tail_repair_dropped``), and emits a structured
        ``log_tail_repair`` trace event carrying the dropped count and
        cut LSN so faultsweep trace replays show where the tail was cut.
        """
        cut = None
        for i, record in enumerate(self._records):
            if not self.verify_record(record):
                cut = i
                break
        if cut is None:
            return 0
        dropped = len(self._records) - cut
        self.stats.remove_all(self._records[cut:])
        del self._records[cut:]
        if self._flushed_lsn > self.end_lsn:
            self._flushed_lsn = self.end_lsn
        self.tail_repair_dropped += dropped
        self._emit_tail_repair(dropped)
        return dropped

    def _bitrot(self, rng) -> bool:
        """Silently rot one log record (fault-plane corruptor).

        Flips one bit of the *last* record's stored envelope — tail rot,
        the damage torn-tail repair is built for.  Returns ``False``
        when the log is empty (the fault stays armed).
        """
        if not self._records:
            return False
        record = self._records[-1]
        if record.crc is None:
            record.crc = 0
        record.crc ^= 1 << rng.randrange(32)
        return True

    def discard_unflushed(self) -> int:
        """Crash simulation: drop the volatile log tail.

        Records beyond ``flushed_lsn`` never reached stable storage, so a
        crash loses them.  Returns the number of records lost; emits a
        structured ``log_tail_lost`` trace event with the dropped count
        and cut LSN.
        """
        lost = self.end_lsn - self._flushed_lsn
        if lost > 0:
            cut = self._flushed_lsn - self._first_lsn + 1
            self.stats.remove_all(self._records[cut:])
            del self._records[cut:]
            if self.device is not None:
                # The volatile device buffer is lost with the process.
                self.device.drop_pending()
            self._emit_tail_lost(lost)
        return max(lost, 0)

    # ---------------------------------------------------------------- status

    @property
    def end_lsn(self) -> LSN:
        """LSN of the last appended record (first_lsn - 1 when empty)."""
        return self._first_lsn - 1 + len(self._records)

    @property
    def next_lsn(self) -> LSN:
        return self.end_lsn + 1

    @property
    def first_retained_lsn(self) -> LSN:
        """Oldest LSN still on the log (after physical truncation)."""
        return self._first_lsn

    @property
    def flushed_lsn(self) -> LSN:
        return self._flushed_lsn

    def assert_wal(self, page_id: PageId, page_lsn: LSN) -> None:
        """Enforce the write-ahead rule for a page about to be flushed."""
        if page_lsn > self._flushed_lsn:
            raise WALViolationError(
                f"flushing {page_id!r} with page_lsn {page_lsn} but log is "
                f"only stable to {self._flushed_lsn}"
            )

    # ----------------------------------------------------------------- scans

    def record_at(self, lsn: LSN) -> LogRecord:
        if not self._first_lsn <= lsn <= self.end_lsn:
            raise LogTruncatedError(f"no record at LSN {lsn}")
        return self._records[lsn - self._first_lsn]

    def scan(self, from_lsn: LSN = 1, to_lsn: Optional[LSN] = None) -> Iterator[LogRecord]:
        """Records with ``from_lsn <= lsn <= to_lsn`` in LSN order.

        Raises :class:`LogTruncatedError` if the requested range starts
        before the physically retained prefix — recovery asking for a
        truncated record is a hard error, never silence.
        """
        start = max(from_lsn, 1)
        end = self.end_lsn if to_lsn is None else min(to_lsn, self.end_lsn)
        if start < self._first_lsn and start <= end:
            raise LogTruncatedError(
                f"scan from LSN {start} but log is truncated before "
                f"{self._first_lsn}"
            )
        for i in range(start - self._first_lsn, end - self._first_lsn + 1):
            yield self._records[i]

    def durable_scan(self, from_lsn: LSN = 1) -> Iterator[LogRecord]:
        """Only the records that survived a crash (forced prefix)."""
        return self.scan(from_lsn, self._flushed_lsn)

    def merge_scan(
        self, from_lsn: LSN = 1, to_lsn: Optional[LSN] = None
    ) -> Iterator[LogRecord]:
        """Records in recovered total order (the redo/replay surface).

        On a single-stream log the recovered total order *is* the
        append order, so this is :meth:`scan`; the multi-stream manager
        overrides it with a k-way ordered merge across its physical
        streams.  All recovery paths (crash, media, analysis, selective
        redo, standby shipping) consume the log through this method.
        """
        return self.scan(from_lsn, to_lsn)

    def durable_merge_scan(self, from_lsn: LSN = 1) -> Iterator[LogRecord]:
        """The durable prefix of :meth:`merge_scan`."""
        return self.merge_scan(from_lsn, self._flushed_lsn)

    def truncate_prefix(self, up_to_lsn: LSN) -> int:
        """Physically discard records with LSN < ``up_to_lsn``.

        The caller is responsible for choosing a safe point: crash
        recovery needs the tracker's truncation point, media recovery
        needs every retained backup's scan start (see
        :class:`repro.core.retention.LogRetention`).  Returns the number
        of records discarded.
        """
        if up_to_lsn <= self._first_lsn:
            return 0
        cut = min(up_to_lsn, self.end_lsn + 1)
        discarded = cut - self._first_lsn
        self.stats.remove_all(self._records[:discarded])
        del self._records[:discarded]
        self._first_lsn = cut
        if self._flushed_lsn < self._first_lsn - 1:
            self._flushed_lsn = self._first_lsn - 1
        return discarded

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------ statistics

    def count(
        self,
        from_lsn: LSN = 1,
        to_lsn: Optional[LSN] = None,
        predicate: Optional[Callable[[LogRecord], bool]] = None,
    ) -> int:
        if (
            predicate is None
            and from_lsn <= self._first_lsn
            and (to_lsn is None or to_lsn >= self.end_lsn)
        ):
            return self.stats.records  # O(1): whole retained log
        return sum(
            1
            for r in self.merge_scan(from_lsn, to_lsn)
            if predicate is None or predicate(r)
        )

    def bytes_logged(
        self,
        from_lsn: LSN = 1,
        to_lsn: Optional[LSN] = None,
        predicate: Optional[Callable[[LogRecord], bool]] = None,
    ) -> int:
        if (
            predicate is None
            and from_lsn <= self._first_lsn
            and (to_lsn is None or to_lsn >= self.end_lsn)
        ):
            return self.stats.bytes  # O(1): whole retained log
        return sum(
            r.size_bytes
            for r in self.merge_scan(from_lsn, to_lsn)
            if predicate is None or predicate(r)
        )

    def iwof_count(self, from_lsn: LSN = 1) -> int:
        if from_lsn <= self._first_lsn:
            return self.stats.iwof_records
        return self.count(from_lsn, predicate=lambda r: r.is_iwof)

    def iwof_bytes(self, from_lsn: LSN = 1) -> int:
        if from_lsn <= self._first_lsn:
            return self.stats.iwof_bytes
        return self.bytes_logged(from_lsn, predicate=lambda r: r.is_iwof)
