"""Checkpoint records and the recovery scan-start protocol.

The facade's ``stable_truncation_point`` is a convenience; a real system
derives the crash-recovery scan start from the last **checkpoint
record**: a logged snapshot of the dirty-page table (page → recLSN).
This module supplies that realism:

* :class:`CheckpointOp` — a no-op "operation" whose log record carries
  the dirty-page table and the minimum recLSN;
* :class:`CheckpointManager` — takes fuzzy checkpoints (no flushing
  required — the table is copied under no latch, exactly like the
  "fuzzy checkpoint" the paper's fuzzy dump is named after), and
  computes the crash scan start as
  ``min(checkpoint.min_rec_lsn, first LSN after the checkpoint)``.

Checkpoints interact with backup the same way flushes do not: they are
pure log records and never touch S or B.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from repro.ids import LSN, PageId
from repro.ops.base import (
    OBJECT_ID_BYTES,
    RECORD_HEADER_BYTES,
    Operation,
    OperationKind,
)
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, RecordFlag
from repro.wal.truncation import RecLSNTracker


class CheckpointOp(Operation):
    """A logged dirty-page-table snapshot; reads and writes nothing."""

    kind = OperationKind.PHYSICAL  # blind, value-carrying; never redone

    def __init__(self, dirty_table: Mapping[PageId, LSN]):
        self.dirty_table: Dict[PageId, LSN] = dict(dirty_table)

    @property
    def readset(self) -> FrozenSet[PageId]:
        return frozenset()

    @property
    def writeset(self) -> FrozenSet[PageId]:
        return frozenset()

    def compute(self, reads):
        return {}

    @property
    def min_rec_lsn(self) -> Optional[LSN]:
        if not self.dirty_table:
            return None
        return min(self.dirty_table.values())

    def log_record_size(self) -> int:
        return RECORD_HEADER_BYTES + (OBJECT_ID_BYTES + 8) * len(
            self.dirty_table
        )

    def __repr__(self):
        return f"Checkpoint(dirty={len(self.dirty_table)})"


class CheckpointManager:
    """Takes checkpoints and answers the crash scan-start question.

    ``tracker`` may be a :class:`RecLSNTracker` or a zero-argument
    callable returning the current one — the cache manager replaces its
    tracker on crash, so long-lived owners pass a provider.
    """

    def __init__(self, log: LogManager, tracker):
        self._log = log
        self._tracker_source = tracker
        self.last_checkpoint: Optional[LogRecord] = None

    @property
    def _tracker(self) -> RecLSNTracker:
        source = self._tracker_source
        return source() if callable(source) else source

    def take_checkpoint(self) -> LogRecord:
        """Log a fuzzy checkpoint of the current dirty-page table."""
        table = {
            page: self._tracker.rec_lsn(page)
            for page in self._tracker.dirty_pages()
        }
        from repro.sim.faults import with_retries

        record = with_retries(
            lambda: self._log.append(CheckpointOp(table),
                                     RecordFlag.CM_INJECTED)
        )
        with_retries(self._log.force)
        self.last_checkpoint = record
        return record

    def crash_scan_start(self) -> LSN:
        """Where a post-crash redo scan must begin.

        With no checkpoint, scan from LSN 1.  With one, scan from the
        oldest recLSN it recorded, or just after the checkpoint itself
        when nothing was dirty.
        """
        checkpoint = self.last_checkpoint
        if checkpoint is None:
            return 1
        op: CheckpointOp = checkpoint.op  # type: ignore[assignment]
        minimum = op.min_rec_lsn
        if minimum is None:
            return checkpoint.lsn + 1
        return min(minimum, checkpoint.lsn + 1)

    @staticmethod
    def find_last_checkpoint(log: LogManager) -> Optional[LogRecord]:
        """Scan backwards for the most recent checkpoint record.

        What real recovery does when the 'master record' pointing at the
        last checkpoint is itself part of the log stream.
        """
        last = None
        for record in log.durable_merge_scan():
            if isinstance(record.op, CheckpointOp):
                last = record
        return last
