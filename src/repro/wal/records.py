"""Log records.

A record wraps one :class:`~repro.ops.base.Operation` with its LSN and
bookkeeping flags.  Because this is a simulation the operation object is
stored directly; ``size_bytes`` reports what the record *would* occupy on
a real log, using the operation's cost model — the quantity the paper's
logging-economy arguments are about.
"""

from __future__ import annotations

import enum

from repro.ids import LSN
from repro.ops.base import Operation, OperationKind


class RecordFlag(enum.Flag):
    NONE = 0
    # Injected by the cache manager (identity writes), not by a transaction.
    CM_INJECTED = enum.auto()
    # Identity write issued specifically to keep an in-progress backup
    # recoverable (the Iw/oF extra logging the paper quantifies).
    IWOF = enum.auto()


class LogRecord:
    """One log record; slotted, one is built per executed operation."""

    __slots__ = ("lsn", "op", "flags", "source", "crc", "stream_id",
                 "stream_seq")

    def __init__(
        self,
        lsn: LSN,
        op: Operation,
        flags: RecordFlag = RecordFlag.NONE,
        source: str = "",
        crc=None,
        stream_id: int = 0,
        stream_seq: int = 0,
    ):
        self.lsn = lsn
        self.op = op
        self.flags = flags
        # Who logged this operation (transaction / application name); used
        # by selective redo (§6.3) to identify a corrupting source.
        self.source = source
        # CRC32 integrity envelope stamped by LogManager.append (see
        # repro.wal.serialize.record_checksum); None for records built
        # outside the manager (tests, ad-hoc construction).
        self.crc = crc
        # Multi-stream addressing (repro.wal.multi_log): which physical
        # stream holds this record and its dense per-stream sequence
        # number.  A single-stream log leaves both at 0.
        self.stream_id = stream_id
        self.stream_seq = stream_seq

    @property
    def is_cm_injected(self) -> bool:
        return bool(self.flags & RecordFlag.CM_INJECTED)

    @property
    def is_iwof(self) -> bool:
        return bool(self.flags & RecordFlag.IWOF)

    @property
    def size_bytes(self) -> int:
        return self.op.log_record_size()

    @property
    def kind(self) -> OperationKind:
        return self.op.kind

    def __repr__(self):
        tag = "*" if self.is_iwof else ""
        return f"<LSN {self.lsn}{tag}: {self.op!r}>"
