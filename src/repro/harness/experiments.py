"""Experiment drivers: one function per figure/ablation of DESIGN.md.

Each driver is deterministic given its seed(s) and returns plain data
structures; the ``benchmarks/`` suite times them and prints the paper-
style tables, the integration tests assert the expected *shape* (who
wins, by what rough factor, where the crossovers are).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.btree import BTree
from repro.core import analysis
from repro.core.progress import PartitionProgress
from repro.core.policy import TreeOpsPolicy
from repro.core.tree_meta import TreeMeta
from repro.core.config import BackupConfig
from repro.db import Database
from repro.appfs import ApplicationManager
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec
from repro.sim.runner import InterleavedRun
from repro.workloads import fresh_copy_workload


# ---------------------------------------------------------------------------
# FIG5 — extra-logging probability vs number of backup steps.
# ---------------------------------------------------------------------------


@dataclass
class Fig5Point:
    steps: int
    kind: str  # "general" | "tree"
    measured: float
    analytic: float
    samples: int


def fig5_measure(
    kind: str,
    steps: int,
    pages: int = 1024,
    seed: int = 1,
    ops_per_tick: int = 3,
    installs_per_tick: int = 3,
    backup_pages_per_tick: int = 4,
) -> Fig5Point:
    """Measure the Iw/oF fraction for one (kind, steps) configuration."""
    policy = "tree" if kind == "tree" else "general"
    db = Database(pages_per_partition=[pages], policy=policy)
    workload = fresh_copy_workload(
        db.layout,
        seed=seed,
        count=None,
        tree_ops=(kind == "tree"),
        is_clean=lambda p: not db.cm.is_dirty(p),
    )
    run = InterleavedRun(
        db,
        workload,
        seed=seed,
        ops_per_tick=ops_per_tick,
        installs_per_tick=installs_per_tick,
        backup_pages_per_tick=backup_pages_per_tick,
        backup_steps=steps,
    )
    result = run.run(max_ticks=20_000)
    if result.backup is None:
        raise RuntimeError("fig5 run did not complete its backup")
    analytic = (
        analysis.general_extra_logging(steps)
        if kind == "general"
        else analysis.tree_extra_logging(steps)
    )
    return Fig5Point(
        steps=steps,
        kind=kind,
        measured=db.metrics.extra_logging_fraction,
        analytic=analytic,
        samples=db.metrics.flush_decisions_during_backup,
    )


def fig5_sweep(
    step_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    seeds: Tuple[int, ...] = (1, 2, 3),
    pages: int = 1024,
) -> List[Fig5Point]:
    """The full Figure 5 sweep, averaging measurements across seeds."""
    points: List[Fig5Point] = []
    for kind in ("general", "tree"):
        for steps in step_counts:
            measured, samples = 0.0, 0
            for seed in seeds:
                point = fig5_measure(kind, steps, pages=pages, seed=seed)
                measured += point.measured
                samples += point.samples
            points.append(
                Fig5Point(
                    steps=steps,
                    kind=kind,
                    measured=measured / len(seeds),
                    analytic=point.analytic,
                    samples=samples,
                )
            )
    return points


# ---------------------------------------------------------------------------
# FIG4 — the (#X, #S(X)) regions requiring Iw/oF.
# ---------------------------------------------------------------------------


def fig4_analytic_region(
    x_pos: int, succ_pos: int, done: int, pending: int
) -> bool:
    """The paper's shaded region: does flushing X at ``x_pos`` with a
    single successor at ``succ_pos`` need Iw/oF?  (Figure 4.)"""
    pend_x = x_pos >= pending
    done_s = succ_pos < done
    doubt_x = done <= x_pos < pending
    doubt_s = done <= succ_pos < pending
    if pend_x or done_s:
        return False
    if doubt_x and doubt_s and succ_pos < x_pos:
        return False  # the † property holds
    return True


def fig4_grid(
    size: int = 24, done: int = 8, pending: int = 16
) -> Dict[str, List[List[bool]]]:
    """Policy decisions vs the analytic region over the full grid.

    Returns two size×size boolean grids indexed [x_pos][succ_pos]:
    ``policy`` (what TreeOpsPolicy decides) and ``analytic`` (Figure 4).
    """
    progress = PartitionProgress(0, size)
    progress.begin(pending)
    progress.done = done  # directly position the frontier for the grid
    policy = TreeOpsPolicy()
    policy_grid: List[List[bool]] = []
    analytic_grid: List[List[bool]] = []
    for x_pos in range(size):
        policy_row, analytic_row = [], []
        for succ_pos in range(size):
            meta = TreeMeta(
                max_succ=succ_pos, violation=(x_pos < succ_pos)
            )
            decision = policy.decide(x_pos, progress, meta)
            policy_row.append(decision.needs_iwof)
            if succ_pos == x_pos:
                # A page is never its own successor; the diagonal is
                # outside the figure's domain — mirror the policy there.
                analytic_row.append(decision.needs_iwof)
            else:
                analytic_row.append(
                    fig4_analytic_region(x_pos, succ_pos, done, pending)
                )
        policy_grid.append(policy_row)
        analytic_grid.append(analytic_row)
    return {"policy": policy_grid, "analytic": analytic_grid}


# ---------------------------------------------------------------------------
# FIG1 — naive fuzzy dump vs the engine on the B-tree split scenario.
# ---------------------------------------------------------------------------


@dataclass
class Fig1Outcome:
    engine: str
    recovered: bool
    diffs: int
    moved_records_in_backup: bool


def fig1_scenario(engine_kind: str, pages: int = 32) -> Fig1Outcome:
    """The exact Figure 1 interleaving: new's location is copied before
    the split, old's after; flushes happen in write-graph order."""
    db = Database(pages_per_partition=[pages], policy="general")
    old, new = PageId(0, pages - 12), PageId(0, 2)
    records = tuple((k, f"v{k}") for k in range(10))
    db.execute(PhysicalWrite(old, records))
    db.checkpoint()

    if engine_kind == "naive":
        db.naive.start_backup()
        copy, finish = db.naive.copy_some, db.naive.run_to_completion
        latest = db.naive.latest_backup
    elif engine_kind == "engine":
        db.start_backup(BackupConfig(steps=4))
        copy, finish = db.backup_step, db.run_backup
        latest = db.latest_backup
    else:
        raise ValueError(f"unknown engine {engine_kind!r}")

    copy(5)  # frontier passes `new` but not `old`
    db.execute(MovRec(old, 4, new))
    db.execute(RmvRec(old, 4))
    db.checkpoint()  # flushes new then old (write-graph order)
    finish()

    backup = latest()
    moved = tuple(r for r in records if r[0] > 4)
    backup_new = backup.read_page(new)
    db.media_failure()
    outcome = db.media_recover(backup=backup)
    return Fig1Outcome(
        engine=engine_kind,
        recovered=outcome.ok,
        diffs=len(outcome.diffs),
        moved_records_in_backup=(
            backup_new is not None and backup_new.value == moved
        ),
    )


# ---------------------------------------------------------------------------
# T-ECON — logging economy: tree vs page-oriented split logging.
# ---------------------------------------------------------------------------


@dataclass
class EconomyRow:
    logging: str
    keys: int
    order: int
    splits: int
    split_bytes: int
    total_bytes: int


def logging_economy(
    keys: int = 1200, order: int = 64, seed: int = 11
) -> List[EconomyRow]:
    """Insert the same key sequence under both logging modes; compare the
    bytes attributable to split operations and the whole log."""
    rows = []
    for mode in ("tree", "page"):
        db = Database(pages_per_partition=[512], policy="page")
        tree = BTree(db, order=order, logging=mode).create()
        rng = random.Random(seed)
        key_list = list(range(keys))
        rng.shuffle(key_list)
        for key in key_list:
            tree.insert(key, ("payload", key, "x" * 16))
        splits = db.log.count(
            predicate=lambda r: "take_high" in getattr(r.op, "transform", "")
            or (r.op.kind.value == "physical" and _is_node_image(r.op))
        )
        split_bytes = db.log.bytes_logged(
            predicate=lambda r: _is_split_record(r)
        )
        rows.append(
            EconomyRow(
                logging=mode,
                keys=keys,
                order=order,
                splits=splits,
                split_bytes=split_bytes,
                total_bytes=db.log.bytes_logged(),
            )
        )
    return rows


def _is_node_image(op) -> bool:
    value = getattr(op, "value", None)
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] in ("leaf", "int")
        and bool(value[1])
    )


def _is_split_record(record) -> bool:
    op = record.op
    transform = getattr(op, "transform", "")
    if transform in ("btree_take_high", "btree_remove_high"):
        return True
    return op.kind.value == "physical" and _is_node_image(op)


# ---------------------------------------------------------------------------
# E-APP — section 6.2: application placement in the backup order.
# ---------------------------------------------------------------------------


@dataclass
class AppPlacementResult:
    at_end: bool
    iwof: int
    decisions: int
    recovered: bool


def app_read_experiment(
    at_end: bool, pages: int = 128, seed: int = 5, app_slots: int = 4
) -> AppPlacementResult:
    db = Database(pages_per_partition=[pages], policy="tree")
    manager = ApplicationManager(db, app_slots=app_slots, at_end=at_end)
    apps = [manager.launch(f"app{i}") and f"app{i}" for i in range(app_slots)]
    rng = random.Random(seed)
    data = [PageId(0, s) for s in range(10, pages // 2)]
    for page in data:
        db.execute(PhysiologicalWrite(page, "increment", (1,)))
    db.start_backup(BackupConfig(steps=8))
    while db.backup_in_progress():
        db.backup_step(2)
        for _ in range(2):
            app = rng.choice(apps)
            source = rng.choice(data)
            manager.read_into(app, source)
            db.execute(PhysiologicalWrite(source, "increment", (1,)))
        db.install_some(3, rng)
    db.media_failure()
    outcome = db.media_recover()
    return AppPlacementResult(
        at_end=at_end,
        iwof=db.metrics.iwof_during_backup,
        decisions=db.metrics.flush_decisions_during_backup,
        recovered=outcome.ok,
    )


# ---------------------------------------------------------------------------
# E-INC — incremental backup volume and recoverability.
# ---------------------------------------------------------------------------


@dataclass
class IncrementalResult:
    full_pages: int
    incremental_pages: int
    updated_fraction: float
    recovered: bool
    iwof_during_incremental: int


def incremental_experiment(
    pages: int = 256, update_fraction: float = 0.2, seed: int = 9
) -> IncrementalResult:
    db = Database(pages_per_partition=[pages], policy="general")
    rng = random.Random(seed)
    all_pages = [PageId(0, s) for s in range(pages)]
    for page in all_pages:
        db.execute(PhysicalWrite(page, ("base", page.slot)))
    db.checkpoint()
    db.start_backup(BackupConfig(steps=4))
    full = db.run_backup(BackupConfig(pages_per_tick=16))

    # Update a fraction, then take an incremental backup online.
    touched = rng.sample(all_pages, int(pages * update_fraction))
    for page in touched:
        db.execute(PhysiologicalWrite(page, "stamp", ("inc1",)))
    iwof_before = db.metrics.iwof_records
    db.start_backup(BackupConfig(steps=4, incremental=True))
    while db.backup_in_progress():
        db.backup_step(4)
        # Concurrent updates during the incremental sweep.
        page = rng.choice(all_pages)
        db.execute(PhysiologicalWrite(page, "stamp", ("during",)))
        db.install_some(2, rng)
    incremental = db.latest_backup()

    db.media_failure()
    outcome = db.media_recover_chain([full, incremental])
    return IncrementalResult(
        full_pages=full.copied_count(),
        incremental_pages=incremental.copied_count(),
        updated_fraction=update_fraction,
        recovered=outcome.ok,
        iwof_during_incremental=db.metrics.iwof_records - iwof_before,
    )


# ---------------------------------------------------------------------------
# A-LINK — linked-flush strawman cost.
# ---------------------------------------------------------------------------


@dataclass
class LinkedFlushResult:
    linked_forced_flushes: int
    linked_pages_copied: int
    engine_iwof_records: int
    engine_pages_copied: int
    both_recovered: bool


def linked_flush_experiment(
    pages: int = 256, ops: int = 400, seed: int = 13
) -> LinkedFlushResult:
    from repro.workloads import mixed_logical_workload

    def build():
        db = Database(pages_per_partition=[pages], policy="general")
        for op in mixed_logical_workload(db.layout, seed=seed, count=ops):
            db.execute(op)
        return db

    # Linked-flush baseline: forces the dirty set through the CM.
    db_linked = build()
    backup_linked = db_linked.linked.run()
    db_linked.media_failure()
    linked_ok = db_linked.media_recover(backup=backup_linked).ok

    # Asynchronous engine with concurrent updates.
    db_engine = build()
    rng = random.Random(seed)
    extra = mixed_logical_workload(db_engine.layout, seed=seed + 1, count=200)
    db_engine.start_backup(BackupConfig(steps=8))
    while db_engine.backup_in_progress():
        db_engine.backup_step(8)
        op = next(extra, None)
        if op is not None:
            db_engine.execute(op)
        db_engine.install_some(2, rng)
    db_engine.media_failure()
    engine_ok = db_engine.media_recover().ok

    return LinkedFlushResult(
        linked_forced_flushes=db_linked.linked.forced_flushes,
        linked_pages_copied=db_linked.linked.pages_copied,
        engine_iwof_records=db_engine.metrics.iwof_records,
        engine_pages_copied=db_engine.metrics.backup_pages_copied,
        both_recovered=linked_ok and engine_ok,
    )
