"""Experiment harness: drivers that regenerate every figure of the paper
plus the repo's ablations, and plain-text reporting helpers."""

from repro.harness.reporting import format_table, format_series
from repro.harness import experiments

__all__ = ["format_table", "format_series", "experiments"]
