"""The fault sweep: recoverability under storage-level fault injection.

``python -m repro faultsweep`` runs a deterministic scenario matrix over
the fault plane (:mod:`repro.sim.faults`) and reports, per scenario, how
many runs recovered to the oracle state.  The matrix covers every fault
class at every instrumented I/O boundary:

* **transient** — seeded transient ``IOError``\\ s at reads, writes, log
  appends and forces; the bounded retry machinery must absorb them and
  the run must still media-recover;
* **torn backup span** — a bulk backup sweep span lands only partially;
  the backup process must detect the tear, resume the remainder, and the
  finished backup must still support media recovery;
* **torn install** — a multi-page write-graph install lands only
  partially and the system halts; the doublewrite journal must roll the
  prefix back and crash recovery must reach the oracle state;
* **crash sweep** — the exhaustive mode: the same run is repeated with a
  crash injected at the 1st, (1+stride)th, … I/O operation, and crash
  recovery must succeed after *every* one;
* **seeded mix** — a random (but seed-deterministic) schedule of
  transient and torn faults across all points;
* **bit rot** — seeded silent bit flips landed in the stable database,
  the backup image, or the log tail; the integrity envelopes must detect
  the damage and recovery must heal it (older generation, log-driven
  rebuild) or quarantine it — never restore silently-wrong state.

Every scenario is run for the serial (page-at-a-time) and batched
(bulk-span) copy engines, and again for the thread-parallel engine (a
4-worker batched sweep over a four-partition layout).  The
``parallel-redo-*`` scenarios repeat the crash sweep and the
log-tail-rot runs with ``redo_workers=4``, so every recovery in them
replays through the dependency-aware parallel redo pool
(:mod:`repro.recovery.parallel_redo`) and must still reach the exact
serial-replay state.  All randomness
derives from the single ``seed`` argument, so the serial and batched
sweeps are exactly reproducible; in the parallel mode the *set* of
I/O events is deterministic but their global order depends on thread
scheduling, so a seeded fault may land on a different read between
runs — recoverability must hold for every interleaving, which is
precisely what the mode is there to check.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import CorruptPageError, SimulatedCrash
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint
from repro.sim.failure import FailureInjector, crash_sweep_plans
from repro.workloads import mixed_logical_workload


@dataclass(frozen=True)
class FailureCase:
    """One unrecovered run, with everything needed to replay it.

    The sweep records these as it goes; ``capture_failure_trace`` /
    ``dump_failure_traces`` re-run a case with a recording
    :class:`~repro.obs.Tracer` attached so the event stream of the
    failure (fault injections, recovery phases, redo decisions) can be
    inspected offline.
    """

    scenario: str
    label: str
    specs: Tuple[FaultSpec, ...]
    seed: int
    batched: bool
    workers: int = 1
    log_streams: int = 1
    backend: str = "memory"
    redo_workers: int = 1


@dataclass
class ScenarioResult:
    """One scenario row of the sweep report."""

    name: str
    total: int = 0
    recovered: int = 0
    faults_injected: int = 0
    io_retries: int = 0
    detail: str = ""
    failures: List[FailureCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.total > 0 and self.recovered == self.total

    def record_failure(
        self, label: str, specs, seed: int, batched: bool,
        workers: int = 1, log_streams: int = 1, backend: str = "memory",
        redo_workers: int = 1,
    ) -> None:
        self.detail += f" {label}:FAILED"
        self.failures.append(FailureCase(
            scenario=self.name, label=label, specs=tuple(specs),
            seed=seed, batched=batched, workers=workers,
            log_streams=log_streams, backend=backend,
            redo_workers=redo_workers,
        ))


@dataclass
class SweepReport:
    seed: int
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(r.total for r in self.results)

    @property
    def recovered(self) -> int:
        return sum(r.recovered for r in self.results)

    @property
    def all_recovered(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[FailureCase]:
        return [case for r in self.results for case in r.failures]


# --------------------------------------------------------------- scenario core


def _mode_name(batched: bool, workers: int = 1, log_streams: int = 1) -> str:
    if workers > 1:
        name = "parallel"
    else:
        name = "batched" if batched else "serial"
    if log_streams > 1:
        name += "-multistream"
    return name


def _fresh_db(
    pages: int = 48, workers: int = 1, log_streams: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
    redo_workers: int = 1,
) -> Database:
    """A fresh database for one sweep run.

    The serial and batched modes use a single partition; the parallel
    mode spreads the same page count over four partitions so the
    4-worker sweep actually fans span reads out across latches.
    ``log_streams > 1`` stripes the WAL (the multistream smoke mode).
    ``redo_workers > 1`` fans recovery replay out to the parallel redo
    pool (and, like the parallel copy engine, spreads the pages over
    four partitions so the fan-out has real width).  With
    ``backend="file"`` every run gets its own fresh directory (a
    subdirectory of ``data_dir`` when given) so a crashed run's files
    stay inspectable and runs never collide.
    """
    run_dir = None
    if backend == "file":
        run_dir = tempfile.mkdtemp(prefix="sweep-", dir=data_dir)
    if workers > 1 or redo_workers > 1:
        per_part = max(1, pages // 4)
        return Database(pages_per_partition=[per_part] * 4,
                        policy="general", log_streams=log_streams,
                        backend=backend, data_dir=run_dir,
                        redo_workers=redo_workers)
    return Database(pages_per_partition=[pages], policy="general",
                    log_streams=log_streams, backend=backend,
                    data_dir=run_dir, redo_workers=redo_workers)


def _drive(
    db: Database,
    seed: int,
    batched: bool,
    op_count: int = 120,
    workers: int = 1,
) -> Tuple[bool, object]:
    """Run workload + backup to completion under whatever faults are armed.

    Returns ``(ok, outcome)``: a mid-run :class:`SimulatedCrash` turns
    the run into a crash-recovery check, a clean finish into a media
    failure + media recovery check.  Either way ``ok`` means the
    recovered state matched the oracle.
    """
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=op_count)
    # The tick budget scales with the partition count so every layout
    # advances each partition by the same 4 pages per tick: the
    # round-robin planner deals a tick across partitions, and a flat
    # budget would degenerate multi-partition sweeps to one-page spans
    # (which, among other things, can never tear).
    tick = 4 * db.layout.num_partitions
    try:
        db.start_backup(BackupConfig(steps=4, batched=batched,
                                     workers=workers))
        exhausted = False
        while db.backup_in_progress() or not exhausted:
            if db.backup_in_progress():
                db.backup_step(tick)
            exhausted = True
            for _ in range(2):
                op = next(source, None)
                if op is None:
                    break
                db.execute(op)
                exhausted = False
            db.install_some(2, rng)
    except SimulatedCrash:
        db.crash()
        outcome = db.recover()
        return outcome.ok, outcome
    db.media_failure()
    outcome = db.media_recover()
    return outcome.ok, outcome


def _run_one(
    specs: List[FaultSpec], seed: int, batched: bool, workers: int = 1,
    log_streams: int = 1, backend: str = "memory",
    data_dir: Optional[str] = None, redo_workers: int = 1,
) -> Tuple[bool, Database]:
    db = _fresh_db(workers=workers, log_streams=log_streams,
                   backend=backend, data_dir=data_dir,
                   redo_workers=redo_workers)
    db.attach_faults(FaultPlane(specs))
    ok, _ = _drive(db, seed, batched, workers=workers)
    # Release file descriptors (file backend); in-memory state —
    # metrics, fault counters — stays readable for the caller.
    db.close()
    return ok, db


def _measure_io_budget(
    seed: int, batched: bool, workers: int = 1, log_streams: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
    redo_workers: int = 1,
) -> Tuple[int, dict]:
    """One fault-free run with a bare plane, counting every I/O event.

    Returns the global I/O count and the per-point counters (the
    ``point_budgets`` seeded schedules draw from).  Both are
    deterministic even in the parallel mode — threads reorder the
    events but never change the set.
    """
    db = _fresh_db(workers=workers, log_streams=log_streams,
                   backend=backend, data_dir=data_dir,
                   redo_workers=redo_workers)
    plane = db.attach_faults(FaultPlane())
    ok, _ = _drive(db, seed, batched, workers=workers)
    db.close()
    if not ok:
        raise AssertionError("fault-free baseline run failed to recover")
    return plane.io_count, dict(plane.count_by_point)


# ------------------------------------------------------------------- scenarios


def _transient_scenario(
    seed: int, batched: bool, workers: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Transient faults at every instrumented point, one run per point."""
    name = f"transient-{_mode_name(batched, workers)}"
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    for point in IOPoint.ALL:
        specs = [FaultSpec(FaultKind.TRANSIENT, point=point, at_io=2,
                           times=2)]
        ok, db = _run_one(specs, seed, batched, workers,
                          backend=backend, data_dir=data_dir)
        result.total += 1
        plane = db.faults
        # A point the run never reaches (fault never fired) still counts
        # as recovered — the run is fault-free by construction then.
        if ok:
            result.recovered += 1
        else:
            result.record_failure(point, specs, seed, batched, workers,
                                  backend=backend)
        result.faults_injected += plane.injected_total
        result.io_retries += db.metrics.io_retries
    return result


def _torn_span_scenario(
    seed: int, workers: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Torn bulk backup spans: detected, resumed, and still recoverable."""
    name = ("torn-backup-span" if workers == 1
            else "torn-backup-span-parallel")
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    resumed = 0
    for at_io in (1, 2, 3):
        specs = [FaultSpec(FaultKind.TORN, point=IOPoint.BACKUP_BULK_RECORD,
                           at_io=at_io, keep=1)]
        ok, db = _run_one(specs, seed, batched=True, workers=workers,
                          backend=backend, data_dir=data_dir)
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(f"at_io={at_io}", specs, seed, True,
                                  workers, backend=backend)
        result.faults_injected += db.faults.injected_total
        result.io_retries += db.metrics.io_retries
        resumed += db.metrics.torn_spans_resumed
    result.detail += f" resumed={resumed}"
    return result


def _torn_install_scenario(
    seed: int, batched: bool, workers: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Torn multi-page installs: doublewrite rollback + crash recovery."""
    name = f"torn-install-{_mode_name(batched, workers)}"
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    repaired = 0
    for at_io in (1, 2, 4):
        specs = [FaultSpec(FaultKind.TORN, point=IOPoint.STABLE_MULTI_WRITE,
                           at_io=at_io, keep=1)]
        ok, db = _run_one(specs, seed, batched, workers,
                          backend=backend, data_dir=data_dir)
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(f"at_io={at_io}", specs, seed, batched,
                                  workers, backend=backend)
        result.faults_injected += db.faults.injected_total
        repaired += db.metrics.torn_writes_repaired
    result.detail += f" repaired={repaired}"
    return result


def _crash_sweep_scenario(
    seed: int, batched: bool, stride: int, workers: int = 1,
    log_streams: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
    redo_workers: int = 1,
) -> ScenarioResult:
    """Crash at every Nth I/O point of the deterministic baseline run.

    With ``redo_workers > 1`` every crash recovery in the sweep replays
    through the parallel redo pool — the scenario then checks that the
    byte-identical-outcome contract holds under every crash point, not
    just on clean logs.
    """
    name = f"crash-sweep-{_mode_name(batched, workers, log_streams)}"
    if redo_workers > 1:
        name = f"parallel-redo-{name}"
    if backend != "memory":
        name += f"-{backend}"
    budget, _ = _measure_io_budget(seed, batched, workers, log_streams,
                                   backend=backend, data_dir=data_dir,
                                   redo_workers=redo_workers)
    result = ScenarioResult(name, detail=f" io_budget={budget}")
    for plan in crash_sweep_plans(budget, stride=stride):
        specs = [plan.to_spec()]
        ok, db = _run_one(specs, seed, batched, workers, log_streams,
                          backend=backend, data_dir=data_dir,
                          redo_workers=redo_workers)
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(f"at_io={plan.at_io}", specs, seed,
                                  batched, workers, log_streams,
                                  backend=backend,
                                  redo_workers=redo_workers)
        result.faults_injected += db.faults.injected_total
    return result


def _seeded_mix_scenario(
    seed: int, batched: bool, rounds: int, workers: int = 1,
    log_streams: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Seeded random transient/torn schedules across all points."""
    name = f"seeded-mix-{_mode_name(batched, workers, log_streams)}"
    if backend != "memory":
        name += f"-{backend}"
    budget, per_point = _measure_io_budget(seed, batched, workers,
                                           log_streams, backend=backend,
                                           data_dir=data_dir)
    result = ScenarioResult(name)
    for round_index in range(rounds):
        db = _fresh_db(workers=workers, log_streams=log_streams,
                       backend=backend, data_dir=data_dir)
        injector = FailureInjector.seeded(
            db, seed * 1000 + round_index, budget, count=4,
            point_budgets=per_point,
        )
        ok, _ = _drive(db, seed, batched, workers=workers)
        db.close()
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(
                f"round={round_index}",
                [plan.to_spec() for plan in injector.io_plans],
                seed, batched, workers, log_streams, backend=backend,
            )
        result.faults_injected += injector.faults_injected
        result.io_retries += db.metrics.io_retries
    return result


def _run_bitrot_one(
    spec: FaultSpec, seed: int, batched: bool, finish: str, tracer=None,
    workers: int = 1, backend: str = "memory",
    data_dir: Optional[str] = None, redo_workers: int = 1,
):
    """One bitrot run: drive the workload, then force a recovery check.

    ``finish`` picks the recovery path that exercises the rotted store:
    ``"crash"`` (stable pages / log tail must be healed or quarantined
    by crash recovery's escalation ladder) or ``"media"`` (a rotted
    backup must be caught by media recovery's integrity gate).  Damage
    detected *mid-run* — a checksummed read tripping over the rot —
    downgrades to a crash + recover check on the spot.
    """
    db = _fresh_db(workers=workers, backend=backend, data_dir=data_dir,
                   redo_workers=redo_workers)
    if tracer is not None:
        db.attach_tracer(tracer)
    db.attach_faults(FaultPlane([spec]))
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=120)
    tick = 4 * db.layout.num_partitions  # see _drive
    try:
        db.start_backup(BackupConfig(steps=4, batched=batched,
                                     workers=workers))
        exhausted = False
        while db.backup_in_progress() or not exhausted:
            if db.backup_in_progress():
                db.backup_step(tick)
            exhausted = True
            for _ in range(2):
                op = next(source, None)
                if op is None:
                    break
                db.execute(op)
                exhausted = False
            db.install_some(2, rng)
    except (SimulatedCrash, CorruptPageError):
        db.crash()
        outcome = db.recover()
        db.close()
        return outcome, db
    if finish == "media":
        db.media_failure()
        outcome = db.media_recover()
        db.close()
        return outcome, db
    db.crash()
    outcome = db.recover()
    db.close()
    return outcome, db


def _bitrot_at_ios(budget: int, samples: int) -> List[int]:
    """Evenly spread ``samples`` 1-indexed I/O ordinals over ``budget``."""
    if budget <= 0:
        return []
    return sorted({max(1, (budget * i) // samples)
                   for i in range(1, samples + 1)})


def _bitrot_scenarios(
    seed: int, batched: bool, samples: int = 3, workers: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
    redo_workers: int = 1, only: Optional[Tuple[str, ...]] = None,
) -> List[ScenarioResult]:
    """Seeded bit flips per store; every run must heal or quarantine.

    Three scenarios per engine mode, one per rot site: ``bitrot-stable``
    (a stable page image rots during an install), ``bitrot-backup`` (a
    copied backup page rots while the backup is recorded), and
    ``bitrot-logtail`` (a log record's envelope rots at append time).
    ``recovered`` counts runs whose recovery outcome is *honest*: the
    state matches the oracle everywhere outside an explicitly reported
    quarantine set.  A silently-wrong restore counts as a failure.
    ``only`` restricts the rot sites (the parallel-redo smoke pins just
    the logtail site: a truncated/healed tail feeds the parallel
    replayer a log slice that was damaged mid-record).
    """
    mode = _mode_name(batched, workers)
    if backend != "memory":
        mode += f"-{backend}"
    _, per_point = _measure_io_budget(seed, batched, workers,
                                      backend=backend, data_dir=data_dir,
                                      redo_workers=redo_workers)
    targets = (
        ("stable", IOPoint.STABLE_MULTI_WRITE, "crash"),
        ("backup",
         IOPoint.BACKUP_BULK_RECORD if batched else IOPoint.BACKUP_RECORD,
         "media"),
        ("logtail", IOPoint.LOG_APPEND, "crash"),
    )
    if only is not None:
        targets = tuple(t for t in targets if t[0] in only)
    results = []
    for target, point, finish in targets:
        budget = per_point.get(point, 0)
        name = f"bitrot-{target}-{mode}"
        if redo_workers > 1:
            name = f"parallel-redo-{name}"
        result = ScenarioResult(name, detail=f" point_budget={budget}")
        quarantined = 0
        for at_io in _bitrot_at_ios(budget, samples):
            spec = FaultSpec(FaultKind.BITROT, point=point, at_io=at_io,
                             seed=seed)
            outcome, db = _run_bitrot_one(spec, seed, batched, finish,
                                          workers=workers, backend=backend,
                                          data_dir=data_dir,
                                          redo_workers=redo_workers)
            result.total += 1
            if outcome.ok:
                result.recovered += 1
            else:
                result.record_failure(f"at_io={at_io}", [spec], seed,
                                      batched, workers, backend=backend,
                                      redo_workers=redo_workers)
            result.faults_injected += db.faults.injected_total
            result.io_retries += db.metrics.io_retries
            quarantined += len(getattr(outcome, "quarantined", []))
        result.detail += f" quarantined={quarantined}"
        results.append(result)
    return results


def _rot_backup_page(backup, page_id) -> None:
    """Targeted bit rot in a backup image, envelope left stale."""
    from repro.storage.page import PageVersion, rot_value

    old = backup._versions[page_id]
    backup._versions[page_id] = PageVersion(
        rot_value(old.value), old.page_lsn
    )


def _run_instant_one(
    seed: int, batched: bool, rot: str = "none", traffic: bool = True,
    workers: int = 1, backend: str = "memory",
    data_dir: Optional[str] = None, executor: str = "thread",
) -> Tuple[bool, Database]:
    """One instant-restore run: mid-restore reads must be exactly right.

    Drives the workload + backup like :func:`_drive`, fails the media,
    then — *while the background restore is running* — reads every page
    in a shuffled order and pins each value against the oracle state at
    the failure point (quarantined pages must read the initial value;
    anything else is a silent corruption).  ``traffic=True`` additionally
    writes through unrestored pages mid-restore and checks the writes
    win over the background sweep.  ``rot`` picks the integrity path:
    ``"fallback"`` rots the newest of two generations (restore must fall
    back to the intact one), ``"quarantine"`` rots the only generation
    (honest degrade).
    """
    from repro.ops.physical import PhysicalWrite

    db = _fresh_db(workers=workers, backend=backend, data_dir=data_dir)
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=120)
    tick = 4 * db.layout.num_partitions  # see _drive
    db.start_backup(BackupConfig(steps=4, batched=batched, workers=workers))
    exhausted = False
    while db.backup_in_progress() or not exhausted:
        if db.backup_in_progress():
            db.backup_step(tick)
        exhausted = True
        for _ in range(2):
            op = next(source, None)
            if op is None:
                break
            db.execute(op)
            exhausted = False
        db.install_some(2, rng)
    if rot == "fallback":
        # Second generation over more updates; rot the newest so the
        # integrity gate must restore the older intact image instead.
        for _ in range(12):
            op = next(source, None)
            if op is None:
                break
            db.execute(op)
        db.start_backup(BackupConfig(steps=4, batched=batched,
                                     workers=workers))
        newest = db.run_backup(BackupConfig(pages_per_tick=tick))
        _rot_backup_page(newest, newest.copy_order()[0])
    elif rot == "quarantine":
        backup = db.latest_backup()
        _rot_backup_page(backup, backup.copy_order()[0])
    expected = db.oracle.state()
    initial = db.initial_value
    db.media_failure()
    db.begin_instant_restore(
        workers=max(2, workers), executor=executor
    )
    pages = [
        pid
        for p in range(db.layout.num_partitions)
        for pid in db.layout.pages_in_partition(p)
    ]
    order = list(pages)
    random.Random(seed + 1).shuffle(order)
    # Every page read mid-restore, racing the background sweep.
    observed = {pid: db.read(pid) for pid in order}
    written = {}
    if traffic:
        for i, pid in enumerate(order[::9]):
            written[pid] = ("mid-restore", seed, i)
            db.execute(PhysicalWrite(pid, written[pid]))
    outcome = db.finish_instant_restore()
    ok = outcome.ok
    quarantined = set(outcome.quarantined)
    for pid in pages:
        want = initial if pid in quarantined else expected.get(pid, initial)
        if observed[pid] != want:
            ok = False
    for pid, value in written.items():
        if db.read(pid) != value:
            ok = False
    db.close()
    return ok, db


def _instant_scenarios(
    seed: int, batched: bool, workers: int = 1,
    backend: str = "memory", data_dir: Optional[str] = None,
    executor: str = "thread",
) -> ScenarioResult:
    """Mid-restore correctness: plain, bitrot-fallback, and quarantine."""
    mode = _mode_name(batched, workers)
    if backend != "memory":
        mode += f"-{backend}"
    if executor != "thread":
        mode += f"-{executor}"
    result = ScenarioResult(f"instant-restore-{mode}")
    cases = (
        ("mid-restore-traffic", "none", True),
        ("bitrot-fallback", "fallback", False),
        ("bitrot-quarantine", "quarantine", False),
    )
    for label, rot, traffic in cases:
        ok, db = _run_instant_one(seed, batched, rot=rot, traffic=traffic,
                                  workers=workers, backend=backend,
                                  data_dir=data_dir, executor=executor)
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(label, [], seed, batched, workers,
                                  backend=backend)
        result.detail = (
            f" on_demand={db.metrics.pages_restored_on_demand}"
            f" background={db.metrics.pages_restored_background}"
        )
    return result


# ---------------------------------------------------------- archive scenarios


def _archive_db(
    seed: int, pages: int = 48,
    backend: str = "memory", data_dir: Optional[str] = None,
):
    """A database carrying a three-generation archive chain.

    Builds a base full plus two incremental generations with workload
    interleaved through every sweep (the chain is fuzzy the same way
    production chains are).  Returns ``(db, archive, source, rng)`` so a
    scenario can keep driving the same workload stream afterwards.
    """
    db = _fresh_db(pages=pages, backend=backend, data_dir=data_dir)
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=10**9)

    def burst(count):
        for _ in range(count):
            db.execute(next(source))
        db.install_some(2, rng)

    def tick():
        burst(2)

    burst(30)
    archive = db.attach_archive(BackupConfig(steps=4, batched=True))
    archive.run_full(tick=tick)
    burst(20)
    archive.run_incremental(tick=tick)
    burst(20)
    archive.run_incremental(tick=tick)
    return db, archive, source, rng


def _archive_bitrot_scenario(
    seed: int, backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Bitrot in the chain's *middle* generation: heal, then restore.

    Rots pages of the middle incremental (the case where both healing
    ladder rungs are reachable: a newer generation may shadow the page,
    else it must be rebuilt from the base plus the log).  After
    ``heal_chain`` the full chain restore must be honest — oracle-exact
    outside an explicitly quarantined set.
    """
    name = "archive-chain-bitrot-middle"
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    healed = quarantined = 0
    for case in range(3):
        db, archive, _, _ = _archive_db(seed + case, backend=backend,
                                        data_dir=data_dir)
        middle = archive.chain()[1]
        order = middle.copy_order()
        for i in range(min(2, len(order))):
            middle._rot_cell(order[(case * 7 + i * 3) % len(order)])
        report = archive.heal_chain()
        db.media_failure()
        outcome = db.media_recover_chain(archive.chain())
        db.close()
        result.total += 1
        if outcome.ok:
            result.recovered += 1
        else:
            result.record_failure(f"case={case}", [], seed + case, True,
                                  backend=backend)
        healed += len(report.healed)
        quarantined += len(report.quarantined)
    result.detail += f" healed={healed} quarantined={quarantined}"
    return result


def _archive_compaction_crash_scenario(
    seed: int, backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Crash mid-compaction: the old chain must survive, the retry must
    finish.

    Arms a crash at the Nth bulk-record I/O of the merged build.  After
    the crash the manifest must still name exactly the old generations,
    the intent journal must be gone, crash recovery must succeed, the
    old chain must still restore, and a retried compaction must collapse
    the chain to one generation that also restores.
    """
    from repro.archive.manager import ArchiveManager

    name = "archive-compaction-crash"
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    # 160 pages -> the merged overlay spans 3 bulk-record batches, so
    # the crash lands at the start, middle, and end of the build.
    for at_io in (1, 2, 3):
        db, archive, _, _ = _archive_db(seed, pages=160, backend=backend,
                                        data_dir=data_dir)
        before_ids = list(archive.manifest.generation_ids())
        spec = FaultSpec(FaultKind.CRASH,
                         point=IOPoint.BACKUP_BULK_RECORD, at_io=at_io)
        db.attach_faults(FaultPlane([spec]))
        crashed = False
        try:
            archive.compact()
        except SimulatedCrash:
            crashed = True
        db.crash()
        crash_ok = db.recover().ok
        # Simulated process restart: a fresh manager over the same
        # manifest store must come up on the old, untouched chain.
        reborn = ArchiveManager(db, manifest_store=archive.store)
        old_chain_intact = (
            crashed
            and archive.store.load_journal() is None
            and list(reborn.manifest.generation_ids()) == before_ids
        )
        db.media_failure()
        restore_ok = db.media_recover_chain(reborn.chain()).ok
        reborn.compact()
        retry_ok = len(reborn.chain()) == 1
        db.media_failure()
        retry_ok = retry_ok and db.media_recover_chain(reborn.chain()).ok
        db.close()
        result.total += 1
        if crash_ok and old_chain_intact and restore_ok and retry_ok:
            result.recovered += 1
        else:
            result.record_failure(f"at_io={at_io}", [spec], seed, True,
                                  backend=backend)
        result.faults_injected += db.faults.injected_total
    return result


def _archive_pitr_scenario(
    seed: int, backend: str = "memory", data_dir: Optional[str] = None,
) -> ScenarioResult:
    """Point-in-time restore to a pre-corruption cut.

    Records the middle generation's seal point, replays the retained log
    to that cut for the expected state, then lets an "intruder" write
    garbage and the workload continue past the cut.  After total media
    failure, ``restore_to_lsn(cut)`` must reproduce the pre-corruption
    state exactly — no garbage, no post-cut effects.
    """
    from repro.ids import PageId
    from repro.ops.physical import PhysicalWrite
    from repro.recovery.redo import RedoReplayer

    name = "archive-pitr-precorruption"
    if backend != "memory":
        name += f"-{backend}"
    result = ScenarioResult(name)
    for case in range(2):
        db, archive, source, rng = _archive_db(seed + case, backend=backend,
                                               data_dir=data_dir)
        cut = archive.chain()[1].completion_lsn
        expected = {}
        RedoReplayer(initial_value=db.initial_value).replay(
            db.log.merge_scan(1, cut), expected
        )
        garbage = ("!!garbage!!", seed, case)
        db.execute(PhysicalWrite(PageId(0, 0), garbage), source="intruder")
        for _ in range(15):
            db.execute(next(source))
        db.install_some(4, rng)
        db.media_failure()
        outcome = db.restore_to_lsn(cut)
        state = db.stable.snapshot()
        mismatches = sum(
            1 for pid, version in state.items()
            if version.value != (expected[pid].value if pid in expected
                                 else db.initial_value)
        )
        ok = (outcome.ok and mismatches == 0
              and state[PageId(0, 0)].value != garbage)
        db.close()
        result.total += 1
        if ok:
            result.recovered += 1
        else:
            result.record_failure(f"case={case} mismatches={mismatches}",
                                  [], seed + case, True, backend=backend)
    return result


# ------------------------------------------------------------------ the sweep


def run_faultsweep(
    seed: int = 0,
    stride: int = 1,
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
    backend: str = "memory",
    data_dir: Optional[str] = None,
) -> SweepReport:
    """Run the full scenario matrix; deterministic in ``seed``.

    ``stride`` thins the exhaustive crash sweep (crash after every
    ``stride``-th I/O instead of every single one); ``quick`` picks a
    stride that keeps the whole sweep around a hundred runs.

    The matrix runs three engine modes: serial (page-at-a-time copies),
    batched (bulk spans on the calling thread), and parallel (bulk spans
    fanned out to a 4-thread pool over a four-partition layout).

    ``backend="file"`` runs the sweep against the file-backed storage
    backend (:mod:`repro.storage.file_backend`): every run gets a fresh
    directory under ``data_dir`` (system tmp when ``None``).  Because
    fault checks live at the protocol boundary, the injected schedules
    are identical to the memory backend's; the file matrix is a smaller
    pinned smoke — batched + parallel engine modes over every fault
    class — since each run now pays real file I/O and fsyncs.
    """
    report = SweepReport(seed=seed)

    def emit(result: ScenarioResult) -> None:
        report.results.append(result)
        if log is not None:
            status = "ok " if result.ok else "FAIL"
            log(f"[{status}] {result.name}: {result.recovered}/"
                f"{result.total} recovered{result.detail}")

    if backend == "file":
        budget, _ = _measure_io_budget(seed, batched=True, backend=backend,
                                       data_dir=data_dir)
        stride = max(stride, budget // 12 or 1)
        for batched, workers in ((True, 1), (True, 4)):
            emit(_transient_scenario(seed, batched, workers,
                                     backend=backend, data_dir=data_dir))
            emit(_torn_install_scenario(seed, batched, workers,
                                        backend=backend, data_dir=data_dir))
            emit(_crash_sweep_scenario(seed, batched, stride, workers,
                                       backend=backend, data_dir=data_dir))
            emit(_seeded_mix_scenario(seed, batched, rounds=2,
                                      workers=workers, backend=backend,
                                      data_dir=data_dir))
            for result in _bitrot_scenarios(seed, batched, samples=2,
                                            workers=workers,
                                            backend=backend,
                                            data_dir=data_dir):
                emit(result)
            emit(_instant_scenarios(seed, batched, workers,
                                    backend=backend, data_dir=data_dir))
        emit(_instant_scenarios(seed, True, 4, backend=backend,
                                data_dir=data_dir, executor="process"))
        # Parallel redo smoke: every crash recovery of the sweep (and
        # the healed-logtail rot runs) replays through the 4-worker
        # pool; outcomes must stay byte-identical to serial replay.
        emit(_crash_sweep_scenario(seed, True, stride, backend=backend,
                                   data_dir=data_dir, redo_workers=4))
        for result in _bitrot_scenarios(seed, True, samples=2,
                                        backend=backend, data_dir=data_dir,
                                        redo_workers=4, only=("logtail",)):
            emit(result)
        emit(_torn_span_scenario(seed, backend=backend, data_dir=data_dir))
        emit(_archive_bitrot_scenario(seed, backend=backend,
                                      data_dir=data_dir))
        emit(_archive_compaction_crash_scenario(seed, backend=backend,
                                                data_dir=data_dir))
        emit(_archive_pitr_scenario(seed, backend=backend,
                                    data_dir=data_dir))
        return report

    if quick:
        budget, _ = _measure_io_budget(seed, batched=True)
        stride = max(stride, budget // 24 or 1)

    for batched, workers in ((False, 1), (True, 1), (True, 4)):
        emit(_transient_scenario(seed, batched, workers))
        emit(_torn_install_scenario(seed, batched, workers))
        emit(_crash_sweep_scenario(seed, batched, stride, workers))
        emit(_seeded_mix_scenario(seed, batched,
                                  rounds=2 if quick else 4,
                                  workers=workers))
        for result in _bitrot_scenarios(seed, batched,
                                        samples=2 if quick else 3,
                                        workers=workers):
            emit(result)
        emit(_instant_scenarios(seed, batched, workers))
    emit(_torn_span_scenario(seed))
    emit(_torn_span_scenario(seed, workers=4))
    # Multi-stream WAL smoke: the crash sweep and the seeded mix against
    # a database whose log is striped over four streams.  A crash must
    # lose only per-stream unforced suffixes (the globally consistent
    # cut) and recovery — replaying through merge_scan — must still
    # reach the oracle state after every injected failure.
    emit(_crash_sweep_scenario(seed, True, stride, log_streams=4))
    emit(_seeded_mix_scenario(seed, True, rounds=2 if quick else 4,
                              log_streams=4))
    # Parallel redo smoke: the crash sweep and the logtail-rot runs
    # again with recovery replay fanned out to a 4-worker pool — every
    # crash point and every healed (truncated) tail must recover to the
    # same state serial replay reaches.
    emit(_crash_sweep_scenario(seed, True, stride, redo_workers=4))
    for result in _bitrot_scenarios(seed, True, samples=2 if quick else 3,
                                    redo_workers=4, only=("logtail",)):
        emit(result)
    # Archive tier: chain healing, compaction crash atomicity, and
    # point-in-time restore to a pre-corruption cut (docs/ARCHIVE.md).
    emit(_archive_bitrot_scenario(seed))
    emit(_archive_compaction_crash_scenario(seed))
    emit(_archive_pitr_scenario(seed))
    return report


# ------------------------------------------------------------- trace capture


def capture_failure_trace(case: FailureCase):
    """Replay one :class:`FailureCase` with a recording tracer attached.

    Returns the list of :class:`~repro.obs.TraceEvent` for the re-run,
    starting with a ``trace_header`` event naming the case.  The sweep is
    deterministic in its seed, so the replay reproduces the failure
    exactly — including which fault fired and which recovery phase saw
    the damage.
    """
    from repro.obs import events as ev
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    tracer.emit(
        ev.TRACE_HEADER,
        scenario=case.scenario,
        label=case.label,
        seed=case.seed,
        batched=case.batched,
        workers=case.workers,
        log_streams=case.log_streams,
        backend=case.backend,
        redo_workers=case.redo_workers,
        specs=[
            dict(kind=s.kind, point=s.point, at_io=s.at_io,
                 times=s.times, keep=s.keep, seed=s.seed)
            for s in case.specs
        ],
    )
    try:
        if any(s.kind == FaultKind.BITROT for s in case.specs):
            spec = case.specs[0]
            finish = ("media" if spec.point in (
                IOPoint.BACKUP_RECORD, IOPoint.BACKUP_BULK_RECORD
            ) else "crash")
            _run_bitrot_one(spec, case.seed, case.batched, finish,
                            tracer=tracer, workers=case.workers,
                            backend=case.backend,
                            redo_workers=case.redo_workers)
        else:
            db = _fresh_db(workers=case.workers,
                           log_streams=case.log_streams,
                           backend=case.backend,
                           redo_workers=case.redo_workers)
            db.attach_tracer(tracer)
            db.attach_faults(FaultPlane(list(case.specs)))
            _drive(db, case.seed, case.batched, workers=case.workers)
    except Exception as exc:  # a failing case may die outright
        tracer.emit(ev.TRACE_HEADER, error=f"{type(exc).__name__}: {exc}")
    return tracer.events


def dump_failure_traces(
    report: SweepReport,
    path: str,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Re-run every unrecovered case of ``report`` and dump its trace.

    All traces are appended to one JSONL file at ``path``; each line is
    tagged with a ``case`` index so ``python -m repro trace`` can tell
    the streams apart.  Returns the number of cases dumped.
    """
    from repro.obs.tracer import write_jsonl

    dumped = 0
    for case in report.failures:
        events = capture_failure_trace(case)
        write_jsonl(
            events, path, mode="w" if dumped == 0 else "a",
            extra={"case": dumped},
        )
        if log is not None:
            log(f"trace[{dumped}]: {case.scenario} {case.label} "
                f"({len(events)} events)")
        dumped += 1
    return dumped
