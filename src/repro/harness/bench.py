"""SIM-PERF benchmark driver with a persisted baseline file.

Runs the hot-path benchmark suite (the same scenarios as
``benchmarks/test_simulator_performance.py``) with a plain
``perf_counter`` harness and appends one labelled entry to a JSON
baseline file (default ``BENCH_hotpath.json``).  Each entry records the
environment, the git revision, and per-benchmark timing statistics;
entries after the first also record their speedup relative to the
*first* entry in the file, so committing a seed ("before") entry and a
current ("after") entry documents an optimization's effect.

Usage::

    python -m repro bench --rounds 40 --label after
    python benchmarks/run_bench.py --label seed --output BENCH_hotpath.json

Speedups are computed on the per-benchmark *minimum* round time — the
standard robust statistic for microbenchmarks, insensitive to GC pauses
and scheduler noise that inflate means.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional

DEFAULT_OUTPUT = "BENCH_hotpath.json"
DEFAULT_ROUNDS = 40
WARMUP_ROUNDS = 3


# --------------------------------------------------------------- benchmarks
#
# Each factory performs one-time setup and returns the callable timed per
# round.  The scenarios deliberately mirror the pytest-benchmark suite in
# benchmarks/test_simulator_performance.py so numbers are comparable.


def _bench_copy_chain_checkpoint() -> Callable[[], object]:
    from repro.db import Database
    from repro.workloads import copy_chain_workload

    db = Database(pages_per_partition=[256], policy="general")

    def run() -> int:
        for op in copy_chain_workload(
            db.layout, seed=2, count=150, chain_length=8
        ):
            db.execute(op)
        return db.checkpoint()

    return run


def _bench_backup_sweep() -> Callable[[], object]:
    from repro.core.config import BackupConfig
    from repro.db import Database

    db = Database(pages_per_partition=[4096], policy="general")
    cfg = BackupConfig(steps=8, pages_per_tick=256)

    def run() -> int:
        db.engine.completed.clear()
        db.start_backup(cfg)
        backup = db.run_backup(cfg)
        if backup.copied_count() != 4096:
            raise AssertionError("sweep did not copy every page")
        return backup.copied_count()

    return run


def _bench_mixed_execute() -> Callable[[], object]:
    from repro.db import Database
    from repro.workloads import mixed_logical_workload

    db = Database(pages_per_partition=[512], policy="general")
    source = mixed_logical_workload(db.layout, seed=1, count=10**9)

    def run() -> int:
        for _ in range(200):
            db.execute(next(source))
        return db.checkpoint()

    return run


def _bench_replay() -> Callable[[], object]:
    from repro.db import Database
    from repro.recovery.crash_recovery import run_crash_recovery
    from repro.workloads import mixed_logical_workload

    db = Database(pages_per_partition=[256], policy="general")
    for op in mixed_logical_workload(db.layout, seed=3, count=3000):
        db.execute(op)
    db.crash()

    def run() -> object:
        outcome = run_crash_recovery(
            db.stable, db.log, scan_start_lsn=1, apply_to_stable=False
        )
        if outcome.replayed + outcome.skipped != 3000:
            raise AssertionError("replay missed records")
        return outcome

    return run


BENCHMARKS: Dict[str, Callable[[], Callable[[], object]]] = {
    "copy_chain_checkpoint": _bench_copy_chain_checkpoint,
    "backup_sweep": _bench_backup_sweep,
    "mixed_execute": _bench_mixed_execute,
    "replay": _bench_replay,
}


# ------------------------------------------------------------------- timing


def time_benchmark(
    factory: Callable[[], Callable[[], object]],
    rounds: int,
    warmup: int = WARMUP_ROUNDS,
) -> Dict[str, float]:
    """Time ``rounds`` calls of the factory's callable; stats in ms."""
    run = factory()
    for _ in range(warmup):
        run()
    timings: List[float] = []
    perf_counter = time.perf_counter
    for _ in range(rounds):
        start = perf_counter()
        run()
        timings.append(perf_counter() - start)
    timings_ms = [t * 1000.0 for t in timings]
    return {
        "rounds": rounds,
        "min_ms": round(min(timings_ms), 4),
        "median_ms": round(statistics.median(timings_ms), 4),
        "mean_ms": round(statistics.fmean(timings_ms), 4),
        "stdev_ms": round(
            statistics.stdev(timings_ms) if rounds > 1 else 0.0, 4
        ),
    }


# -------------------------------------------------------------- environment


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def collect_environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_revision": _git_revision(),
    }


# ------------------------------------------------------------- persistence


def _load(path: str) -> Dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path} is not a benchmark baseline file")
        return data
    return {
        "benchmark": "SIM-PERF hot paths",
        "statistic": "speedups computed on min_ms",
        "entries": [],
    }


def _speedups(baseline: Dict, current: Dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name, stats in current.items():
        base = baseline.get(name)
        if base and base.get("min_ms") and stats.get("min_ms"):
            out[name] = round(base["min_ms"] / stats["min_ms"], 2)
    return out


def run_suite(
    rounds: int = DEFAULT_ROUNDS,
    label: str = "current",
    output: str = DEFAULT_OUTPUT,
    only: Optional[List[str]] = None,
    quiet: bool = False,
    note: Optional[str] = None,
) -> Dict:
    """Run the suite, append an entry to ``output``, return the entry.

    ``note`` attaches a free-form annotation to the entry — e.g. what
    changed since the previous entry and the measured overhead delta.
    """
    names = list(BENCHMARKS) if not only else list(only)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {unknown}")
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        if not quiet:
            print(f"  {name} ... ", end="", flush=True)
        results[name] = time_benchmark(BENCHMARKS[name], rounds)
        if not quiet:
            print(
                f"min {results[name]['min_ms']} ms, "
                f"median {results[name]['median_ms']} ms"
            )
    data = _load(output)
    entry: Dict = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": collect_environment(),
        "results": results,
    }
    if note:
        entry["note"] = note
    if data["entries"]:
        first = data["entries"][0]
        entry["baseline_label"] = first["label"]
        entry["speedup_vs_baseline"] = _speedups(
            first.get("results", {}), results
        )
    data["entries"].append(entry)
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    if not quiet:
        if "speedup_vs_baseline" in entry:
            print(
                f"speedup vs '{entry['baseline_label']}':",
                json.dumps(entry["speedup_vs_baseline"]),
            )
        print(f"wrote entry '{label}' to {output}")
    return entry


# -------------------------------------------------------------------- CLI


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the SIM-PERF hot-path benchmarks and append the "
        "results to a persisted baseline file.",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help=f"timed rounds per benchmark (default {DEFAULT_ROUNDS})",
    )
    parser.add_argument(
        "--label", default="current",
        help="label for this entry (e.g. 'seed', 'after')",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"baseline JSON file to append to (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--only", action="append", choices=sorted(BENCHMARKS),
        help="run only this benchmark (repeatable)",
    )
    parser.add_argument(
        "--note", default=None,
        help="free-form annotation stored on the entry",
    )
    args = parser.parse_args(argv)
    run_suite(
        rounds=args.rounds,
        label=args.label,
        output=args.output,
        only=args.only,
        note=args.note,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
