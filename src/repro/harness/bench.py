"""SIM-PERF benchmark driver with a persisted baseline file.

Runs the hot-path benchmark suite (the same scenarios as
``benchmarks/test_simulator_performance.py``) with a plain
``perf_counter`` harness and appends one labelled entry to a JSON
baseline file (default ``BENCH_hotpath.json``).  Each entry records the
environment, the git revision, and per-benchmark timing statistics;
entries after the first also record their speedup relative to the
*first* entry in the file, so committing a seed ("before") entry and a
current ("after") entry documents an optimization's effect.

Usage::

    python -m repro bench --rounds 40 --label after
    python benchmarks/run_bench.py --label seed --output BENCH_hotpath.json
    python -m repro bench --compare after integrity-envelopes
    python -m repro bench --check --output results/bench_ci.json

Speedups are computed on the per-benchmark *minimum* round time — the
standard robust statistic for microbenchmarks, insensitive to GC pauses
and scheduler noise that inflate means.

``--compare A B`` reads two labelled entries back out of the baseline
file and prints a per-benchmark min_ms table with the B-over-A speedup —
no benchmarks are run.  ``--check`` runs the suite and then gates it:
the run fails (non-zero exit) if any benchmark's min_ms exceeds its
noise envelope — with >= 3 accumulated entries, the historical mean
plus ``max(3 * stdev, 2%)`` of that benchmark's own min_ms history;
with fewer entries, a flat ``--gate-threshold`` (default 25%) over the
most recent entry of ``--baseline`` that has that benchmark, or a
specific entry named with ``--baseline-label``.  The gate deliberately
tracks the *accepted current* baseline rather than the all-time best:
old entries may predate feature costs that are now part of the contract
(the integrity envelopes, for instance), and all-time bests measured on
different hardware would make the threshold meaningless.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional

DEFAULT_OUTPUT = "BENCH_hotpath.json"
DEFAULT_ROUNDS = 40
WARMUP_ROUNDS = 3


# --------------------------------------------------------------- benchmarks
#
# Each factory performs one-time setup and returns the callable timed per
# round.  The scenarios deliberately mirror the pytest-benchmark suite in
# benchmarks/test_simulator_performance.py so numbers are comparable.


def _bench_copy_chain_checkpoint() -> Callable[[], object]:
    from repro.db import Database
    from repro.workloads import copy_chain_workload

    db = Database(pages_per_partition=[256], policy="general")

    def run() -> int:
        for op in copy_chain_workload(
            db.layout, seed=2, count=150, chain_length=8
        ):
            db.execute(op)
        return db.checkpoint()

    return run


def _bench_backup_sweep() -> Callable[[], object]:
    from repro.core.config import BackupConfig
    from repro.db import Database

    db = Database(pages_per_partition=[4096], policy="general")
    cfg = BackupConfig(steps=8, pages_per_tick=256)

    def run() -> int:
        db.engine.completed.clear()
        db.start_backup(cfg)
        backup = db.run_backup(cfg)
        if backup.copied_count() != 4096:
            raise AssertionError("sweep did not copy every page")
        return backup.copied_count()

    return run


def _bench_mixed_execute() -> Callable[[], object]:
    from repro.db import Database
    from repro.workloads import mixed_logical_workload

    db = Database(pages_per_partition=[512], policy="general")
    source = mixed_logical_workload(db.layout, seed=1, count=10**9)

    def run() -> int:
        for _ in range(200):
            db.execute(next(source))
        return db.checkpoint()

    return run


def _bench_replay() -> Callable[[], object]:
    from repro.db import Database
    from repro.recovery.crash_recovery import run_crash_recovery
    from repro.workloads import mixed_logical_workload

    db = Database(pages_per_partition=[256], policy="general")
    for op in mixed_logical_workload(db.layout, seed=3, count=3000):
        db.execute(op)
    db.crash()

    def run() -> object:
        outcome = run_crash_recovery(
            db.stable, db.log, scan_start_lsn=1, apply_to_stable=False
        )
        if outcome.replayed + outcome.skipped != 3000:
            raise AssertionError("replay missed records")
        return outcome

    return run


def _bench_partition_sweep(workers: int) -> Callable[[], object]:
    """Full backup sweep over four partitions, ``workers`` threads.

    Each partition models an independent disk arm: ``io_delay_s`` makes
    every bulk span read cost one simulated device access, and
    ``time.sleep`` releases the GIL, so the thread pool overlaps the
    per-partition latencies exactly the way a parallel sweep overlaps
    seeks on a real multi-spindle layout.  The serial/2-worker/4-worker
    triple documents the scaling curve.
    """
    from repro.core.config import BackupConfig
    from repro.db import Database

    db = Database(pages_per_partition=[12, 12, 12, 12], policy="general")
    db.stable.io_delay_s = 0.0004
    cfg = BackupConfig(steps=4, pages_per_tick=48, workers=workers)

    def run() -> int:
        db.engine.completed.clear()
        db.start_backup(cfg)
        backup = db.run_backup(cfg)
        if backup.copied_count() != 48:
            raise AssertionError("sweep did not copy every page")
        return backup.copied_count()

    return run


def _bench_log_append_force(
    streams: int, group_commit: bool
) -> Callable[[], object]:
    """Multi-threaded append+force against a striped WAL.

    Four executor threads each append a record and force it durable, the
    committing pattern group commit exists for.  ``force_delay_s`` makes
    every durability event cost one simulated device sync (``time.sleep``
    releases the GIL).  The three variants document the scaling story:

    * ``single`` — one stream, per-caller sync: every force pays its own
      device sync, serialized (the pre-group-commit baseline);
    * ``gc1``    — one stream, group commit: concurrent forces coalesce
      behind one tick;
    * ``4s``     — four streams plus group commit: appends stop
      contending on a shared lock as well.

    A fresh log per round keeps rounds identical and independent.
    """
    import threading

    from repro.ids import PageId
    from repro.ops.physical import PhysicalWrite
    from repro.wal.multi_log import MultiLogManager

    n_threads, ops_per_thread, delay_s = 8, 30, 0.0005

    def run() -> int:
        log = MultiLogManager(
            streams=streams,
            auto_force=False,
            group_commit=group_commit,
            force_delay_s=delay_s,
        )

        def worker(tid: int) -> None:
            for i in range(ops_per_thread):
                log.append(PhysicalWrite(PageId(tid, i % 64), (tid, i)))
                log.force()

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if log.flushed_lsn != n_threads * ops_per_thread:
            raise AssertionError("log not fully durable after forces")
        return log.flushed_lsn

    return run


def _bench_partition_sweep_file(
    workers: int, executor: str = "thread"
) -> Callable[[], object]:
    """Full backup sweep against the file-backed storage backend.

    Same shape as ``_bench_partition_sweep`` but with no simulated
    ``io_delay_s`` — the cost per span is a real ``os.pread`` (and, for
    ``executor="process"``, a real fork + pickle round trip), so these
    numbers document what the protocol surface costs on actual files.
    Each factory builds one database in a throwaway directory, removed
    at interpreter exit.
    """
    import atexit
    import shutil
    import tempfile

    from repro.core.config import BackupConfig
    from repro.db import Database

    data_dir = tempfile.mkdtemp(prefix="bench-file-")
    atexit.register(shutil.rmtree, data_dir, True)
    db = Database(pages_per_partition=[64, 64, 64, 64], policy="general",
                  backend="file", data_dir=data_dir)
    cfg = BackupConfig(steps=4, pages_per_tick=256, workers=workers,
                       backend="file", data_dir=data_dir,
                       executor=executor)

    def run() -> int:
        db.engine.completed.clear()
        db.start_backup(cfg)
        backup = db.run_backup(cfg)
        if backup.copied_count() != 256:
            raise AssertionError("sweep did not copy every page")
        return backup.copied_count()

    return run


def _bench_log_append_force_file(streams: int) -> Callable[[], object]:
    """Multi-threaded append+force against fsynced on-disk log files.

    The file twin of ``log_append_force_4s``: same 8 threads x 30
    append+force ops, but every force is a real ``os.fsync`` through
    :class:`~repro.storage.file_backend.FileLogDevice` instead of a
    simulated ``force_delay_s`` sleep.  Group commit still coalesces
    concurrent forces — what is measured is how many *device* syncs the
    committing pattern actually pays.
    """
    import atexit
    import shutil
    import tempfile
    import threading

    from repro.ids import PageId
    from repro.ops.physical import PhysicalWrite
    from repro.storage.file_backend import FileLogDevice
    from repro.wal.multi_log import MultiLogManager

    wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
    atexit.register(shutil.rmtree, wal_dir, True)
    n_threads, ops_per_thread = 8, 30

    def run() -> int:
        log = MultiLogManager(
            streams=streams,
            auto_force=False,
            group_commit=True,
            force_delay_s=0.0,
        )
        log.attach_device(FileLogDevice(wal_dir, streams=streams,
                                        truncate=True))

        def worker(tid: int) -> None:
            for i in range(ops_per_thread):
                log.append(PhysicalWrite(PageId(tid, i % 64), (tid, i)))
                log.force()

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if log.flushed_lsn != n_threads * ops_per_thread:
            raise AssertionError("log not fully durable after forces")
        log.device.close()
        return log.flushed_lsn

    return run


def _bench_instant_restore(mode: str) -> Callable[[], object]:
    """Time-to-first-query vs time-to-full-restore after media failure.

    One database of 64 partitions x 64 pages (4096 pages), a completed
    backup, and a post-backup update tail.  ``mode="ttfq"`` measures the
    instant-restore promise: fail the media, begin the restore, and read
    one page — the work is a single page's backup fetch plus its
    media-log slice, independent of database size.  ``mode="full"``
    measures the same failure driven to a complete restore (begin +
    eager 4-worker background + drain).  The acceptance bar is
    ``ttfq * 5 <= full`` at this scale; in practice the gap is orders of
    magnitude because TTFQ is O(1 page) while the full restore is
    O(database).
    """
    from repro.core.config import BackupConfig
    from repro.db import Database
    from repro.ids import PageId
    from repro.ops.physical import PhysicalWrite

    partitions, size = 64, 64
    # ttfq runs with redo_workers=4: TTFQ must stay O(1 page) no matter
    # how recovery replay is parallelised.  The full restore stays
    # serial — its records are trivial pure-CPU physical writes, where
    # fan-out is all coordination overhead and no overlap (the
    # redo_replay_* triple measures the fan-out win on ops with real
    # per-record cost).
    db = Database(
        pages_per_partition=[size] * partitions, policy="general",
        redo_workers=4 if mode == "ttfq" else 1,
    )
    for p in range(partitions):
        for s in range(size):
            db.execute(PhysicalWrite(PageId(p, s), (p, s)))
    db.start_backup(BackupConfig(steps=4, pages_per_tick=1024))
    db.run_backup(BackupConfig(pages_per_tick=1024))
    for i in range(256):
        db.execute(PhysicalWrite(PageId(i % partitions, i % size), ("post", i)))
    probe = PageId(partitions // 2, size // 2)

    def run_ttfq() -> object:
        db.media_failure()
        db.begin_instant_restore(verify=False, eager=False)
        value = db.read(probe)
        if value is None:
            raise AssertionError("probe page read nothing")
        return value

    def run_full() -> object:
        db.media_failure()
        db.begin_instant_restore(verify=False, eager=True, workers=4)
        db.read(probe)
        outcome = db.finish_instant_restore()
        if len(outcome.state) < partitions * size:
            raise AssertionError("full restore missed pages")
        return outcome.replayed

    return run_ttfq if mode == "ttfq" else run_full


def _bench_redo_replay(workers: int) -> Callable[[], object]:
    """Recovery replay fanned out to the parallel redo pool.

    Builds a 640-record log whose transforms each cost one simulated
    device/compute access (``time.sleep`` releases the GIL, standing in
    for the page fetch + apply cost a real redo pays per record), spread
    over 8 partitions so the conflict DAG is wide: pages repeat every
    256 records, so dependency chains are short and almost every record
    is single-partition (the lock-free fast path).  A sprinkle of
    cross-partition logical ops keeps the coordinator lane honest.  The
    serial/2-worker/4-worker triple documents the replay scaling curve
    the same way ``partition_sweep_*`` does for the copy engine.
    """
    from repro.ids import PageId
    from repro.ops.physiological import PhysiologicalWrite
    from repro.ops.logical import GeneralLogicalOp
    from repro.ops.registry import make_default_registry
    from repro.recovery.parallel_redo import make_replayer
    from repro.wal.records import LogRecord

    count, partitions, slots, delay_s = 640, 8, 32, 0.0002
    registry = make_default_registry()

    def slow_stamp(value, tag):
        time.sleep(delay_s)
        return (tag, value)

    registry.register("slow_stamp", slow_stamp)
    records = []
    for i in range(1, count + 1):
        if i % 80 == 0:
            # Cross-partition op: reads two partitions, writes one —
            # applied on the coordinator's ordered lane.
            op = GeneralLogicalOp(
                reads=[PageId(i % partitions, 0),
                       PageId((i + 1) % partitions, 1)],
                writes=[PageId(i % partitions, 2)],
                transform="concat_sorted",
            )
        else:
            op = PhysiologicalWrite(
                PageId(i % partitions, (i // partitions) % slots),
                "slow_stamp", (i,), registry=registry,
            )
        records.append(LogRecord(i, op))
    expected = count - count // 80

    def run() -> object:
        replayer = make_replayer(initial_value=0, redo_workers=workers)
        stats = replayer.replay(records, {})
        if stats.ops_replayed < expected:
            raise AssertionError("replay missed records")
        return stats.ops_replayed

    return run


def _bench_incremental_sweep() -> Callable[[], object]:
    """Incremental archive sweep at 10% churn on a 4096-page database.

    The archive tier's scaling claim: an incremental generation costs
    pages-dirtied, not database-size.  Setup seeds all 64x64 pages and
    seals a base full backup; each round dirties ~10% of the pages
    (409), runs an incremental sweep, and pins the copy set — every
    dirtied page captured, and at least 5x fewer pages than the full
    sweep would copy.  The chain is trimmed back to the base between
    rounds so every round measures exactly one link.
    """
    import random

    from repro.core.config import BackupConfig
    from repro.db import Database
    from repro.ids import PageId
    from repro.ops.physical import PhysicalWrite

    partitions, size = 64, 64
    total = partitions * size
    churn = total // 10
    db = Database(pages_per_partition=[size] * partitions, policy="general")
    for p in range(partitions):
        for s in range(size):
            db.execute(PhysicalWrite(PageId(p, s), (p, s)))
    db.start_backup(BackupConfig(steps=4, pages_per_tick=1024))
    db.run_backup(BackupConfig(pages_per_tick=1024))
    rng = random.Random(99)
    round_no = [0]

    def run() -> object:
        del db.engine.completed[1:]  # keep the base; measure one link
        round_no[0] += 1
        dirtied = set()
        while len(dirtied) < churn:
            dirtied.add(PageId(rng.randrange(partitions),
                               rng.randrange(size)))
        for pid in dirtied:
            db.execute(PhysicalWrite(pid, ("churn", round_no[0])))
        db.start_backup(BackupConfig(steps=4, pages_per_tick=1024,
                                     incremental=True))
        copied = db.run_backup(
            BackupConfig(pages_per_tick=1024)
        ).copied_count()
        if copied < churn:
            raise AssertionError(
                f"incremental sweep missed dirtied pages: {copied}/{churn}"
            )
        if copied * 5 > total:
            raise AssertionError(
                f"incremental sweep copied {copied} of {total} pages; "
                "expected at least 5x fewer than a full sweep"
            )
        return copied

    return run


BENCHMARKS: Dict[str, Callable[[], Callable[[], object]]] = {
    "copy_chain_checkpoint": _bench_copy_chain_checkpoint,
    "backup_sweep": _bench_backup_sweep,
    "mixed_execute": _bench_mixed_execute,
    "replay": _bench_replay,
    "partition_sweep_serial": lambda: _bench_partition_sweep(1),
    "partition_sweep_2w": lambda: _bench_partition_sweep(2),
    "partition_sweep_4w": lambda: _bench_partition_sweep(4),
    "instant_restore_ttfq": lambda: _bench_instant_restore("ttfq"),
    "instant_restore_full": lambda: _bench_instant_restore("full"),
    "redo_replay_serial": lambda: _bench_redo_replay(1),
    "redo_replay_2w": lambda: _bench_redo_replay(2),
    "redo_replay_4w": lambda: _bench_redo_replay(4),
    "incremental_sweep": _bench_incremental_sweep,
    "log_append_force_single": lambda: _bench_log_append_force(1, False),
    "log_append_force_gc1": lambda: _bench_log_append_force(1, True),
    "log_append_force_4s": lambda: _bench_log_append_force(4, True),
    "partition_sweep_file_serial": lambda: _bench_partition_sweep_file(1),
    "partition_sweep_file_4w": lambda: _bench_partition_sweep_file(4),
    "partition_sweep_file_4p":
        lambda: _bench_partition_sweep_file(4, executor="process"),
    "log_append_force_file_4s": lambda: _bench_log_append_force_file(4),
}

#: Benchmarks that hit the file-backed storage backend (real fds and
#: fsyncs).  ``--backend memory`` (the default) skips them so a casual
#: bench run stays free of filesystem noise; ``--backend file`` runs
#: only them; ``--backend all`` runs everything.
FILE_BENCHMARKS = frozenset(
    name for name in BENCHMARKS if "_file" in name
)


# ------------------------------------------------------------------- timing


def time_benchmark(
    factory: Callable[[], Callable[[], object]],
    rounds: int,
    warmup: int = WARMUP_ROUNDS,
) -> Dict[str, float]:
    """Time ``rounds`` calls of the factory's callable; stats in ms."""
    run = factory()
    for _ in range(warmup):
        run()
    timings: List[float] = []
    perf_counter = time.perf_counter
    for _ in range(rounds):
        start = perf_counter()
        run()
        timings.append(perf_counter() - start)
    timings_ms = [t * 1000.0 for t in timings]
    return {
        "rounds": rounds,
        "min_ms": round(min(timings_ms), 4),
        "median_ms": round(statistics.median(timings_ms), 4),
        "mean_ms": round(statistics.fmean(timings_ms), 4),
        "stdev_ms": round(
            statistics.stdev(timings_ms) if rounds > 1 else 0.0, 4
        ),
    }


# -------------------------------------------------------------- environment


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def collect_environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_revision": _git_revision(),
    }


# ------------------------------------------------------------- persistence


def _load(path: str) -> Dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path} is not a benchmark baseline file")
        return data
    return {
        "benchmark": "SIM-PERF hot paths",
        "statistic": "speedups computed on min_ms",
        "entries": [],
    }


def _speedups(baseline: Dict, current: Dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name, stats in current.items():
        base = baseline.get(name)
        if base and base.get("min_ms") and stats.get("min_ms"):
            out[name] = round(base["min_ms"] / stats["min_ms"], 2)
    return out


# ------------------------------------------------------- compare / gate

#: Default regression-gate tolerance: fail a min_ms more than 25% above
#: the gate baseline's.
REGRESSION_THRESHOLD = 0.25


def _entry_by_label(data: Dict, label: str) -> Dict:
    matches = [e for e in data.get("entries", [])
               if e.get("label") == label]
    if not matches:
        known = sorted({e.get("label", "?") for e in data.get("entries", [])})
        raise ValueError(
            f"no entry labelled {label!r} in baseline file (have: {known})"
        )
    return matches[-1]


def compare_entries(
    path: str,
    label_a: str,
    label_b: str,
    quiet: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Compare two labelled entries of a baseline file, benchmark by
    benchmark.

    Returns ``{benchmark: {"a_min_ms", "b_min_ms", "speedup"}}`` over the
    benchmarks both entries ran; ``speedup`` > 1 means B is faster than
    A.  When two entries share a label the most recent one wins.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no baseline file at {path}")
    data = _load(path)
    entry_a = _entry_by_label(data, label_a)
    entry_b = _entry_by_label(data, label_b)
    results_a = entry_a.get("results", {})
    results_b = entry_b.get("results", {})
    rows: Dict[str, Dict[str, float]] = {}
    for name, stats_a in results_a.items():
        stats_b = results_b.get(name)
        if not stats_b:
            continue
        a_ms, b_ms = stats_a.get("min_ms"), stats_b.get("min_ms")
        if not a_ms or not b_ms:
            continue
        rows[name] = {
            "a_min_ms": a_ms,
            "b_min_ms": b_ms,
            "speedup": round(a_ms / b_ms, 2),
        }
    if not quiet:
        width = max((len(n) for n in rows), default=9)
        print(f"{path}: '{label_a}' vs '{label_b}' (min_ms)")
        print(f"  {'benchmark'.ljust(width)}  {label_a[:12]:>12}  "
              f"{label_b[:12]:>12}  speedup")
        for name, row in rows.items():
            print(f"  {name.ljust(width)}  {row['a_min_ms']:>12.4f}  "
                  f"{row['b_min_ms']:>12.4f}  {row['speedup']:>6.2f}x")
        only_a = sorted(set(results_a) - set(rows))
        only_b = sorted(set(results_b) - set(rows))
        if only_a:
            print(f"  (only in '{label_a}': {', '.join(only_a)})")
        if only_b:
            print(f"  (only in '{label_b}': {', '.join(only_b)})")
    return rows


def check_regressions(
    results: Dict[str, Dict[str, float]],
    baseline_path: str = DEFAULT_OUTPUT,
    baseline_label: Optional[str] = None,
    threshold: float = REGRESSION_THRESHOLD,
    quiet: bool = False,
) -> List[str]:
    """The CI regression gate.  Returns the benchmarks that regressed.

    With three or more accumulated entries for a benchmark the limit is
    a **noise envelope scaled to that benchmark's own history**:
    ``mean + max(3 * stdev, 2% of mean)`` over the historical min_ms
    values — a stable benchmark gets a tight gate, a noisy one
    (thread-scheduling benchmarks, for instance) automatically gets the
    slack it needs.  With fewer than three entries (or when
    ``baseline_label`` pins the gate to one entry) it falls back to the
    flat ``threshold`` (default 25%) over the most recent entry's
    min_ms.  Benchmarks with no baseline number are reported as new and
    always pass.
    """
    if not os.path.exists(baseline_path):
        raise FileNotFoundError(f"no baseline file at {baseline_path}")
    data = _load(baseline_path)
    entries = data.get("entries", [])
    if baseline_label is not None:
        entries = [_entry_by_label(data, baseline_label)]
    history: Dict[str, List[float]] = {}
    for entry in entries:
        for name, stats in entry.get("results", {}).items():
            if stats.get("min_ms"):
                history.setdefault(name, []).append(stats["min_ms"])
    failures: List[str] = []
    for name, stats in results.items():
        ms = stats.get("min_ms")
        if not ms:
            continue
        past = history.get(name)
        if not past:
            if not quiet:
                print(f"  gate {name}: {ms} ms (new benchmark, no baseline)")
            continue
        if len(past) >= 3:
            mean = statistics.fmean(past)
            spread = statistics.stdev(past)
            limit = mean + max(3.0 * spread, 0.02 * mean)
            described = (f"envelope over {len(past)} entries "
                         f"(mean {mean:.4f} ms, stdev {spread:.4f} ms)")
        else:
            base = past[-1]
            limit = base * (1.0 + threshold)
            described = f"baseline {base} ms (flat {threshold:.0%} gate)"
        ok = ms <= limit
        if not quiet:
            print(f"  gate {name}: {ms} ms vs {described} "
                  f"(limit {limit:.4f} ms) {'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(name)
    return failures


def run_suite(
    rounds: int = DEFAULT_ROUNDS,
    label: str = "current",
    output: str = DEFAULT_OUTPUT,
    only: Optional[List[str]] = None,
    quiet: bool = False,
    note: Optional[str] = None,
    backend: str = "memory",
) -> Dict:
    """Run the suite, append an entry to ``output``, return the entry.

    ``note`` attaches a free-form annotation to the entry — e.g. what
    changed since the previous entry and the measured overhead delta.
    ``backend`` filters the suite: ``"memory"`` (default) runs the
    simulated hot paths, ``"file"`` the :data:`FILE_BENCHMARKS`,
    ``"all"`` both.  An explicit ``only`` list bypasses the filter.
    """
    if backend not in ("memory", "file", "all"):
        raise ValueError(f"unknown backend filter: {backend!r}")
    if only:
        names = list(only)
    else:
        names = [
            n for n in BENCHMARKS
            if backend == "all"
            or (n in FILE_BENCHMARKS) == (backend == "file")
        ]
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {unknown}")
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        if not quiet:
            print(f"  {name} ... ", end="", flush=True)
        results[name] = time_benchmark(BENCHMARKS[name], rounds)
        if not quiet:
            print(
                f"min {results[name]['min_ms']} ms, "
                f"median {results[name]['median_ms']} ms"
            )
    data = _load(output)
    entry: Dict = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": collect_environment(),
        "results": results,
    }
    if note:
        entry["note"] = note
    if data["entries"]:
        first = data["entries"][0]
        entry["baseline_label"] = first["label"]
        entry["speedup_vs_baseline"] = _speedups(
            first.get("results", {}), results
        )
    data["entries"].append(entry)
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    if not quiet:
        if "speedup_vs_baseline" in entry:
            print(
                f"speedup vs '{entry['baseline_label']}':",
                json.dumps(entry["speedup_vs_baseline"]),
            )
        print(f"wrote entry '{label}' to {output}")
    return entry


# -------------------------------------------------------------------- CLI


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the SIM-PERF hot-path benchmarks and append the "
        "results to a persisted baseline file.",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help=f"timed rounds per benchmark (default {DEFAULT_ROUNDS})",
    )
    parser.add_argument(
        "--label", default="current",
        help="label for this entry (e.g. 'seed', 'after')",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"baseline JSON file to append to (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--only", action="append", choices=sorted(BENCHMARKS),
        help="run only this benchmark (repeatable)",
    )
    parser.add_argument(
        "--note", default=None,
        help="free-form annotation stored on the entry",
    )
    parser.add_argument(
        "--backend", choices=("memory", "file", "all"), default="memory",
        help="which benchmarks to run: the simulated hot paths (memory, "
        "default), the file-backed storage benchmarks (file), or both "
        "(all)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("LABEL_A", "LABEL_B"), default=None,
        help="compare two labelled entries of the baseline file and exit "
        "(runs no benchmarks)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="after running, gate min_ms against --baseline; exit non-zero "
        "on any regression past --gate-threshold",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_OUTPUT,
        help="baseline file the --check gate reads "
        f"(default {DEFAULT_OUTPUT}); keep --output pointed elsewhere so "
        "a gated run never pollutes its own baseline",
    )
    parser.add_argument(
        "--baseline-label", default=None,
        help="gate against this labelled entry instead of the most recent",
    )
    parser.add_argument(
        "--gate-threshold", type=float, default=REGRESSION_THRESHOLD,
        help="allowed fractional min_ms regression before --check fails "
        f"(default {REGRESSION_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    if args.compare:
        compare_entries(args.output, args.compare[0], args.compare[1])
        return 0
    entry = run_suite(
        rounds=args.rounds,
        label=args.label,
        output=args.output,
        only=args.only,
        note=args.note,
        backend=args.backend,
    )
    if args.check:
        failures = check_regressions(
            entry["results"],
            baseline_path=args.baseline,
            baseline_label=args.baseline_label,
            threshold=args.gate_threshold,
        )
        if failures:
            print(f"REGRESSION GATE FAILED: {', '.join(failures)}")
            return 1
        print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
