"""Result artifacts: write experiment series to CSV files.

Benchmarks print human tables; this module persists the same data as
CSV so plots and regressions can be made outside the test run:

    from repro.harness import artifacts
    artifacts.write_csv("results/fig5.csv", ["N", "general", "tree"], rows)
    artifacts.write_fig5("results")   # the full Figure 5 sweep
"""

from __future__ import annotations

import csv
import os
from typing import Any, Iterable, List, Sequence


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Write one CSV file, creating parent directories; returns path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def write_fig5(
    directory: str,
    step_counts=(1, 2, 4, 8, 16, 32),
    seeds=(1, 2, 3),
    pages: int = 1024,
) -> str:
    """Run the Figure 5 sweep and persist it as CSV."""
    from repro.harness.experiments import fig5_sweep

    points = fig5_sweep(step_counts=step_counts, seeds=seeds, pages=pages)
    rows: List[Sequence[Any]] = [
        (p.kind, p.steps, f"{p.measured:.6f}", f"{p.analytic:.6f}",
         p.samples)
        for p in points
    ]
    return write_csv(
        os.path.join(directory, "fig5.csv"),
        ["kind", "steps", "measured", "analytic", "samples"],
        rows,
    )


def write_fig4(directory: str, size: int = 24) -> str:
    """Persist the Figure 4 decision grid as CSV (1 = Iw/oF needed)."""
    from repro.harness.experiments import fig4_grid

    grids = fig4_grid(size=size, done=size // 3, pending=2 * size // 3)
    rows = [
        (x, s, int(grids["policy"][x][s]), int(grids["analytic"][x][s]))
        for x in range(size)
        for s in range(size)
    ]
    return write_csv(
        os.path.join(directory, "fig4.csv"),
        ["x_pos", "succ_pos", "policy_logs", "analytic_logs"],
        rows,
    )


def write_economy(directory: str, keys: int = 1200) -> str:
    from repro.harness.experiments import logging_economy

    rows = []
    for order in (16, 64, 128):
        for result in logging_economy(keys=keys, order=order):
            rows.append(
                (
                    order, result.logging, result.splits,
                    result.split_bytes, result.total_bytes,
                )
            )
    return write_csv(
        os.path.join(directory, "logging_economy.csv"),
        ["order", "logging", "splits", "split_bytes", "total_bytes"],
        rows,
    )


def write_all(directory: str = "results", quick: bool = False) -> List[str]:
    """Persist every figure's data; returns the written paths."""
    if quick:
        return [
            write_fig5(directory, step_counts=(1, 2, 4, 8), seeds=(1,),
                       pages=512),
            write_fig4(directory, size=12),
            write_economy(directory, keys=400),
        ]
    return [
        write_fig5(directory),
        write_fig4(directory),
        write_economy(directory),
    ]
