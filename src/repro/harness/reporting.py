"""Plain-text tables for benchmark output.

The benchmarks print the same rows/series the paper's figures show; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule."""
    table = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in table
    ]
    return "\n".join([line, rule, *body])


def format_series(title: str, pairs: Sequence[tuple]) -> str:
    """A named (x, y) series as an aligned two-column block."""
    lines = [title]
    for x, y in pairs:
        lines.append(f"  {_fmt(x):>8}  {_fmt(y)}")
    return "\n".join(lines)
