"""Dependency-aware parallel redo: fan replay out to a worker pool.

Serial :class:`~repro.recovery.redo.RedoReplayer` walks the log slice in
LSN order — one record at a time, even when consecutive records touch
disjoint pages.  This module replays the same slice *conflict-serially*
instead: a record depends on an earlier record iff the two share a page
and at least one of them writes it (WW, RW and WR conflicts; RR pairs
commute).  Records whose dependencies have all been applied are *ready*
and may run concurrently; the dependency DAG guarantees every per-page
read and write happens in exactly the order the serial replay would
have produced, so the final ``{PageId: PageVersion}`` state, the
:class:`~repro.recovery.redo.ReplayStats` counters, and the poison
classification are byte-identical to the serial replayer's (pinned by
``tests/property/test_parallel_redo.py``).

Scheduling mirrors the incremental ready-queue machinery of
:class:`~repro.recovery.refined_write_graph.DynamicWriteGraph`: an
indegree count plus successor list per record, with completions
releasing successors into the ready queue.  Two execution lanes:

* **single-partition fast path** — a record whose readset ∪ writeset
  lives inside one layout partition is handed to the thread pool and
  applied lock-free: the DAG already serialises every conflicting
  access, and CPython dict reads/writes are GIL-atomic, so no
  per-partition latch is needed;
* **coordinator-ordered cross-partition lane** — records spanning
  partitions are applied on the coordinating thread, lowest LSN first
  among the ready ones, so multi-partition effects install in log
  order relative to each other.

Stats are assembled from per-record outcome slots *in record order*
after the fan-out completes, which keeps ``poisoned`` page order and
every counter identical to the serial loop regardless of completion
order.  ``REDO_OP`` trace events gain a ``worker`` field (0 = the
coordinator, 1..N = pool threads); per-worker :class:`Metrics` shards
are merged deterministically via ``shard()``/``absorb()``.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Any, Dict, Iterable, List, MutableMapping, Optional, Tuple

from repro.ids import NULL_LSN, PageId
from repro.obs.events import REDO_OP
from repro.obs.tracer import NULL_TRACER
from repro.recovery.redo import (
    POISON,
    REPLAY_CHUNK,
    RedoReplayer,
    ReplayStats,
)
from repro.storage.page import PageVersion
from repro.wal.records import LogRecord

#: Outcome slot for a record the LSN test skipped.
_SKIPPED = object()


def make_replayer(
    initial_value: Any = None,
    tracer=None,
    redo_workers: int = 1,
    metrics=None,
):
    """Serial replayer at 1 worker, parallel fan-out above.

    Every log consumer (crash / media / selective / chain recovery)
    builds its replayer here so the ``redo_workers`` knob reaches all
    of them through one seam; both returned classes expose the same
    ``replay(records, state) -> ReplayStats`` contract.
    """
    if redo_workers <= 1:
        return RedoReplayer(initial_value=initial_value, tracer=tracer)
    return ParallelRedoReplayer(
        initial_value=initial_value,
        tracer=tracer,
        workers=redo_workers,
        metrics=metrics,
    )


class ParallelRedoReplayer:
    """Replays a log slice on a worker pool, serial-equivalent outcome.

    Drop-in for :class:`RedoReplayer`: same constructor defaults, same
    ``replay`` signature, byte-identical state/stats/poison results.
    ``workers`` is the thread-pool width; the calling thread acts as
    the coordinator (graph bookkeeping + cross-partition applies).
    """

    def __init__(
        self,
        initial_value: Any = None,
        tracer=None,
        workers: int = 2,
        metrics=None,
    ):
        if workers < 2:
            raise ValueError(
                "ParallelRedoReplayer needs workers >= 2; use "
                "RedoReplayer (or make_replayer) for the serial path"
            )
        self._initial_value = initial_value
        self.tracer = tracer or NULL_TRACER
        self.workers = workers
        self.metrics = metrics

    # -- state access (identical semantics to RedoReplayer._version) ----

    def _version(
        self, state: MutableMapping[PageId, PageVersion], page: PageId
    ) -> PageVersion:
        version = state.get(page)
        if version is None:
            # Benign race: two readers of a never-written page may both
            # materialize PageVersion(initial, NULL_LSN); the values are
            # equal and dict stores are GIL-atomic, so either install
            # yields the same state.  Conflicting (written) pages are
            # serialised by the dependency DAG and cannot race here.
            version = PageVersion(self._initial_value, NULL_LSN)
            state[page] = version
        return version

    # -- public API -----------------------------------------------------

    def replay(
        self,
        records: Iterable[LogRecord],
        state: MutableMapping[PageId, PageVersion],
    ) -> ReplayStats:
        stats, _ = self._execute(records, state, capture_effects=False)
        return stats

    def replay_with_effects(
        self,
        records: Iterable[LogRecord],
        state: MutableMapping[PageId, PageVersion],
    ) -> Tuple[ReplayStats, List[Optional[Dict[PageId, PageVersion]]]]:
        """Replay and also return one effect slot per record.

        A slot is ``None`` for a skipped record, else the ``{page:
        installed PageVersion}`` mapping for its stale pages — exactly
        what the instant-restore slice evaluator memoizes, letting its
        background sweep prime the whole memo table in parallel.
        """
        return self._execute(records, state, capture_effects=True)

    # -- graph construction --------------------------------------------

    @staticmethod
    def _build_graph(records: List[LogRecord]):
        """Conflict DAG over record indices (WW, RW and WR edges).

        One LSN-order sweep with a per-page last-writer index plus the
        readers seen since that write: record ``j`` depends on the last
        writer of every page it touches, and a write additionally waits
        for the reads of the previous version it would clobber.
        """
        n = len(records)
        indegree = [0] * n
        successors: List[List[int]] = [[] for _ in range(n)]
        single_partition = [False] * n
        last_writer: Dict[PageId, int] = {}
        readers: Dict[PageId, List[int]] = {}
        for i, record in enumerate(records):
            op = record.op
            deps = set()
            partitions = set()
            for page in op.writeset:
                partitions.add(page.partition)
                writer = last_writer.get(page)
                if writer is not None:
                    deps.add(writer)
                deps.update(readers.get(page, ()))
            for page in op.readset:
                partitions.add(page.partition)
                writer = last_writer.get(page)
                if writer is not None:
                    deps.add(writer)
            deps.discard(i)
            for page in op.writeset:
                last_writer[page] = i
                readers[page] = []
            for page in op.readset:
                if last_writer.get(page) != i:
                    readers.setdefault(page, []).append(i)
            for dep in deps:
                successors[dep].append(i)
            indegree[i] = len(deps)
            single_partition[i] = len(partitions) <= 1
        return indegree, successors, single_partition

    # -- one replay iteration (statement-for-statement serial clone) ----

    def _apply_record(
        self,
        index: int,
        record: LogRecord,
        state: MutableMapping[PageId, PageVersion],
        outcomes: list,
        effects,
        worker_id: int,
        shard,
    ) -> None:
        tracer = self.tracer
        trace = tracer.enabled
        op = record.op
        stale = [
            page
            for page in op.writeset
            if self._version(state, page).page_lsn < record.lsn
        ]
        if not stale:
            outcomes[index] = _SKIPPED
            if trace:
                tracer.emit(
                    REDO_OP, lsn=record.lsn, action="skip", worker=worker_id
                )
            return
        partial = len(stale) < len(op.writeset)
        reads: Dict[PageId, Any] = {
            page: self._version(state, page).value for page in op.readset
        }
        poisoned_here = False
        try:
            result = op.apply(reads)
        except Exception:
            result = {page: POISON for page in stale}
            poisoned_here = True
        if trace:
            tracer.emit(
                REDO_OP,
                lsn=record.lsn,
                action="replay",
                stale=len(stale),
                writeset=len(op.writeset),
                poisoned=poisoned_here,
                worker=worker_id,
            )
        installed: Dict[PageId, PageVersion] = {}
        for page in stale:
            version = PageVersion.__new__(PageVersion)
            # Bypass value checking: POISON and arbitrary replay results
            # are stored as-is so the final verification sees them.
            object.__setattr__(version, "value", result[page])
            object.__setattr__(version, "page_lsn", record.lsn)
            state[page] = version
            installed[page] = version
        outcomes[index] = (partial, stale if poisoned_here else None)
        if effects is not None:
            effects[index] = installed
        if shard is not None:
            if worker_id == 0:
                shard.redo_ops_coordinated += 1
            else:
                shard.redo_ops_fast_path += 1

    # -- scheduling -----------------------------------------------------

    def _execute(
        self,
        records: Iterable[LogRecord],
        state: MutableMapping[PageId, PageVersion],
        capture_effects: bool,
    ):
        # Chunked materialization: pull the (possibly heapq.merge-backed)
        # scan in blocks rather than one next() per record.
        record_list: List[LogRecord] = []
        source = iter(records)
        while True:
            block = list(islice(source, REPLAY_CHUNK))
            if not block:
                break
            record_list.extend(block)
        n = len(record_list)
        effects: Optional[list] = [None] * n if capture_effects else None
        if n == 0:
            return ReplayStats(), effects

        indegree, successors, single_partition = self._build_graph(
            record_list
        )
        outcomes: list = [None] * n
        metrics = self.metrics
        shards: Dict[int, Any] = {}
        worker_ids: Dict[int, int] = {threading.get_ident(): 0}

        cond = threading.Condition()
        ready_single: deque = deque()
        ready_cross: List[int] = []
        done = [0]
        errors: List[BaseException] = []
        pool_box: List[Any] = [None]

        def worker_context():
            ident = threading.get_ident()
            with cond:
                worker_id = worker_ids.setdefault(ident, len(worker_ids))
                shard = None
                if metrics is not None:
                    shard = shards.get(worker_id)
                    if shard is None:
                        shard = shards[worker_id] = metrics.shard()
            return worker_id, shard

        def run_one(index: int, worker_id: int, shard) -> None:
            try:
                self._apply_record(
                    index,
                    record_list[index],
                    state,
                    outcomes,
                    effects,
                    worker_id,
                    shard,
                )
            except BaseException as exc:  # op.apply errors are handled
                with cond:  # inside; anything else aborts the replay.
                    errors.append(exc)
                    cond.notify_all()
                return
            newly_single = 0
            with cond:
                done[0] += 1
                if not errors:
                    for succ in successors[index]:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            if single_partition[succ]:
                                ready_single.append(succ)
                                newly_single += 1
                            else:
                                heapq.heappush(ready_cross, succ)
                cond.notify_all()
            # One pool task per single record that just became ready: a
            # task pops exactly one queue entry, so submissions and
            # queue appends stay matched and nobody has to poll.
            for _ in range(newly_single):
                submit_single()

        def pool_task() -> None:
            with cond:
                if errors or not ready_single:
                    return
                index = ready_single.popleft()
            worker_id, shard = worker_context()
            run_one(index, worker_id, shard)

        def submit_single() -> None:
            try:
                pool_box[0].submit(pool_task)
            except RuntimeError:
                # Pool already shutting down: an error aborted the
                # replay and the coordinator is tearing down.
                pass

        seed_single = 0
        for i in range(n):
            if indegree[i] == 0:
                if single_partition[i]:
                    ready_single.append(i)
                    seed_single += 1
                else:
                    heapq.heappush(ready_cross, i)

        coordinator_shard = None
        if metrics is not None:
            coordinator_shard = shards[0] = metrics.shard()

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="redo"
        ) as pool:
            pool_box[0] = pool
            for _ in range(seed_single):
                submit_single()
            while True:
                with cond:
                    while not errors and done[0] < n and not ready_cross:
                        cond.wait()
                    if errors or not ready_cross:
                        break
                    index = heapq.heappop(ready_cross)
                run_one(index, 0, coordinator_shard)

        if errors:
            raise errors[0]

        if metrics is not None:
            for worker_id in sorted(shards):
                metrics.absorb(shards[worker_id])

        stats = ReplayStats()
        stats.records_seen = n
        for outcome in outcomes:
            if outcome is _SKIPPED:
                stats.ops_skipped += 1
                continue
            partial, poisoned_pages = outcome
            stats.ops_replayed += 1
            if partial:
                stats.partial_replays += 1
            if poisoned_pages:
                stats.poisoned.extend(poisoned_pages)
        return stats, effects
