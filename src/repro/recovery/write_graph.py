"""The "intersecting writes" write graph W (section 2.4).

W translates installation order on operations into flush order on pages.
It is built from an installation graph by two collapses:

1. **intersecting writes** — operations whose write sets intersect land in
   the same node (transitively);
2. **strongly connected regions** — cycles among the resulting nodes are
   collapsed so the final graph is acyclic and hence a feasible flush
   order.

Each node n carries ``ops(n)`` and ``vars(n) = Writes(n)``: installing
ops(n) requires atomically flushing all of vars(n).  The paper's complaint
about W — ``|vars(n)|`` grows monotonically, forcing ever larger atomic
flushes — is visible directly in the structures built here, and is what
the refined graph rW (and identity writes) fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import WriteGraphError
from repro.ids import LSN, PageId
from repro.recovery.installation_graph import InstallationGraph
from repro.wal.records import LogRecord


@dataclass
class WriteGraphNode:
    """One node of a (static) write graph."""

    node_id: int
    ops: FrozenSet[LSN]
    vars: FrozenSet[PageId]
    preds: Set[int] = field(default_factory=set)
    succs: Set[int] = field(default_factory=set)

    def __repr__(self):
        return (
            f"WGNode({self.node_id}, ops={sorted(self.ops)}, "
            f"vars={sorted(map(str, self.vars))})"
        )


class _UnionFind:
    def __init__(self):
        self._parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            root = self.find(parent)
            self._parent[x] = root
            return root
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _strongly_connected_components(
    vertices: Sequence[int], succs: Dict[int, Set[int]]
) -> List[List[int]]:
    """Tarjan's algorithm, iterative to avoid recursion limits."""
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    for root in vertices:
        if root in index:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, child_idx = work.pop()
            if child_idx == 0:
                index[v] = lowlink[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            recurse = False
            children = sorted(succs.get(v, ()))
            for i in range(child_idx, len(children)):
                w = children[i]
                if w not in index:
                    work.append((v, i + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if recurse:
                continue
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


def _collapse(
    members: Dict[int, FrozenSet[LSN]],
    vars_of: Dict[int, FrozenSet[PageId]],
    succs: Dict[int, Set[int]],
    partition: List[List[int]],
) -> List[WriteGraphNode]:
    """Collapse a graph with respect to a partition of its vertices."""
    class_of: Dict[int, int] = {}
    for class_id, group in enumerate(partition):
        for vertex in group:
            class_of[vertex] = class_id
    nodes: List[WriteGraphNode] = []
    for class_id, group in enumerate(partition):
        ops: Set[LSN] = set()
        vars_: Set[PageId] = set()
        for vertex in group:
            ops |= members[vertex]
            vars_ |= vars_of[vertex]
        nodes.append(
            WriteGraphNode(class_id, frozenset(ops), frozenset(vars_))
        )
    for vertex, out in succs.items():
        src = class_of[vertex]
        for target in out:
            dst = class_of[target]
            if src != dst:
                nodes[src].succs.add(dst)
                nodes[dst].preds.add(src)
    return nodes


def build_intersecting_writes_graph(
    records: Sequence[LogRecord],
    installation_graph: InstallationGraph = None,
) -> List[WriteGraphNode]:
    """Build W for a log-record sequence; returns its (acyclic) nodes."""
    graph = installation_graph or InstallationGraph(records)

    # First collapse: union operations whose write sets intersect.
    uf = _UnionFind()
    writer_of: Dict[PageId, LSN] = {}
    for record in records:
        for page in record.op.writeset:
            if page in writer_of:
                uf.union(record.lsn, writer_of[page])
            writer_of[page] = record.lsn
    groups: Dict[int, List[LSN]] = {}
    for record in records:
        groups.setdefault(uf.find(record.lsn), []).append(record.lsn)

    # Intermediate graph over the first-collapse classes.
    class_ids = {root: i for i, root in enumerate(sorted(groups))}
    members: Dict[int, FrozenSet[LSN]] = {}
    vars_of: Dict[int, FrozenSet[PageId]] = {}
    succs: Dict[int, Set[int]] = {i: set() for i in class_ids.values()}
    by_lsn = {r.lsn: r for r in records}
    lsn_class: Dict[LSN, int] = {}
    for root, lsns in groups.items():
        cid = class_ids[root]
        members[cid] = frozenset(lsns)
        vars_of[cid] = frozenset().union(
            *(by_lsn[lsn].op.writeset for lsn in lsns)
        )
        for lsn in lsns:
            lsn_class[lsn] = cid
    for edge in graph.edges:
        src, dst = lsn_class[edge.src], lsn_class[edge.dst]
        if src != dst:
            succs[src].add(dst)

    # Second collapse: strongly connected regions → acyclic graph.
    components = _strongly_connected_components(
        sorted(succs), {k: set(v) for k, v in succs.items()}
    )
    nodes = _collapse(members, vars_of, succs, components)
    _assert_acyclic(nodes)
    return nodes


def _assert_acyclic(nodes: List[WriteGraphNode]) -> None:
    """Kahn's algorithm as a sanity check after the second collapse."""
    in_deg = {n.node_id: len(n.preds) for n in nodes}
    queue = [nid for nid, d in in_deg.items() if d == 0]
    by_id = {n.node_id: n for n in nodes}
    seen = 0
    while queue:
        nid = queue.pop()
        seen += 1
        for succ in by_id[nid].succs:
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                queue.append(succ)
    if seen != len(nodes):
        raise WriteGraphError("write graph is cyclic after second collapse")


def topological_flush_order(nodes: List[WriteGraphNode]) -> List[WriteGraphNode]:
    """One feasible flush order for a static write graph (for tests)."""
    by_id = {n.node_id: n for n in nodes}
    in_deg = {n.node_id: len(n.preds) for n in nodes}
    ready = sorted(nid for nid, d in in_deg.items() if d == 0)
    order: List[WriteGraphNode] = []
    while ready:
        nid = ready.pop(0)
        order.append(by_id[nid])
        for succ in sorted(by_id[nid].succs):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(nodes):
        raise WriteGraphError("cycle encountered computing flush order")
    return order
