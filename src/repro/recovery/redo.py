"""LSN-based redo test and log replay (sections 2.1, 2.3).

Replay applies log records over a page-version mapping in *conflict
order*: this serial replayer walks the slice in LSN order, and the
dependency-aware :class:`~repro.recovery.parallel_redo.ParallelRedoReplayer`
applies non-conflicting records concurrently — the contract either way
is a serial-equivalent outcome, i.e. state, stats and poison sets as if
every record ran in LSN order.  The redo test is the usual LSN
comparison: an operation with LSN ``L`` is replayed against target page
X iff ``page_lsn(X) < L``; pages already carrying the operation's
effect are left alone (state is never reset).

Replay is deliberately tolerant of garbage inputs: a page that was removed
from a flush set because it became *unexposed* can hold a stale value that
a replayed logical operation reads.  The framework guarantees any page
whose replayed value could be wrong is overwritten by a later logged
physical/identity record; if a transform raises anyway the target is
poisoned with :data:`POISON` and correctness is judged at the end.  A
poison value that survives to the end of replay is precisely the paper's
"B cannot be successfully recovered" outcome of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Dict, Iterable, List, MutableMapping

from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import REDO_OP
from repro.obs.tracer import NULL_TRACER
from repro.storage.page import PageVersion
from repro.wal.records import LogRecord


class _Poison:
    """Sentinel marking a page whose replayed value is unrecoverable."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<POISON>"


POISON = _Poison()

#: Records pulled from the log scan per block.  ``merge_scan`` is a
#: ``heapq.merge`` chain whose per-record ``next()`` dispatch is pure
#: overhead at replay scale; ``islice`` blocks consume it at C speed.
REPLAY_CHUNK = 256


@dataclass
class ReplayStats:
    records_seen: int = 0
    ops_replayed: int = 0
    ops_skipped: int = 0
    partial_replays: int = 0
    poisoned: List[PageId] = field(default_factory=list)


class RedoReplayer:
    """Replays records over a ``{PageId: PageVersion}`` state in place."""

    def __init__(self, initial_value: Any = None, tracer=None):
        self._initial_value = initial_value
        self.tracer = tracer or NULL_TRACER

    def _version(
        self, state: MutableMapping[PageId, PageVersion], page: PageId
    ) -> PageVersion:
        version = state.get(page)
        if version is None:
            version = PageVersion(self._initial_value, NULL_LSN)
            state[page] = version
        return version

    def replay(
        self,
        records: Iterable[LogRecord],
        state: MutableMapping[PageId, PageVersion],
    ) -> ReplayStats:
        stats = ReplayStats()
        # Hoisted so the replay loop pays one attribute load, not one
        # check per record, when tracing is off (the default).
        tracer = self.tracer
        trace = tracer.enabled
        source = iter(records)
        while True:
            block = list(islice(source, REPLAY_CHUNK))
            if not block:
                break
            stats.records_seen += len(block)
            self._replay_block(block, state, stats, tracer, trace)
        return stats

    def _replay_block(self, block, state, stats, tracer, trace):
        for record in block:
            op = record.op
            stale = [
                page
                for page in op.writeset
                if self._version(state, page).page_lsn < record.lsn
            ]
            if not stale:
                stats.ops_skipped += 1
                if trace:
                    tracer.emit(REDO_OP, lsn=record.lsn, action="skip")
                continue
            if len(stale) < len(op.writeset):
                stats.partial_replays += 1
            reads: Dict[PageId, Any] = {
                page: self._version(state, page).value for page in op.readset
            }
            poisoned_here = False
            try:
                result = op.apply(reads)
            except Exception:
                result = {page: POISON for page in stale}
                stats.poisoned.extend(stale)
                poisoned_here = True
            if trace:
                tracer.emit(
                    REDO_OP,
                    lsn=record.lsn,
                    action="replay",
                    stale=len(stale),
                    writeset=len(op.writeset),
                    poisoned=poisoned_here,
                )
            for page in stale:
                state[page] = PageVersion.__new__(PageVersion)
                # Bypass value checking: POISON and arbitrary replay results
                # are stored as-is so the final verification sees them.
                object.__setattr__(state[page], "value", result[page])
                object.__setattr__(state[page], "page_lsn", record.lsn)
            stats.ops_replayed += 1


def contains_poison(value: Any) -> bool:
    """True if ``value`` is, or transitively embeds, the POISON sentinel.

    An op that *raises* on a poisoned read produces a page whose value
    is POISON itself; an op that merely carries a read along (tucking it
    into a tuple) propagates the taint silently as a nested value.  Both
    are unrecoverable and both must be reported, so poison checks look
    inside containers rather than only at the top level.
    """
    if value is POISON:
        return True
    if isinstance(value, (tuple, list, set, frozenset)):
        return any(contains_poison(item) for item in value)
    if isinstance(value, dict):
        return any(
            contains_poison(k) or contains_poison(v)
            for k, v in value.items()
        )
    return False


def surviving_poison(state: MutableMapping[PageId, PageVersion]) -> List[PageId]:
    """Pages still tainted by POISON after replay (unrecoverable)."""
    return sorted(
        page for page, ver in state.items() if contains_poison(ver.value)
    )
