"""The refined write graph rW (section 2.4), as a *dynamic* structure.

``DynamicWriteGraph`` is the write graph the cache manager actually
maintains during normal execution:

* adding a non-blind operation merges it with the nodes currently holding
  the pages it writes (the "intersecting writes" first collapse), adds the
  read-write installation edges, and collapses any strongly connected
  region the new edges create (the second collapse) — so the graph is
  acyclic at all times;
* adding a **blind** write (physical or identity write) instead creates a
  fresh node holding only its target, removes the target from the previous
  holder's ``vars`` (the target's old value has become *unexposed*), and
  adds the *inverse write-read* edges from nodes whose operations read the
  value being overwritten;
* installing a node with no predecessors removes it, releasing its
  successors.

The graph keeps an incrementally maintained **ready queue**: the set of
node ids with no live predecessors (and the subset of those whose
``vars`` are empty, i.e. drainable without a flush).  Every mutation —
edge addition, merge, install, var removal by a blind write — updates
the queue, so :meth:`installable_nodes` is O(ready · log ready) and a
full drain is O(nodes + edges) instead of rescanning all live nodes on
every call.  A companion invariant makes that sound: ``preds``/``succs``
of live nodes only ever contain live node ids (merges and installs fix
their neighbours eagerly), so emptiness of ``preds`` *is* readiness.

``build_refined_graph`` replays a record sequence through a
``DynamicWriteGraph`` without installing anything, yielding the static rW
of a log — this is what the Figure 2 test compares against W.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import FlushOrderError, WriteGraphError
from repro.ids import LSN, PageId
from repro.ops.base import OperationKind
from repro.wal.records import LogRecord


class DynamicNode:
    """A live write-graph node: uninstalled ops and the vars to flush.

    Slotted (not a dataclass): nodes are created on every logged
    operation, so construction and attribute access are hot.  ``reads``
    mirrors the graph's ``_readers`` index so installing the node
    touches only its own entries instead of scanning every reader set.
    """

    __slots__ = ("node_id", "ops", "vars", "preds", "succs", "reads")

    def __init__(
        self,
        node_id: int,
        ops: Optional[List[LogRecord]] = None,
        vars: Optional[Set[PageId]] = None,
        preds: Optional[Set[int]] = None,
        succs: Optional[Set[int]] = None,
        reads: Optional[Set[PageId]] = None,
    ):
        self.node_id = node_id
        self.ops = [] if ops is None else ops
        self.vars = set() if vars is None else vars
        self.preds = set() if preds is None else preds
        self.succs = set() if succs is None else succs
        self.reads = set() if reads is None else reads

    @property
    def op_lsns(self) -> List[LSN]:
        return [r.lsn for r in self.ops]

    @property
    def first_lsn(self) -> LSN:
        return self.ops[0].lsn if self.ops else 0

    def writes(self) -> Set[PageId]:
        out: Set[PageId] = set()
        for record in self.ops:
            out |= record.op.writeset
        return out

    def __repr__(self):
        return (
            f"DNode({self.node_id}, ops={self.op_lsns}, "
            f"vars={sorted(map(str, self.vars))})"
        )


class DynamicWriteGraph:
    def __init__(self):
        self._nodes: Dict[int, DynamicNode] = {}
        self._ids = itertools.count(1)
        # page -> node currently holding page in its vars (disjoint sets).
        self._holder: Dict[PageId, int] = {}
        # page -> node ids with an op that read the page's *current* value.
        self._readers: Dict[PageId, Set[int]] = {}
        # Alias map for merged nodes (union-find style path compression).
        self._alias: Dict[int, int] = {}
        # Ready queue: live node ids with no predecessors, and the subset
        # of those whose vars are empty (installable without flushing).
        self._ready: Set[int] = set()
        self._ready_empty: Set[int] = set()

    # -------------------------------------------------------------- plumbing

    def _resolve(self, node_id: int) -> Optional[int]:
        alias = self._alias
        if node_id not in alias:  # live or gone, never aliased: no chase
            return node_id if node_id in self._nodes else None
        seen = []
        while node_id in alias:
            seen.append(node_id)
            node_id = alias[node_id]
        for s in seen:
            alias[s] = node_id
        return node_id if node_id in self._nodes else None

    def _resolve_set(self, ids: Iterable[int]) -> Set[int]:
        out = set()
        for node_id in ids:
            resolved = self._resolve(node_id)
            if resolved is not None:
                out.add(resolved)
        return out

    def node(self, node_id: int) -> DynamicNode:
        resolved = self._resolve(node_id)
        if resolved is None:
            raise WriteGraphError(f"node {node_id} no longer exists")
        return self._nodes[resolved]

    def nodes(self) -> List[DynamicNode]:
        return list(self._nodes.values())

    def holder_of(self, page: PageId) -> Optional[DynamicNode]:
        node_id = self._holder.get(page)
        if node_id is None:
            return None
        resolved = self._resolve(node_id)
        if resolved is None:
            del self._holder[page]
            return None
        self._holder[page] = resolved
        return self._nodes[resolved]

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------ ready queue

    def _refresh_ready(self, node: DynamicNode) -> None:
        """Re-derive one live node's membership in the ready sets."""
        if node.preds:
            self._ready.discard(node.node_id)
            self._ready_empty.discard(node.node_id)
        else:
            self._ready.add(node.node_id)
            if node.vars:
                self._ready_empty.discard(node.node_id)
            else:
                self._ready_empty.add(node.node_id)

    def _unready(self, node_id: int) -> None:
        self._ready.discard(node_id)
        self._ready_empty.discard(node_id)

    def _vars_shrunk(self, node: DynamicNode) -> None:
        """Called after pages were removed from a live node's vars."""
        if not node.vars and node.node_id in self._ready:
            self._ready_empty.add(node.node_id)

    # ---------------------------------------------------------- construction

    def add_operation(self, record: LogRecord) -> DynamicNode:
        """Incorporate a newly logged operation; returns its node."""
        if record.op.is_blind:
            return self._add_blind(record)
        return self._add_general(record)

    def _new_node(self, record: LogRecord, vars_: Set[PageId]) -> DynamicNode:
        # Takes ownership of ``vars_`` (callers pass a fresh set).  Built
        # via __new__ + direct slot stores: one node per logged operation
        # makes even the constructor's default-argument branches visible.
        node = DynamicNode.__new__(DynamicNode)
        node_id = next(self._ids)
        node.node_id = node_id
        node.ops = [record]
        node.vars = vars_
        node.preds = set()
        node.succs = set()
        node.reads = set()
        self._nodes[node_id] = node
        # A fresh node has no predecessors: immediately ready.
        self._ready.add(node_id)
        if not vars_:
            self._ready_empty.add(node_id)
        return node

    def _add_general(self, record: LogRecord) -> DynamicNode:
        op = record.op
        writeset = op.writeset
        node = self._new_node(record, set(writeset))

        # First collapse: merge with nodes already holding written pages.
        # Merging nodes with a pre-existing path between them would close
        # a cycle through the intermediate nodes, so the whole region
        # between them is collapsed as well (the second collapse applied
        # incrementally).
        holder = self._holder
        nodes = self._nodes
        to_merge: Set[int] = set()
        for page in writeset:
            holder_id = holder.get(page)
            if holder_id is None:
                continue
            if holder_id in nodes:  # common case: entry already live
                to_merge.add(holder_id)
                continue
            resolved = self._resolve(holder_id)
            if resolved is not None:
                to_merge.add(resolved)
        to_merge.discard(node.node_id)
        for other_id in to_merge:
            node = self._merge_collapsing(node.node_id, other_id)

        node_id = node.node_id
        for page in writeset:
            holder[page] = node_id

        # Read-write edges: every *uninstalled* reader of the page must
        # install before this node.  Readers stay registered until their
        # node installs — the installation-graph definition has no
        # adjacency restriction (readset(O) ∩ writeset(P) for ANY O < P),
        # and a later flush of the page destroys the value those readers'
        # replay needs just as surely as the first one does.
        readers_index = self._readers
        pending_edges: List[int] = []
        for page in writeset:
            if page in readers_index:
                for reader in self._live_readers(page):
                    if reader != node.node_id:
                        pending_edges.append(reader)
        # _add_edge_collapsing always returns the live (post-collapse)
        # destination node, so no re-resolution is needed afterwards.
        for src in pending_edges:
            node = self._add_edge_collapsing(src, node.node_id)

        # Register this operation's reads against the current values.
        node_id = node.node_id
        node_reads = node.reads
        for page in op.readset:
            entry = readers_index.get(page)
            if entry is None:
                readers_index[page] = {node_id}
            else:
                entry.add(node_id)
            node_reads.add(page)
        return node

    def _add_blind(self, record: LogRecord) -> DynamicNode:
        op = record.op
        (target,) = op.writeset
        # The target's previous value becomes unexposed: remove it from the
        # prior holder's flush set (the rW refinement, Figure 2).
        previous = self.holder_of(target)
        if previous is not None:
            previous.vars.discard(target)
            self._vars_shrunk(previous)
        node = self._new_node(record, {target})
        self._holder[target] = node.node_id
        if record.op.kind is OperationKind.IDENTITY:
            # An identity write does not change the value: readers of the
            # current value are unaffected, so no inverse write-read edges
            # are needed — and the readers stay registered so the *next*
            # real write still orders after them.
            return node
        # Inverse write-read edges: every uninstalled operation that read
        # any still-needed value of the target must install before this
        # blind write flushes over it.
        for reader in self._live_readers(target):
            if reader != node.node_id:
                node = self._add_edge_collapsing(reader, node.node_id)
        return node

    def _live_readers(self, page: PageId):
        """Live node ids registered as readers of ``page``.

        Compacts the stored set in place, so aliases of merged nodes do
        not accumulate across a long run.  Returns an iterable the caller
        must not mutate (a shared empty tuple when there are no readers).
        """
        readers = self._readers.get(page)
        if not readers:
            return ()
        nodes = self._nodes
        for node_id in readers:
            if node_id not in nodes:
                break
        else:
            return readers
        resolved = self._resolve_set(readers)
        self._readers[page] = set(resolved)
        return resolved

    # ----------------------------------------------------- edges and merging

    def _add_edge_collapsing(self, src: int, dst: int) -> DynamicNode:
        """Add edge src → dst; collapse the cycle if one is created."""
        src = self._resolve(src)
        dst = self._resolve(dst)
        if src is None or dst is None or src == dst:
            return self._nodes[dst] if dst is not None else None
        dst_node = self._nodes[dst]
        if src in dst_node.preds:
            return dst_node
        # A cycle needs a path dst ⇝ src, which requires dst to have
        # successors and src predecessors — skip the DFS when either is
        # trivially impossible (the common case for freshly added nodes).
        if dst_node.succs and self._nodes[src].preds and self._reachable(dst, src):
            # Adding src → dst closes a cycle: collapse everything on a
            # path dst ⇝ src together with src and dst (second collapse).
            region = self._nodes_between(dst, src)
            region |= {src, dst}
            it = iter(region)
            merged = next(it)
            for other in it:
                merged = self._merge(merged, other).node_id
            return self._nodes[merged]
        self._nodes[src].succs.add(dst)
        dst_node.preds.add(src)
        self._unready(dst)
        return dst_node

    def _reachable(self, start: int, goal: int) -> bool:
        # preds/succs of live nodes only contain live ids (merges and
        # installs fix neighbours eagerly), so no alias resolution here.
        stack, seen = [start], {start}
        nodes = self._nodes
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for succ in nodes[current].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _nodes_between(self, start: int, goal: int) -> Set[int]:
        """Nodes on some path start ⇝ goal (inclusive), via forward and
        backward reachability intersection."""
        forward = self._closure(start, lambda n: self._nodes[n].succs)
        backward = self._closure(goal, lambda n: self._nodes[n].preds)
        return forward & backward

    def _closure(self, start: int, neighbours) -> Set[int]:
        # Neighbour sets of live nodes hold only live ids; no resolution.
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in neighbours(current):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _merge_collapsing(self, keep_id: int, other_id: int) -> DynamicNode:
        """Merge two nodes, collapsing any path between them first."""
        keep_id = self._resolve(keep_id)
        other_id = self._resolve(other_id)
        if keep_id == other_id:
            return self._nodes[keep_id]
        # Early-exit reachability probes before computing path regions:
        # in the common case the two nodes are unrelated and the region
        # is just the pair itself.  A path a ⇝ b needs a.succs and
        # b.preds to be non-empty, so most probes are skipped outright.
        keep, other = self._nodes[keep_id], self._nodes[other_id]
        region = {keep_id, other_id}
        if keep.succs and other.preds and self._reachable(keep_id, other_id):
            region |= self._nodes_between(keep_id, other_id)
        if other.succs and keep.preds and self._reachable(other_id, keep_id):
            region |= self._nodes_between(other_id, keep_id)
        it = iter(region)
        merged = next(it)
        for node_id in it:
            # _merge returns the live surviving node, so ``merged`` never
            # needs re-resolution between (or after) iterations.
            merged = self._merge(merged, node_id).node_id
        return self._nodes[merged]

    def _merge(self, keep_id: int, other_id: int) -> DynamicNode:
        keep_id = self._resolve(keep_id)
        other_id = self._resolve(other_id)
        if keep_id == other_id:
            return self._nodes[keep_id]
        keep, other = self._nodes[keep_id], self._nodes[other_id]
        # Splice the (individually sorted) op lists; fall back to a sort
        # only when the LSN ranges actually interleave.
        if not keep.ops:
            keep.ops = other.ops
        elif other.ops:
            if other.ops[0].lsn > keep.ops[-1].lsn:
                keep.ops.extend(other.ops)
            elif keep.ops[0].lsn > other.ops[-1].lsn:
                keep.ops[:0] = other.ops
            else:
                keep.ops.extend(other.ops)
                keep.ops.sort(key=lambda r: r.lsn)
        keep.vars |= other.vars
        keep.preds |= other.preds
        keep.succs |= other.succs
        keep.reads |= other.reads
        del self._nodes[other_id]
        self._alias[other_id] = keep_id
        self._unready(other_id)
        # Strip the merged pair's self references.  Neighbour sets of
        # live nodes only hold live ids, so after discarding the two
        # merged ids no alias resolution is needed.
        keep.preds.discard(keep_id)
        keep.preds.discard(other_id)
        keep.succs.discard(keep_id)
        keep.succs.discard(other_id)
        for pred in keep.preds:
            self._nodes[pred].succs.discard(other_id)
            self._nodes[pred].succs.add(keep_id)
        for succ in keep.succs:
            self._nodes[succ].preds.discard(other_id)
            self._nodes[succ].preds.add(keep_id)
        for page in keep.vars:
            self._holder[page] = keep_id
        self._refresh_ready(keep)
        return keep

    # ------------------------------------------------------------ installing

    def predecessors(self, node: DynamicNode) -> Set[int]:
        if not node.preds:
            return node.preds
        node.preds = self._resolve_set(node.preds) - {node.node_id}
        if node.node_id in self._nodes:
            # Keep the ready queue honest if compaction emptied preds.
            self._refresh_ready(node)
        return node.preds

    def is_installable(self, node: DynamicNode) -> bool:
        return not self.predecessors(node)

    def installable_nodes(self) -> List[DynamicNode]:
        """Nodes with no predecessors, in increasing first-op LSN order.

        Served from the incrementally maintained ready queue: O(ready ·
        log ready), independent of the number of live nodes.
        """
        out = [self._nodes[nid] for nid in self._ready]
        out.sort(key=lambda n: n.first_lsn)
        return out

    def installable_empty_nodes(self) -> List[DynamicNode]:
        """Ready nodes with empty ``vars``: installable without a flush.

        The cache manager drains these eagerly after every install — the
        set is maintained incrementally, so the drain never rescans the
        graph.
        """
        return [self._nodes[nid] for nid in self._ready_empty]

    def install_node(self, node: DynamicNode) -> Set[PageId]:
        """Remove an installable node; returns the pages that were its vars.

        The caller is responsible for actually flushing (or having
        identity-logged) those pages.
        """
        node_id = self._resolve(node.node_id)
        if node_id is None:
            raise WriteGraphError(f"node {node.node_id} already installed")
        node = self._nodes[node_id]
        if self.predecessors(node):
            raise FlushOrderError(
                f"node {node_id} has uninstalled predecessors "
                f"{sorted(self.predecessors(node))}"
            )
        for succ in node.succs:
            succ_node = self._nodes.get(succ)
            if succ_node is None:
                continue
            succ_node.preds.discard(node_id)
            if not succ_node.preds:
                self._refresh_ready(succ_node)
        holder = self._holder
        for page in node.vars:
            if holder.get(page) == node_id:
                del holder[page]
        for page in node.reads:
            readers = self._readers.get(page)
            if readers is not None:
                readers.discard(node_id)
                if not readers:
                    del self._readers[page]
        del self._nodes[node_id]
        self._unready(node_id)
        # The node is gone from the graph; its vars set can be handed to
        # the caller without copying.
        return node.vars

    # ------------------------------------------------------------ inspection

    def check_acyclic(self) -> None:
        """Invariant check used by tests: the live graph has no cycle."""
        in_deg = {
            nid: len(self._resolve_set(n.preds) - {nid})
            for nid, n in self._nodes.items()
        }
        queue = [nid for nid, d in in_deg.items() if d == 0]
        seen = 0
        while queue:
            nid = queue.pop()
            seen += 1
            for succ in self._resolve_set(self._nodes[nid].succs):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if seen != len(self._nodes):
            raise WriteGraphError("dynamic write graph has a cycle")

    def vars_are_disjoint(self) -> bool:
        seen: Set[PageId] = set()
        for node in self._nodes.values():
            overlap = node.vars & seen
            if overlap:
                return False
            seen |= node.vars
        return True


def build_refined_graph(records: Sequence[LogRecord]) -> DynamicWriteGraph:
    """Static rW of a record sequence (no installs) — analysis/tests aid."""
    graph = DynamicWriteGraph()
    for record in records:
        graph.add_operation(record)
    graph.check_acyclic()
    return graph
