"""The refined write graph rW (section 2.4), as a *dynamic* structure.

``DynamicWriteGraph`` is the write graph the cache manager actually
maintains during normal execution:

* adding a non-blind operation merges it with the nodes currently holding
  the pages it writes (the "intersecting writes" first collapse), adds the
  read-write installation edges, and collapses any strongly connected
  region the new edges create (the second collapse) — so the graph is
  acyclic at all times;
* adding a **blind** write (physical or identity write) instead creates a
  fresh node holding only its target, removes the target from the previous
  holder's ``vars`` (the target's old value has become *unexposed*), and
  adds the *inverse write-read* edges from nodes whose operations read the
  value being overwritten;
* installing a node with no predecessors removes it, releasing its
  successors.

``build_refined_graph`` replays a record sequence through a
``DynamicWriteGraph`` without installing anything, yielding the static rW
of a log — this is what the Figure 2 test compares against W.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import FlushOrderError, WriteGraphError
from repro.ids import LSN, PageId
from repro.ops.base import OperationKind
from repro.wal.records import LogRecord


@dataclass
class DynamicNode:
    """A live write-graph node: uninstalled ops and the vars to flush."""

    node_id: int
    ops: List[LogRecord] = field(default_factory=list)
    vars: Set[PageId] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)
    succs: Set[int] = field(default_factory=set)

    @property
    def op_lsns(self) -> List[LSN]:
        return [r.lsn for r in self.ops]

    def writes(self) -> Set[PageId]:
        out: Set[PageId] = set()
        for record in self.ops:
            out |= record.op.writeset
        return out

    def __repr__(self):
        return (
            f"DNode({self.node_id}, ops={self.op_lsns}, "
            f"vars={sorted(map(str, self.vars))})"
        )


class DynamicWriteGraph:
    def __init__(self):
        self._nodes: Dict[int, DynamicNode] = {}
        self._ids = itertools.count(1)
        # page -> node currently holding page in its vars (disjoint sets).
        self._holder: Dict[PageId, int] = {}
        # page -> node ids with an op that read the page's *current* value.
        self._readers: Dict[PageId, Set[int]] = {}
        # Alias map for merged nodes (union-find style path compression).
        self._alias: Dict[int, int] = {}

    # -------------------------------------------------------------- plumbing

    def _resolve(self, node_id: int) -> Optional[int]:
        seen = []
        while node_id in self._alias:
            seen.append(node_id)
            node_id = self._alias[node_id]
        for s in seen:
            self._alias[s] = node_id
        return node_id if node_id in self._nodes else None

    def _resolve_set(self, ids: Iterable[int]) -> Set[int]:
        out = set()
        for node_id in ids:
            resolved = self._resolve(node_id)
            if resolved is not None:
                out.add(resolved)
        return out

    def node(self, node_id: int) -> DynamicNode:
        resolved = self._resolve(node_id)
        if resolved is None:
            raise WriteGraphError(f"node {node_id} no longer exists")
        return self._nodes[resolved]

    def nodes(self) -> List[DynamicNode]:
        return list(self._nodes.values())

    def holder_of(self, page: PageId) -> Optional[DynamicNode]:
        node_id = self._holder.get(page)
        if node_id is None:
            return None
        resolved = self._resolve(node_id)
        if resolved is None:
            del self._holder[page]
            return None
        self._holder[page] = resolved
        return self._nodes[resolved]

    def __len__(self) -> int:
        return len(self._nodes)

    # ---------------------------------------------------------- construction

    def add_operation(self, record: LogRecord) -> DynamicNode:
        """Incorporate a newly logged operation; returns its node."""
        if record.op.is_blind:
            return self._add_blind(record)
        return self._add_general(record)

    def _new_node(self, record: LogRecord, vars_: Set[PageId]) -> DynamicNode:
        node = DynamicNode(next(self._ids), ops=[record], vars=set(vars_))
        self._nodes[node.node_id] = node
        return node

    def _add_general(self, record: LogRecord) -> DynamicNode:
        op = record.op
        node = self._new_node(record, set(op.writeset))

        # First collapse: merge with nodes already holding written pages.
        # Merging nodes with a pre-existing path between them would close
        # a cycle through the intermediate nodes, so the whole region
        # between them is collapsed as well (the second collapse applied
        # incrementally).
        to_merge = self._resolve_set(
            self._holder[p] for p in op.writeset if p in self._holder
        )
        to_merge.discard(node.node_id)
        for other_id in to_merge:
            node = self._merge_collapsing(node.node_id, other_id)

        for page in op.writeset:
            self._holder[page] = node.node_id

        # Read-write edges: every *uninstalled* reader of the page must
        # install before this node.  Readers stay registered until their
        # node installs — the installation-graph definition has no
        # adjacency restriction (readset(O) ∩ writeset(P) for ANY O < P),
        # and a later flush of the page destroys the value those readers'
        # replay needs just as surely as the first one does.
        pending_edges: List[int] = []
        for page in op.writeset:
            for reader in self._resolve_set(self._readers.get(page, ())):
                if reader != node.node_id:
                    pending_edges.append(reader)
        for src in pending_edges:
            node = self._add_edge_collapsing(src, node.node_id)

        # Register this operation's reads against the current values.
        for page in op.readset:
            self._readers.setdefault(page, set()).add(node.node_id)
        return node

    def _add_blind(self, record: LogRecord) -> DynamicNode:
        op = record.op
        (target,) = op.writeset
        # The target's previous value becomes unexposed: remove it from the
        # prior holder's flush set (the rW refinement, Figure 2).
        previous = self.holder_of(target)
        if previous is not None:
            previous.vars.discard(target)
        node = self._new_node(record, {target})
        self._holder[target] = node.node_id
        if record.op.kind is OperationKind.IDENTITY:
            # An identity write does not change the value: readers of the
            # current value are unaffected, so no inverse write-read edges
            # are needed — and the readers stay registered so the *next*
            # real write still orders after them.
            return node
        # Inverse write-read edges: every uninstalled operation that read
        # any still-needed value of the target must install before this
        # blind write flushes over it.
        for reader in self._resolve_set(self._readers.get(target, ())):
            if reader != node.node_id:
                node = self._add_edge_collapsing(reader, node.node_id)
        return node

    # ----------------------------------------------------- edges and merging

    def _add_edge_collapsing(self, src: int, dst: int) -> DynamicNode:
        """Add edge src → dst; collapse the cycle if one is created."""
        src = self._resolve(src)
        dst = self._resolve(dst)
        if src is None or dst is None or src == dst:
            return self._nodes[dst] if dst is not None else None
        if self._reachable(dst, src):
            # Adding src → dst closes a cycle: collapse everything on a
            # path dst ⇝ src together with src and dst (second collapse).
            region = self._nodes_between(dst, src)
            region |= {src, dst}
            it = iter(region)
            merged = next(it)
            for other in it:
                merged = self._merge(merged, other).node_id
            return self._nodes[merged]
        self._nodes[src].succs.add(dst)
        self._nodes[dst].preds.add(src)
        return self._nodes[dst]

    def _reachable(self, start: int, goal: int) -> bool:
        stack, seen = [start], {start}
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for succ in self._resolve_set(self._nodes[current].succs):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _nodes_between(self, start: int, goal: int) -> Set[int]:
        """Nodes on some path start ⇝ goal (inclusive), via forward and
        backward reachability intersection."""
        forward = self._closure(start, lambda n: self._nodes[n].succs)
        backward = self._closure(goal, lambda n: self._nodes[n].preds)
        return forward & backward

    def _closure(self, start: int, neighbours) -> Set[int]:
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in self._resolve_set(neighbours(current)):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _merge_collapsing(self, keep_id: int, other_id: int) -> DynamicNode:
        """Merge two nodes, collapsing any path between them first."""
        keep_id = self._resolve(keep_id)
        other_id = self._resolve(other_id)
        if keep_id == other_id:
            return self._nodes[keep_id]
        region = {keep_id, other_id}
        region |= self._nodes_between(keep_id, other_id)
        region |= self._nodes_between(other_id, keep_id)
        it = iter(region)
        merged = next(it)
        for node_id in it:
            merged = self._merge(merged, node_id).node_id
        return self._nodes[self._resolve(merged)]

    def _merge(self, keep_id: int, other_id: int) -> DynamicNode:
        keep_id = self._resolve(keep_id)
        other_id = self._resolve(other_id)
        if keep_id == other_id:
            return self._nodes[keep_id]
        keep, other = self._nodes[keep_id], self._nodes[other_id]
        keep.ops.extend(other.ops)
        keep.ops.sort(key=lambda r: r.lsn)
        keep.vars |= other.vars
        keep.preds |= other.preds
        keep.succs |= other.succs
        del self._nodes[other_id]
        self._alias[other_id] = keep_id
        # Re-resolve and strip self references.
        keep.preds = self._resolve_set(keep.preds) - {keep_id}
        keep.succs = self._resolve_set(keep.succs) - {keep_id}
        for pred in keep.preds:
            self._nodes[pred].succs.discard(other_id)
            self._nodes[pred].succs.add(keep_id)
        for succ in keep.succs:
            self._nodes[succ].preds.discard(other_id)
            self._nodes[succ].preds.add(keep_id)
        for page in keep.vars:
            self._holder[page] = keep_id
        return keep

    # ------------------------------------------------------------ installing

    def predecessors(self, node: DynamicNode) -> Set[int]:
        node.preds = self._resolve_set(node.preds) - {node.node_id}
        return node.preds

    def is_installable(self, node: DynamicNode) -> bool:
        return not self.predecessors(node)

    def installable_nodes(self) -> List[DynamicNode]:
        """Nodes with no predecessors, in increasing first-op LSN order."""
        out = [n for n in self._nodes.values() if self.is_installable(n)]
        out.sort(key=lambda n: n.ops[0].lsn if n.ops else 0)
        return out

    def install_node(self, node: DynamicNode) -> Set[PageId]:
        """Remove an installable node; returns the pages that were its vars.

        The caller is responsible for actually flushing (or having
        identity-logged) those pages.
        """
        node_id = self._resolve(node.node_id)
        if node_id is None:
            raise WriteGraphError(f"node {node.node_id} already installed")
        node = self._nodes[node_id]
        if self.predecessors(node):
            raise FlushOrderError(
                f"node {node_id} has uninstalled predecessors "
                f"{sorted(self.predecessors(node))}"
            )
        for succ in self._resolve_set(node.succs):
            self._nodes[succ].preds.discard(node_id)
        for page in list(node.vars):
            if self._holder.get(page) == node_id:
                del self._holder[page]
        for page, readers in list(self._readers.items()):
            readers.discard(node_id)
        del self._nodes[node_id]
        return set(node.vars)

    # ------------------------------------------------------------ inspection

    def check_acyclic(self) -> None:
        """Invariant check used by tests: the live graph has no cycle."""
        in_deg = {
            nid: len(self._resolve_set(n.preds) - {nid})
            for nid, n in self._nodes.items()
        }
        queue = [nid for nid, d in in_deg.items() if d == 0]
        seen = 0
        while queue:
            nid = queue.pop()
            seen += 1
            for succ in self._resolve_set(self._nodes[nid].succs):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if seen != len(self._nodes):
            raise WriteGraphError("dynamic write graph has a cycle")

    def vars_are_disjoint(self) -> bool:
        seen: Set[PageId] = set()
        for node in self._nodes.values():
            overlap = node.vars & seen
            if overlap:
                return False
            seen |= node.vars
        return True


def build_refined_graph(records: Sequence[LogRecord]) -> DynamicWriteGraph:
    """Static rW of a record sequence (no installs) — analysis/tests aid."""
    graph = DynamicWriteGraph()
    for record in records:
        graph.add_operation(record)
    graph.check_acyclic()
    return graph
