"""Redo-recovery framework (Lomet & Tuttle, VLDB 1995 / SIGMOD 1999).

This package implements the machinery section 2 of the backup paper builds
on: installation graphs over logged operations, the "intersecting writes"
write graph W, the refined write graph rW exploiting unexposed objects, the
LSN-based redo test, and crash / media recovery drivers.
"""

from repro.recovery.installation_graph import InstallationGraph, InstallEdge
from repro.recovery.write_graph import WriteGraphNode, build_intersecting_writes_graph
from repro.recovery.refined_write_graph import DynamicWriteGraph, build_refined_graph
from repro.recovery.redo import POISON, RedoReplayer, ReplayStats
from repro.recovery.explain import RecoveryOutcome, diff_states, find_order_violations
from repro.recovery.crash_recovery import run_crash_recovery
from repro.recovery.media_recovery import (
    install_recovered_page,
    resolve_media_target,
    run_media_recovery,
    select_generation,
)
from repro.recovery.instant_restore import RestoreManager, RestoredBitmap

__all__ = [
    "InstallationGraph",
    "InstallEdge",
    "WriteGraphNode",
    "build_intersecting_writes_graph",
    "DynamicWriteGraph",
    "build_refined_graph",
    "POISON",
    "RedoReplayer",
    "ReplayStats",
    "RecoveryOutcome",
    "diff_states",
    "find_order_violations",
    "run_crash_recovery",
    "run_media_recovery",
    "resolve_media_target",
    "select_generation",
    "install_recovered_page",
    "RestoreManager",
    "RestoredBitmap",
]
