"""Crash (system-failure) recovery: redo over the stable database.

After a crash the volatile cache is gone; S plus the durable log prefix
must reconstruct the current state.  Recovery loads S's pages, replays
the durable log from the scan-start (truncation) point with the LSN redo
test — serially in LSN order, or in dependency order on a worker pool
when ``redo_workers > 1``, with a serial-equivalent outcome either way —
and, when an oracle is supplied, verifies the result.

Corruption handling: pages the caller has identified as damaged (stable
checksum failures with no backup to heal from) are passed as
``quarantine``; they are seeded as POISON so replay either rebuilds them
from blind records or honestly propagates the loss into
``RecoveryOutcome.quarantined``.  ``rebuild_from_log=True`` ignores the
stable image entirely and replays the full retained log against an empty
initial state — the full-history rebuild used when the log still reaches
back to LSN 1, which is sound by construction (it is exactly how the
oracle state is produced).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import QUARANTINE, RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.parallel_redo import make_replayer
from repro.recovery.redo import (
    POISON,
    contains_poison,
    surviving_poison,
)
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def run_crash_recovery(
    stable: StableDatabase,
    log: LogManager,
    scan_start_lsn: LSN = 1,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    apply_to_stable: bool = True,
    tracer=None,
    quarantine: Sequence[PageId] = (),
    rebuild_from_log: bool = False,
    redo_workers: int = 1,
    metrics=None,
) -> RecoveryOutcome:
    """Recover the current state from S and the durable log.

    When ``apply_to_stable`` is True the recovered page versions are
    written back into S (as a real system's redo pass would), making S
    equal to the recovered current state.  ``redo_workers > 1`` fans
    the replay out to the dependency-aware parallel replayer.
    """
    tracer = tracer or NULL_TRACER
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="begin",
                    scan_start_lsn=scan_start_lsn)
    # Doublewrite scan first: roll back any torn multi-page install so
    # redo starts from an atomically consistent stable state.
    with tracer.span("recovery.crash.repair_torn"):
        repaired = stable.repair_torn()
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="repair_torn",
                    rolled_back=repaired)
    if rebuild_from_log:
        # Empty state: every page materializes at the initial value and
        # the full log replay reconstructs the store from scratch.
        state: Dict[PageId, PageVersion] = {}
    else:
        state = {pid: ver for pid, ver in stable.iter_pages()}
    for pid in quarantine:
        state[pid] = PageVersion(POISON, NULL_LSN)
    replayer = make_replayer(
        initial_value=initial_value,
        tracer=tracer,
        redo_workers=redo_workers,
        metrics=metrics,
    )
    with tracer.span("recovery.crash.redo"):
        stats = replayer.replay(log.durable_merge_scan(scan_start_lsn), state)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    quarantined: List[PageId] = []
    if quarantine:
        # With damage seeded, surviving POISON is the quarantine report:
        # the seeds replay could not heal, plus pages their loss tainted.
        quarantined = poisoned
        poisoned = []
        if tracer.enabled:
            for pid in quarantined:
                tracer.emit(QUARANTINE, page=str(pid), kind="crash")
    quarantined_set = set(quarantined)
    diffs = []
    if oracle is not None:
        diffs = [
            d
            for d in diff_states(state, oracle, initial_value)
            if d[0] not in quarantined_set
        ]
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="crash", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned),
                        quarantined=len(quarantined))
    if apply_to_stable:
        for pid, ver in state.items():
            if not stable.layout.contains(pid):
                continue
            if contains_poison(ver.value):
                stable.install_version(
                    pid, PageVersion(initial_value, NULL_LSN)
                )
                continue
            stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="complete",
                    ok=not poisoned and not diffs,
                    quarantined=len(quarantined))
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="crash",
        quarantined=quarantined,
    )
