"""Crash (system-failure) recovery: redo over the stable database.

After a crash the volatile cache is gone; S plus the durable log prefix
must reconstruct the current state.  Recovery loads S's pages, replays the
durable log from the scan-start (truncation) point with the LSN redo test,
and — when an oracle is supplied — verifies the result.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def run_crash_recovery(
    stable: StableDatabase,
    log: LogManager,
    scan_start_lsn: LSN = 1,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    apply_to_stable: bool = True,
    tracer=None,
) -> RecoveryOutcome:
    """Recover the current state from S and the durable log.

    When ``apply_to_stable`` is True the recovered page versions are
    written back into S (as a real system's redo pass would), making S
    equal to the recovered current state.
    """
    tracer = tracer or NULL_TRACER
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="begin",
                    scan_start_lsn=scan_start_lsn)
    # Doublewrite scan first: roll back any torn multi-page install so
    # redo starts from an atomically consistent stable state.
    with tracer.span("recovery.crash.repair_torn"):
        repaired = stable.repair_torn()
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="repair_torn",
                    rolled_back=repaired)
    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    replayer = RedoReplayer(initial_value=initial_value, tracer=tracer)
    with tracer.span("recovery.crash.redo"):
        stats = replayer.replay(log.durable_scan(scan_start_lsn), state)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    diffs = []
    if oracle is not None:
        diffs = diff_states(state, oracle, initial_value)
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="crash", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned))
    if apply_to_stable:
        for pid, ver in state.items():
            if stable.layout.contains(pid):
                stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="crash", phase="complete",
                    ok=not poisoned and not diffs)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="crash",
    )
