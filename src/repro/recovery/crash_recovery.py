"""Crash (system-failure) recovery: redo over the stable database.

After a crash the volatile cache is gone; S plus the durable log prefix
must reconstruct the current state.  Recovery loads S's pages, replays the
durable log from the scan-start (truncation) point with the LSN redo test,
and — when an oracle is supplied — verifies the result.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.ids import LSN, PageId
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def run_crash_recovery(
    stable: StableDatabase,
    log: LogManager,
    scan_start_lsn: LSN = 1,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    apply_to_stable: bool = True,
) -> RecoveryOutcome:
    """Recover the current state from S and the durable log.

    When ``apply_to_stable`` is True the recovered page versions are
    written back into S (as a real system's redo pass would), making S
    equal to the recovered current state.
    """
    # Doublewrite scan first: roll back any torn multi-page install so
    # redo starts from an atomically consistent stable state.
    stable.repair_torn()
    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    replayer = RedoReplayer(initial_value=initial_value)
    stats = replayer.replay(log.durable_scan(scan_start_lsn), state)
    poisoned = surviving_poison(state)
    diffs = []
    if oracle is not None:
        diffs = diff_states(state, oracle, initial_value)
    if apply_to_stable:
        for pid, ver in state.items():
            if stable.layout.contains(pid):
                stable.install_version(pid, ver)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="crash",
    )
