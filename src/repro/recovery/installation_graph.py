"""Installation graphs (section 2.2).

Nodes are logged operations (identified by LSN); edges are the conflicts
that constrain the order in which operation effects may be *installed*
into a stable database:

* **read-write** edges O → P when ``readset(O) ∩ writeset(P) ≠ ∅`` and
  O precedes P: installing P's update first would destroy the value a
  replay of O needs.
* **write-write** edges exist when writesets intersect, but with LSN-based
  recovery they are implicitly enforced (state is never reset during
  recovery), so they are excluded by default and available behind a flag.

Write-read conflicts are deliberately **not** edges — installing a later
reader before an earlier writer never impairs the writer's replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.ids import LSN, PageId
from repro.wal.records import LogRecord


@dataclass(frozen=True)
class InstallEdge:
    """Edge src → dst: src must be installed no later than dst."""

    src: LSN
    dst: LSN
    kind: str  # "read-write" or "write-write"


class InstallationGraph:
    def __init__(
        self,
        records: Sequence[LogRecord],
        include_write_write: bool = False,
    ):
        self.records: List[LogRecord] = list(records)
        self._by_lsn: Dict[LSN, LogRecord] = {r.lsn: r for r in self.records}
        self.edges: List[InstallEdge] = []
        self._succ: Dict[LSN, Set[LSN]] = {r.lsn: set() for r in self.records}
        self._pred: Dict[LSN, Set[LSN]] = {r.lsn: set() for r in self.records}
        self._build(include_write_write)

    def _build(self, include_write_write: bool) -> None:
        # Sweep in log order keeping, per page, every operation that has
        # read it (the definition has no adjacency restriction: an edge
        # O → P exists for ANY later writer P of a page O read).
        readers: Dict[PageId, Set[LSN]] = {}
        last_writer: Dict[PageId, LSN] = {}
        for record in self.records:
            op = record.op
            for page in op.writeset:
                for reader_lsn in readers.get(page, ()):
                    if reader_lsn != record.lsn:
                        self._add_edge(reader_lsn, record.lsn, "read-write")
                if include_write_write and page in last_writer:
                    self._add_edge(last_writer[page], record.lsn, "write-write")
                last_writer[page] = record.lsn
            for page in op.readset:
                readers.setdefault(page, set()).add(record.lsn)

    def _add_edge(self, src: LSN, dst: LSN, kind: str) -> None:
        if dst in self._succ[src]:
            return
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self.edges.append(InstallEdge(src, dst, kind))

    # ---------------------------------------------------------------- access

    def successors(self, lsn: LSN) -> FrozenSet[LSN]:
        return frozenset(self._succ[lsn])

    def predecessors(self, lsn: LSN) -> FrozenSet[LSN]:
        return frozenset(self._pred[lsn])

    def lsns(self) -> List[LSN]:
        return [r.lsn for r in self.records]

    def record(self, lsn: LSN) -> LogRecord:
        return self._by_lsn[lsn]

    def is_prefix(self, installed: Iterable[LSN]) -> bool:
        """Is ``installed`` a prefix of the installation graph?

        A prefix I is a subset such that if P ∈ I then every O with an
        edge O → P is also in I (section 2.3).
        """
        installed_set = set(installed)
        for lsn in installed_set:
            if not self._pred[lsn] <= installed_set:
                return False
        return True

    def prefix_violations(
        self, installed: Iterable[LSN]
    ) -> List[Tuple[LSN, LSN]]:
        """All (missing O, installed P) pairs breaking the prefix property."""
        installed_set = set(installed)
        violations = []
        for lsn in sorted(installed_set):
            for pred in sorted(self._pred[lsn] - installed_set):
                violations.append((pred, lsn))
        return violations
