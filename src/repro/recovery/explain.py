"""Recoverability verification: explainable states and order violations.

Two complementary checkers:

* :func:`diff_states` — operational correctness: after recovery the state
  must equal the oracle (the state produced by applying every logged
  operation in order during normal execution).

* :func:`find_order_violations` — the *structural* condition of section 2:
  for a stable state (S or a backup B) plus the log suffix available for
  its recovery, report every read-write installation edge O → P such that
  P's update is present in the state while O's effects are neither present
  nor reconstructible (no later physical/identity record covers O's
  targets).  This is exactly the condition that makes the Figure 1 backup
  unrecoverable, and is the predicate the paper's protocol maintains
  vacuously false.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ids import LSN, PageId
from repro.ops.base import OperationKind
from repro.storage.page import PageVersion
from repro.wal.records import LogRecord


@dataclass
class RecoveryOutcome:
    """Result of a recovery run — the one return type of every recovery
    entry point on :class:`~repro.db.Database` (``recover``,
    ``media_recover``, ``media_recover_chain``, ``recover_partition``,
    ``selective_recover``).

    ``kind`` names the recovery flavour (``"crash"``, ``"media"``,
    ``"media-chain"``, ``"partition"``, ``"selective"``);
    ``faults_survived`` counts the injected storage/WAL faults (see
    :mod:`repro.sim.faults`) the run lived through before this recovery
    verified; ``analysis`` carries the taint analysis for selective
    recovery, ``None`` otherwise.

    ``quarantined`` is the degraded-mode report of the corruption layer:
    pages for which *no* intact copy existed anywhere (every backup
    generation damaged, no log path to rebuild).  A recovery with
    quarantined pages is degraded but honest — the pages are excluded
    from verification instead of silently restored wrong, and ``ok``
    still holds for the rest of the store.
    """

    state: Dict[PageId, PageVersion]
    replayed: int
    skipped: int
    poisoned: List[PageId]
    diffs: List[Tuple[PageId, Any, Any]] = field(default_factory=list)
    kind: str = ""
    faults_survived: int = 0
    analysis: Optional[Any] = None  # TaintAnalysis for kind="selective"
    quarantined: List[PageId] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs and not self.poisoned

    @property
    def degraded(self) -> bool:
        """Recovery succeeded for all but the quarantined pages."""
        return self.ok and bool(self.quarantined)

    @property
    def redone(self) -> int:
        """Operations redone during roll-forward (canonical name for the
        historical ``replayed`` field, which remains as an alias)."""
        return self.replayed

    @property
    def outcome(self) -> "RecoveryOutcome":
        """Deprecated shim for the pre-unification ``SelectiveRedoResult``
        shape (``result.outcome.ok`` → ``result.ok``)."""
        warnings.warn(
            "RecoveryOutcome.outcome is a deprecation shim; selective "
            "recovery now returns the RecoveryOutcome directly — drop the "
            "'.outcome' hop (removal planned for 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        kind = f"{self.kind} " if self.kind else ""
        faults = (
            f" faults_survived={self.faults_survived}"
            if self.faults_survived
            else ""
        )
        quarantined = (
            f" quarantined={len(self.quarantined)}" if self.quarantined else ""
        )
        if self.degraded:
            status = "DEGRADED"
        return (
            f"{kind}recovery {status}: redone={self.replayed} "
            f"skipped={self.skipped} diffs={len(self.diffs)} "
            f"poisoned={len(self.poisoned)}{faults}{quarantined}"
        )


def diff_states(
    recovered: Mapping[PageId, PageVersion],
    expected: Mapping[PageId, Any],
    initial_value: Any = None,
) -> List[Tuple[PageId, Any, Any]]:
    """(page, recovered_value, expected_value) for every mismatch."""
    diffs = []
    pages = set(recovered) | set(expected)
    for page in sorted(pages):
        rec = recovered[page].value if page in recovered else initial_value
        exp = expected.get(page, initial_value)
        if rec != exp:
            diffs.append((page, rec, exp))
    return diffs


@dataclass(frozen=True)
class OrderViolation:
    """Read-write edge O → P enforced for S but broken in the state."""

    reader_lsn: LSN  # O: the operation whose replay is now impossible
    writer_lsn: LSN  # P: the operation whose update is present
    page: PageId  # the contested page (in readset(O) ∩ writeset(P))
    lost_targets: Tuple[PageId, ...]  # O's targets with no recovery source


def find_order_violations(
    state: Mapping[PageId, PageVersion],
    records: Sequence[LogRecord],
    initial_value: Any = None,
) -> List[OrderViolation]:
    """Structural unrecoverability check for ``state`` + ``records``.

    ``records`` must be the log suffix available to recover ``state``
    (crash log from the truncation point, or the media log for a backup).
    """

    def page_lsn(page: PageId) -> LSN:
        version = state.get(page)
        return version.page_lsn if version is not None else 0

    # A page is "covered" after LSN L if some record > L writes it blindly
    # (physical/identity) — its value is then reconstructible from the log
    # regardless of replay inputs.
    blind_writes: Dict[PageId, List[LSN]] = {}
    for record in records:
        if record.op.is_blind:
            for page in record.op.writeset:
                blind_writes.setdefault(page, []).append(record.lsn)

    def covered_after(page: PageId, lsn: LSN) -> bool:
        return any(b > lsn for b in blind_writes.get(page, ()))

    violations: List[OrderViolation] = []
    by_lsn = {r.lsn: r for r in records}
    # For each record P whose update is present in the state, find earlier
    # readers O of pages P wrote whose own effects are absent and
    # uncovered.  Readers accumulate — the installation-graph definition
    # conflicts a read with EVERY later writer of the page.
    readers: Dict[PageId, List[LSN]] = {}
    for record in records:
        op = record.op
        for page in op.writeset:
            if page_lsn(page) >= record.lsn:
                # P's update to `page` is present in the state.
                for reader_lsn in readers.get(page, ()):
                    reader = by_lsn[reader_lsn].op
                    lost = tuple(
                        sorted(
                            t
                            for t in reader.writeset
                            if page_lsn(t) < reader_lsn
                            and not covered_after(t, reader_lsn)
                        )
                    )
                    if lost:
                        violations.append(
                            OrderViolation(
                                reader_lsn, record.lsn, page, lost
                            )
                        )
        for page in op.readset:
            readers.setdefault(page, []).append(record.lsn)
    return violations


# --------------------------------------------------------- trace timelines


def render_timeline(events, max_redo_ops: int = 8) -> str:
    """Render a captured trace (see :mod:`repro.obs`) as a causal timeline.

    Events print chronologically, indented by span nesting; runs of
    ``redo_op`` events are elided beyond ``max_redo_ops`` per burst.  The
    footer links every injected fault to the recovery phases that later
    observed damage (``verify`` with diffs/poison, ``complete`` with
    ``ok=False``) — the first question a failed recoverability sweep
    asks: *which* injection broke *which* recovery.
    """
    from repro.obs import events as ev

    lines: List[str] = []
    depth = 0
    redo_run = 0
    faults: List[Any] = []
    observed: List[Any] = []

    def fmt(event) -> str:
        inner = " ".join(f"{k}={v}" for k, v in event.fields.items())
        return f"[{event.seq:>4}] +{event.t * 1000:9.3f}ms  {event.kind}  {inner}"

    for event in events:
        if event.kind == ev.REDO_OP:
            redo_run += 1
            if redo_run == max_redo_ops + 1:
                lines.append("  " * depth + "        ... (redo ops elided)")
            if redo_run > max_redo_ops:
                continue
        elif redo_run:
            redo_run = 0
        if event.kind == ev.SPAN_END:
            depth = max(depth - 1, 0)
        lines.append("  " * depth + fmt(event))
        if event.kind == ev.SPAN_BEGIN:
            depth += 1
        if event.kind == ev.FAULT_INJECTED:
            faults.append(event)
        if event.kind in (
            ev.CORRUPTION_DETECTED,
            ev.CHAIN_FALLBACK,
            ev.QUARANTINE,
        ):
            # Corruption observations and the healing actions taken for
            # them belong in the causality footer: they are how a
            # bit-flip injection links to the recovery that absorbed it.
            observed.append(event)
        if event.kind == ev.RECOVERY_PHASE:
            phase = event.get("phase")
            damaged = (
                phase == "verify"
                and (event.get("diffs", 0) or event.get("poisoned", 0))
            ) or (phase == "complete" and event.get("ok") is False)
            if damaged:
                observed.append(event)

    if faults:
        lines.append("")
        lines.append("causality:")
        for fault in faults:
            lines.append(
                f"  fault [{fault.seq}] {fault.get('kind')} at "
                f"{fault.get('point')} (io #{fault.get('io')})"
            )
            later = [o for o in observed if o.seq > fault.seq]
            if later:
                for obs in later:
                    if obs.kind == ev.RECOVERY_PHASE:
                        detail = " ".join(
                            f"{k}={v}"
                            for k, v in obs.fields.items()
                            if k not in ("kind", "phase")
                        )
                        lines.append(
                            f"    -> observed by {obs.get('kind')} recovery "
                            f"phase {obs.get('phase')!r} [{obs.seq}] {detail}"
                        )
                    else:
                        detail = " ".join(
                            f"{k}={v}" for k, v in obs.fields.items()
                        )
                        lines.append(
                            f"    -> {obs.kind} [{obs.seq}] {detail}"
                        )
            else:
                lines.append("    -> no recovery phase observed damage")
    return "\n".join(lines)
