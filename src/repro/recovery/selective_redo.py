"""Selective redo: recovery that excludes a corrupting source (§6.3).

The paper's third future direction:

    "Media recovery can protect against some application errors that
    corrupt the database.  In this case, we may not recover the latest
    database state, but a state that excludes the effects of the
    corrupting application.  This is difficult now.  Can we support
    this in a general way?"

This module implements a sound answer for the operation model of this
library.  Given a predicate marking *directly corrupt* log records
(e.g. everything logged by one application after some point), it

1. computes the **taint closure**: an operation is excluded if it is
   directly corrupt or if it *read* a page whose current value was
   produced by an excluded operation.  A kept operation's writes are
   computed from untainted inputs, so they cleanse their target pages;
2. restores from a backup that predates the corruption and replays only
   the kept records — producing exactly "a state that excludes the
   effects of the corrupting application";
3. refuses (``RecoveryError``) when exclusion is impossible from the
   given backup: some directly-corrupt record is at or before the
   backup's completion point, so its effects may already be inside the
   backup image.

The taint closure is the honest price of logical operations: a copy
that consumed corrupt data spreads the corruption, and this analysis
reports precisely which innocent operations had to be sacrificed
(``collateral`` in the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.parallel_redo import make_replayer
from repro.recovery.redo import surviving_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


@dataclass
class TaintAnalysis:
    """Result of the taint-closure computation."""

    directly_corrupt: List[LSN] = field(default_factory=list)
    collateral: List[LSN] = field(default_factory=list)
    tainted_pages_at_end: Set[PageId] = field(default_factory=set)

    @property
    def excluded(self) -> Set[LSN]:
        return set(self.directly_corrupt) | set(self.collateral)


def compute_taint(
    records,
    corrupt: Callable[[LogRecord], bool],
    group_of: Optional[Callable[[LogRecord], Optional[str]]] = None,
) -> TaintAnalysis:
    """Taint closure over a record sequence (see module docstring).

    ``group_of`` (optional) names an atomicity group per record —
    typically the transaction tag.  When any record of a group becomes
    collateral, the *whole group* is excluded (a half-excluded transfer
    would violate transaction atomicity).  Computed to a fixpoint, since
    excluding a group reclassifies its earlier records.
    """
    excluded_groups: Set[str] = set()
    while True:
        analysis = TaintAnalysis()
        tainted: Set[PageId] = set()
        grew = False
        for record in records:
            op = record.op
            group = group_of(record) if group_of is not None else None
            if corrupt(record):
                analysis.directly_corrupt.append(record.lsn)
                tainted |= op.writeset
            elif group is not None and group in excluded_groups:
                analysis.collateral.append(record.lsn)
                tainted |= op.writeset
            elif op.readset & tainted:
                analysis.collateral.append(record.lsn)
                tainted |= op.writeset
                if group is not None and group not in excluded_groups:
                    excluded_groups.add(group)
                    grew = True
            else:
                # Kept operation: its outputs derive from untainted
                # inputs (or from the log record itself, for blind
                # writes) and cleanse the pages they overwrite.
                tainted -= op.writeset
        if not grew:
            analysis.tainted_pages_at_end = tainted
            return analysis


# Selective redo used to return a two-field ``SelectiveRedoResult``
# wrapper; the recovery API is now unified on ``RecoveryOutcome`` (which
# carries ``analysis`` and a deprecated ``.outcome`` shim for the old
# ``result.outcome.ok`` shape).  The name is kept as an alias so existing
# imports and annotations keep working.
SelectiveRedoResult = RecoveryOutcome


def expected_state_excluding(
    log: LogManager,
    excluded: Set[LSN],
    initial_value: Any = None,
) -> Dict[PageId, Any]:
    """The oracle of the corruption-free history: apply kept records in
    order to an empty state (verification aid)."""
    state: Dict[PageId, Any] = {}
    for record in log.merge_scan(log.first_retained_lsn):
        if record.lsn in excluded:
            continue
        op = record.op
        reads = {pid: state.get(pid, initial_value) for pid in op.readset}
        for pid, value in op.apply(reads).items():
            state[pid] = value
    return state


def run_selective_redo(
    stable,
    backup: BackupDatabase,
    log: LogManager,
    corrupt: Callable[[LogRecord], bool],
    to_lsn: Optional[LSN] = None,
    initial_value: Any = None,
    verify: bool = True,
    group_of: Optional[Callable[[LogRecord], Optional[str]]] = None,
    tracer=None,
    redo_workers: int = 1,
    metrics=None,
) -> SelectiveRedoResult:
    """Restore from ``backup`` and roll forward excluding the taint.

    ``group_of`` enables transaction-atomic exclusion (see
    :func:`compute_taint`).
    """
    tracer = tracer or NULL_TRACER
    if backup is None or not backup.is_complete:
        raise NoBackupError("selective redo requires a completed backup")
    target = log.end_lsn if to_lsn is None else to_lsn
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="selective", phase="begin",
                    backup_id=backup.backup_id, target_lsn=target)

    records = list(log.merge_scan(backup.media_scan_start_lsn, target))
    with tracer.span("recovery.selective.taint"):
        analysis = compute_taint(records, corrupt, group_of=group_of)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="selective", phase="analysis",
                    directly_corrupt=len(analysis.directly_corrupt),
                    collateral=len(analysis.collateral))

    if analysis.directly_corrupt:
        first = analysis.directly_corrupt[0]
        if (
            backup.completion_lsn is not None
            and first <= backup.completion_lsn
        ):
            raise RecoveryError(
                f"corrupt record LSN {first} is at or before the backup's "
                f"completion LSN {backup.completion_lsn}: its effects may "
                "already be inside the backup image — use an older backup"
            )
    # Corruption before the scanned range cannot be excluded either.
    pre_range = [
        record
        for record in log.merge_scan(log.first_retained_lsn,
                               backup.media_scan_start_lsn - 1)
        if corrupt(record)
    ]
    if pre_range:
        raise RecoveryError(
            f"corrupt record LSN {pre_range[0].lsn} precedes the backup's "
            "media-log scan start — use an older backup"
        )

    # Off-line restore, then roll forward the kept records only.
    with tracer.span("recovery.selective.restore"):
        stable.restore_from(backup.pages(), initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="selective", phase="restore",
                    scan_start_lsn=backup.media_scan_start_lsn)
    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    excluded = analysis.excluded
    replayer = make_replayer(
        initial_value=initial_value,
        tracer=tracer,
        redo_workers=redo_workers,
        metrics=metrics,
    )
    kept = (record for record in records if record.lsn not in excluded)
    with tracer.span("recovery.selective.redo"):
        stats = replayer.replay(kept, state)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="selective", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped,
                    excluded=len(excluded))
    poisoned = surviving_poison(state)

    diffs: List[Tuple[PageId, Any, Any]] = []
    if verify and to_lsn is None:
        expected = expected_state_excluding(log, excluded, initial_value)
        diffs = diff_states(state, expected, initial_value)
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="selective", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned))

    for pid, ver in state.items():
        if stable.layout.contains(pid):
            stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="selective", phase="complete",
                    ok=not poisoned and not diffs)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="selective",
        analysis=analysis,
    )
