"""Media recovery: restore S from a backup B and roll forward (section 1).

The sequence is the paper's: (1) off-line restore — copy B onto the failed
medium; (2) roll forward — replay the media recovery log (the log suffix
from B's scan-start LSN) against the restored state using redo recovery.

Roll-forward can target any LSN at or after the backup's completion LSN
("to the desired time, usually the most recent committed state").  Earlier
targets are rejected: the backup is fuzzy and may already contain effects
of operations up to its completion point.

Corruption handling (self-healing): before restoring, the backup image is
verified against its integrity envelopes.  If any page is damaged the
recovery falls back to the *previous generation* in the backup chain
(``fallback``, newest first) — an older but fully intact image plus a
longer redo span, which the LSN redo test makes cost-only, never wrong.
Whole images are preferred over mixing pages across generations because a
per-page mix can hand a replayed logical operation inputs from the wrong
point in time.  Only when *no* intact generation exists does recovery
degrade: the damaged pages are seeded as POISON so replay either heals
them (a later blind physical/identity record rewrites them) or honestly
propagates the loss, and whatever remains unrecoverable is reported in
``RecoveryOutcome.quarantined`` instead of crashing or silently restoring
garbage.

The generation-selection gate (:func:`resolve_media_target` +
:func:`select_generation`) is factored out so instant restore
(:mod:`repro.recovery.instant_restore`) makes exactly the same choice the
offline path would — the equivalence property depends on it.

Restore and roll-forward run as **one streamed pass**: the chosen image
is iterated once (``iter_pages``), feeding the stable re-format and the
replay state simultaneously, so peak memory is O(backup pages held in
``state``) instead of the old O(2·DB) double materialization
(``chosen.pages()`` dict + a second full dict re-read from stable).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import (
    CHAIN_FALLBACK,
    CORRUPTION_DETECTED,
    QUARANTINE,
    RECOVERY_PHASE,
    RESTORE_DROP,
)
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.parallel_redo import make_replayer
from repro.recovery.redo import (
    POISON,
    contains_poison,
    surviving_poison,
)
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager

#: Rejection reasons emitted by :func:`_usable_fallback` (CHAIN_FALLBACK
#: ``action="reject-generation"`` events carry one of these).
REJECT_NOT_COMPLETE = "not-complete"
REJECT_PAST_TARGET = "completion-past-target"
REJECT_LOG_TRUNCATED = "log-truncated"
REJECT_DAMAGED = "damaged"


def _usable_fallback(
    older: Optional[BackupDatabase],
    target: LSN,
    log: LogManager,
    tracer,
    metrics=None,
) -> bool:
    """Can media recovery restore from this older generation?

    It must be sealed, complete at or before the roll-forward target,
    have its whole redo span still on the log, and verify clean.  A
    rejected generation is never silent: each one emits a
    ``CHAIN_FALLBACK`` event with ``action="reject-generation"`` and the
    reason, and bumps ``Metrics.fallback_rejections`` — fallback
    decisions are debuggable from traces alone.
    """
    reason = None
    if older is None or not older.is_complete:
        reason = REJECT_NOT_COMPLETE
    elif older.completion_lsn is not None and older.completion_lsn > target:
        # The older image is fuzzy up to its completion point, which lies
        # beyond the roll-forward target: it cannot serve this target.
        reason = REJECT_PAST_TARGET
    elif older.media_scan_start_lsn < log.first_retained_lsn:
        # Its redo span fell off the retained log: replaying from the
        # surviving prefix could miss updates the copy does not reflect.
        reason = REJECT_LOG_TRUNCATED
    else:
        damaged = older.damaged_pages()
        if damaged:
            if tracer.enabled:
                tracer.emit(
                    CORRUPTION_DETECTED, site="backup",
                    backup_id=older.backup_id,
                    pages=[str(p) for p in damaged],
                )
            reason = REJECT_DAMAGED
    if reason is None:
        return True
    if metrics is not None:
        metrics.fallback_rejections += 1
    if tracer.enabled:
        tracer.emit(
            CHAIN_FALLBACK, action="reject-generation", reason=reason,
            backup_id=getattr(older, "backup_id", None),
        )
    return False


def resolve_media_target(
    backup: BackupDatabase, log: LogManager, to_lsn: Optional[LSN]
) -> LSN:
    """Validate the backup and resolve the roll-forward target LSN.

    Shared by the offline path and instant restore so both reject the
    same inputs: the backup must be sealed, and the target must not
    precede its (fuzzy) completion point.
    """
    if backup is None:
        raise NoBackupError("no backup available for media recovery")
    if not backup.is_complete:
        raise NoBackupError(
            f"backup {backup.backup_id} is {backup.status.value}; media "
            "recovery requires a completed backup"
        )
    target = log.end_lsn if to_lsn is None else to_lsn
    if backup.completion_lsn is not None and target < backup.completion_lsn:
        raise RecoveryError(
            f"cannot roll forward to LSN {target}: backup completed at "
            f"{backup.completion_lsn} and is fuzzy before that point"
        )
    return target


def select_generation(
    backup: BackupDatabase,
    target: LSN,
    log: LogManager,
    fallback: Sequence[BackupDatabase] = (),
    tracer=None,
    metrics=None,
) -> Tuple[BackupDatabase, List[PageId]]:
    """The integrity gate: pick the newest intact generation.

    Returns ``(chosen, quarantine_seed)``.  ``quarantine_seed`` is empty
    unless *no* intact generation exists, in which case the newest image
    is used minus its damaged pages (the degrade path).  Reused verbatim
    by instant restore so lazy and offline recovery restore from the
    same image.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    damaged = backup.damaged_pages()
    if not damaged:
        return backup, []
    if tracer.enabled:
        tracer.emit(
            CORRUPTION_DETECTED, site="backup",
            backup_id=backup.backup_id,
            pages=[str(p) for p in damaged],
        )
    for older in fallback:
        if _usable_fallback(older, target, log, tracer, metrics):
            if tracer.enabled:
                tracer.emit(
                    CHAIN_FALLBACK, action="older-generation",
                    from_backup=backup.backup_id,
                    to_backup=older.backup_id,
                    scan_start_lsn=older.media_scan_start_lsn,
                )
            return older, []
    # No intact generation anywhere: degrade, don't crash.  The newest
    # image is used minus its damaged pages, which replay either heals
    # (blind rewrite) or proves lost.
    if tracer.enabled:
        tracer.emit(
            CHAIN_FALLBACK, action="quarantine",
            backup_id=backup.backup_id, pages=len(damaged),
        )
    return backup, damaged


def install_recovered_page(
    stable: StableDatabase,
    pid: PageId,
    version: PageVersion,
    initial_value: Any,
    tracer=None,
    metrics=None,
    kind: str = "media",
) -> bool:
    """Install one replayed page into stable, with drop/quarantine rules.

    Out-of-layout pages (a replayed logical op can touch identifiers the
    stable layout never held, e.g. in the degrade path) are **not**
    installed — but they are never dropped silently: a ``RESTORE_DROP``
    event and ``Metrics.pages_dropped_out_of_layout`` record each one.
    Pages whose value still carries POISON are formatted to the initial
    value rather than installing garbage.  Returns ``True`` iff the
    page's replayed value was installed as-is.
    """
    if not stable.layout.contains(pid):
        if metrics is not None:
            metrics.pages_dropped_out_of_layout += 1
        if tracer is not None and tracer.enabled:
            tracer.emit(
                RESTORE_DROP, page=str(pid), reason="out-of-layout",
                kind=kind,
            )
        return False
    if contains_poison(version.value):
        # Quarantined: format the cell rather than install garbage.
        stable.install_version(pid, PageVersion(initial_value, NULL_LSN))
        return False
    stable.install_version(pid, version)
    return True


def run_media_recovery(
    stable: StableDatabase,
    backup: BackupDatabase,
    log: LogManager,
    to_lsn: Optional[LSN] = None,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
    fallback: Sequence[BackupDatabase] = (),
    metrics=None,
    redo_workers: int = 1,
) -> RecoveryOutcome:
    """Restore ``stable`` from ``backup`` and roll forward to ``to_lsn``.

    ``fallback`` lists older completed backup generations, newest first;
    they are consulted (whole-image, longer redo span) when ``backup``
    fails its integrity check.  ``metrics`` (optional) receives
    fallback-rejection and dropped-page counts.  ``redo_workers > 1``
    fans the roll-forward replay out to the dependency-aware parallel
    replayer; the streamed single-pass restore is unaffected.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    target = resolve_media_target(backup, log, to_lsn)

    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="begin",
                    backup_id=backup.backup_id, target_lsn=target)

    # Integrity gate: pick the newest generation whose image is intact.
    chosen, quarantine_seed = select_generation(
        backup, target, log, fallback, tracer, metrics
    )

    # (1) Off-line restore, streamed: one pass over the chosen image
    # feeds both the stable re-format and the replay state — the backup
    # is never materialized as a second full dict.
    state: Dict[PageId, PageVersion] = {}
    seeds = set(quarantine_seed)

    def _stream():
        for pid, ver in chosen.iter_pages():
            if pid in seeds:
                continue
            state[pid] = ver
            yield pid, ver

    with tracer.span("recovery.media.restore"):
        stable.restore_from(_stream(), initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="restore",
                    backup_id=chosen.backup_id,
                    scan_start_lsn=chosen.media_scan_start_lsn)

    # (2) Roll forward with the media recovery log.  Pages absent from
    # ``state`` (never copied, or formatted to the initial value) are
    # materialized lazily by the replayer, exactly as the formatted cell
    # would read.
    for pid in quarantine_seed:
        # Content lost; POISON propagates honestly through replay unless
        # a later blind record rewrites the page.
        state[pid] = PageVersion(POISON, NULL_LSN)
    replayer = make_replayer(
        initial_value=initial_value,
        tracer=tracer,
        redo_workers=redo_workers,
        metrics=metrics,
    )
    with tracer.span("recovery.media.redo"):
        stats = replayer.replay(
            log.merge_scan(chosen.media_scan_start_lsn, target), state
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    quarantined: List[PageId] = []
    if quarantine_seed:
        # Every surviving POISON traces back to the corrupted pages (the
        # seeds plus anything their loss transitively tainted).
        quarantined = poisoned
        poisoned = []
        if tracer.enabled:
            for pid in quarantined:
                tracer.emit(QUARANTINE, page=str(pid), kind="media")
    quarantined_set = set(quarantined)
    diffs = []
    if oracle is not None:
        diffs = [
            d
            for d in diff_states(state, oracle, initial_value)
            if d[0] not in quarantined_set
        ]
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="media", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned),
                        quarantined=len(quarantined))
    for pid, ver in state.items():
        install_recovered_page(
            stable, pid, ver, initial_value, tracer, metrics, kind="media"
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="complete",
                    ok=not poisoned and not diffs,
                    quarantined=len(quarantined))
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="media",
        quarantined=quarantined,
    )
