"""Media recovery: restore S from a backup B and roll forward (section 1).

The sequence is the paper's: (1) off-line restore — copy B onto the failed
medium; (2) roll forward — replay the media recovery log (the log suffix
from B's scan-start LSN) against the restored state using redo recovery.

Roll-forward can target any LSN at or after the backup's completion LSN
("to the desired time, usually the most recent committed state").  Earlier
targets are rejected: the backup is fuzzy and may already contain effects
of operations up to its completion point.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def run_media_recovery(
    stable: StableDatabase,
    backup: BackupDatabase,
    log: LogManager,
    to_lsn: Optional[LSN] = None,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
) -> RecoveryOutcome:
    """Restore ``stable`` from ``backup`` and roll forward to ``to_lsn``."""
    tracer = tracer or NULL_TRACER
    if backup is None:
        raise NoBackupError("no backup available for media recovery")
    if not backup.is_complete:
        raise NoBackupError(
            f"backup {backup.backup_id} is {backup.status.value}; media "
            "recovery requires a completed backup"
        )
    target = log.end_lsn if to_lsn is None else to_lsn
    if backup.completion_lsn is not None and target < backup.completion_lsn:
        raise RecoveryError(
            f"cannot roll forward to LSN {target}: backup completed at "
            f"{backup.completion_lsn} and is fuzzy before that point"
        )

    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="begin",
                    backup_id=backup.backup_id, target_lsn=target)

    # (1) Off-line restore: re-format S from the backup image.
    with tracer.span("recovery.media.restore"):
        stable.restore_from(backup.pages(), initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="restore",
                    scan_start_lsn=backup.media_scan_start_lsn)

    # (2) Roll forward with the media recovery log.
    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    replayer = RedoReplayer(initial_value=initial_value, tracer=tracer)
    with tracer.span("recovery.media.redo"):
        stats = replayer.replay(
            log.scan(backup.media_scan_start_lsn, target), state
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    diffs = []
    if oracle is not None:
        diffs = diff_states(state, oracle, initial_value)
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="media", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned))
    for pid, ver in state.items():
        if stable.layout.contains(pid):
            stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="complete",
                    ok=not poisoned and not diffs)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="media",
    )
