"""Media recovery: restore S from a backup B and roll forward (section 1).

The sequence is the paper's: (1) off-line restore — copy B onto the failed
medium; (2) roll forward — replay the media recovery log (the log suffix
from B's scan-start LSN) against the restored state using redo recovery.

Roll-forward can target any LSN at or after the backup's completion LSN
("to the desired time, usually the most recent committed state").  Earlier
targets are rejected: the backup is fuzzy and may already contain effects
of operations up to its completion point.

Corruption handling (self-healing): before restoring, the backup image is
verified against its integrity envelopes.  If any page is damaged the
recovery falls back to the *previous generation* in the backup chain
(``fallback``, newest first) — an older but fully intact image plus a
longer redo span, which the LSN redo test makes cost-only, never wrong.
Whole images are preferred over mixing pages across generations because a
per-page mix can hand a replayed logical operation inputs from the wrong
point in time.  Only when *no* intact generation exists does recovery
degrade: the damaged pages are seeded as POISON so replay either heals
them (a later blind physical/identity record rewrites them) or honestly
propagates the loss, and whatever remains unrecoverable is reported in
``RecoveryOutcome.quarantined`` instead of crashing or silently restoring
garbage.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import (
    CHAIN_FALLBACK,
    CORRUPTION_DETECTED,
    QUARANTINE,
    RECOVERY_PHASE,
)
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import (
    POISON,
    RedoReplayer,
    contains_poison,
    surviving_poison,
)
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def _usable_fallback(
    older: Optional[BackupDatabase],
    target: LSN,
    log: LogManager,
    tracer,
) -> bool:
    """Can media recovery restore from this older generation?

    It must be sealed, complete at or before the roll-forward target,
    have its whole redo span still on the log, and verify clean.
    """
    if older is None or not older.is_complete:
        return False
    if older.completion_lsn is not None and older.completion_lsn > target:
        return False
    if older.media_scan_start_lsn < log.first_retained_lsn:
        return False
    damaged = older.damaged_pages()
    if damaged:
        if tracer.enabled:
            tracer.emit(
                CORRUPTION_DETECTED, site="backup",
                backup_id=older.backup_id,
                pages=[str(p) for p in damaged],
            )
        return False
    return True


def run_media_recovery(
    stable: StableDatabase,
    backup: BackupDatabase,
    log: LogManager,
    to_lsn: Optional[LSN] = None,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
    fallback: Sequence[BackupDatabase] = (),
) -> RecoveryOutcome:
    """Restore ``stable`` from ``backup`` and roll forward to ``to_lsn``.

    ``fallback`` lists older completed backup generations, newest first;
    they are consulted (whole-image, longer redo span) when ``backup``
    fails its integrity check.
    """
    tracer = tracer or NULL_TRACER
    if backup is None:
        raise NoBackupError("no backup available for media recovery")
    if not backup.is_complete:
        raise NoBackupError(
            f"backup {backup.backup_id} is {backup.status.value}; media "
            "recovery requires a completed backup"
        )
    target = log.end_lsn if to_lsn is None else to_lsn
    if backup.completion_lsn is not None and target < backup.completion_lsn:
        raise RecoveryError(
            f"cannot roll forward to LSN {target}: backup completed at "
            f"{backup.completion_lsn} and is fuzzy before that point"
        )

    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="begin",
                    backup_id=backup.backup_id, target_lsn=target)

    # Integrity gate: pick the newest generation whose image is intact.
    chosen = backup
    quarantine_seed: List[PageId] = []
    damaged = backup.damaged_pages()
    if damaged:
        if tracer.enabled:
            tracer.emit(
                CORRUPTION_DETECTED, site="backup",
                backup_id=backup.backup_id,
                pages=[str(p) for p in damaged],
            )
        chosen = None
        for older in fallback:
            if _usable_fallback(older, target, log, tracer):
                chosen = older
                if tracer.enabled:
                    tracer.emit(
                        CHAIN_FALLBACK, action="older-generation",
                        from_backup=backup.backup_id,
                        to_backup=older.backup_id,
                        scan_start_lsn=older.media_scan_start_lsn,
                    )
                break
        if chosen is None:
            # No intact generation anywhere: degrade, don't crash.  The
            # newest image is used minus its damaged pages, which replay
            # either heals (blind rewrite) or proves lost.
            chosen = backup
            quarantine_seed = damaged
            if tracer.enabled:
                tracer.emit(
                    CHAIN_FALLBACK, action="quarantine",
                    backup_id=backup.backup_id, pages=len(damaged),
                )

    # (1) Off-line restore: re-format S from the chosen backup image.
    restore_pages = chosen.pages()
    for pid in quarantine_seed:
        restore_pages.pop(pid, None)
    with tracer.span("recovery.media.restore"):
        stable.restore_from(restore_pages, initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="restore",
                    backup_id=chosen.backup_id,
                    scan_start_lsn=chosen.media_scan_start_lsn)

    # (2) Roll forward with the media recovery log.
    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    for pid in quarantine_seed:
        # Content lost; POISON propagates honestly through replay unless
        # a later blind record rewrites the page.
        state[pid] = PageVersion(POISON, NULL_LSN)
    replayer = RedoReplayer(initial_value=initial_value, tracer=tracer)
    with tracer.span("recovery.media.redo"):
        stats = replayer.replay(
            log.merge_scan(chosen.media_scan_start_lsn, target), state
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    quarantined: List[PageId] = []
    if quarantine_seed:
        # Every surviving POISON traces back to the corrupted pages (the
        # seeds plus anything their loss transitively tainted).
        quarantined = poisoned
        poisoned = []
        if tracer.enabled:
            for pid in quarantined:
                tracer.emit(QUARANTINE, page=str(pid), kind="media")
    quarantined_set = set(quarantined)
    diffs = []
    if oracle is not None:
        diffs = [
            d
            for d in diff_states(state, oracle, initial_value)
            if d[0] not in quarantined_set
        ]
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="media", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned),
                        quarantined=len(quarantined))
    for pid, ver in state.items():
        if not stable.layout.contains(pid):
            continue
        if contains_poison(ver.value):
            # Quarantined: format the cell rather than install garbage.
            stable.install_version(pid, PageVersion(initial_value, NULL_LSN))
            continue
        stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media", phase="complete",
                    ok=not poisoned and not diffs,
                    quarantined=len(quarantined))
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="media",
        quarantined=quarantined,
    )
