"""The analysis pass: reconstruct recovery state from the log alone.

Real redo recovery (ARIES-style) starts with an *analysis* scan: find
the most recent checkpoint, rebuild the dirty-page table from it plus
the records that follow, and derive the redo scan start.  This module
supplies that pass so crash recovery does not depend on any volatile
bookkeeping surviving the crash:

* :func:`analyze_log` — one backward+forward scan producing an
  :class:`AnalysisResult` (last checkpoint, reconstructed dirty-page
  table upper bound, redo scan start, counts);
* :func:`run_analyzed_crash_recovery` — analysis + redo, the fully
  self-contained recovery path (used by ``Database.recover`` when asked
  for ``from_log_only``).

The reconstructed dirty-page table is an upper bound: a page counts as
possibly-dirty from its first update record after the checkpoint (or
its checkpointed recLSN) until the end — flushes are not logged, so
analysis cannot remove pages.  That only widens the redo scan, never
narrows it; the LSN redo test makes the extra records harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.crash_recovery import run_crash_recovery
from repro.recovery.explain import RecoveryOutcome
from repro.storage.stable_db import StableDatabase
from repro.wal.checkpoint import CheckpointOp
from repro.wal.log_manager import LogManager


@dataclass
class AnalysisResult:
    checkpoint_lsn: Optional[LSN]
    redo_scan_start: LSN
    dirty_page_table: Dict[PageId, LSN] = field(default_factory=dict)
    records_analyzed: int = 0

    def summary(self) -> str:
        checkpoint = (
            f"checkpoint@{self.checkpoint_lsn}"
            if self.checkpoint_lsn
            else "no checkpoint"
        )
        return (
            f"analysis: {checkpoint}, redo from {self.redo_scan_start}, "
            f"{len(self.dirty_page_table)} possibly-dirty pages, "
            f"{self.records_analyzed} records"
        )


def analyze_log(log: LogManager) -> AnalysisResult:
    """Reconstruct the recovery starting state from the durable log."""
    # Backward pass: locate the most recent durable checkpoint.
    checkpoint_record = None
    for record in log.durable_merge_scan(log.first_retained_lsn):
        if isinstance(record.op, CheckpointOp):
            checkpoint_record = record

    dirty: Dict[PageId, LSN] = {}
    if checkpoint_record is not None:
        dirty.update(checkpoint_record.op.dirty_table)
        forward_start = checkpoint_record.lsn + 1
    else:
        forward_start = log.first_retained_lsn

    # Forward pass: every page updated after the checkpoint is possibly
    # dirty from its first such record.
    analyzed = 0
    for record in log.durable_merge_scan(forward_start):
        analyzed += 1
        for page in record.op.writeset:
            dirty.setdefault(page, record.lsn)

    if dirty:
        redo_start = min(dirty.values())
    elif checkpoint_record is not None:
        redo_start = checkpoint_record.lsn + 1
    else:
        redo_start = log.first_retained_lsn
    return AnalysisResult(
        checkpoint_lsn=(
            checkpoint_record.lsn if checkpoint_record is not None else None
        ),
        redo_scan_start=redo_start,
        dirty_page_table=dirty,
        records_analyzed=analyzed,
    )


def run_analyzed_crash_recovery(
    stable: StableDatabase,
    log: LogManager,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
    redo_workers: int = 1,
    metrics=None,
) -> RecoveryOutcome:
    """Analysis pass + redo pass, self-contained from S and the log."""
    tracer = tracer or NULL_TRACER
    with tracer.span("recovery.analysis"):
        analysis = analyze_log(log)
    if tracer.enabled:
        tracer.emit(
            RECOVERY_PHASE,
            kind="analysis",
            phase="analysis",
            checkpoint_lsn=analysis.checkpoint_lsn,
            redo_scan_start=analysis.redo_scan_start,
            dirty_pages=len(analysis.dirty_page_table),
        )
    return run_crash_recovery(
        stable,
        log,
        scan_start_lsn=analysis.redo_scan_start,
        oracle=oracle,
        initial_value=initial_value,
        tracer=tracer,
        redo_workers=redo_workers,
        metrics=metrics,
    )
