"""Instant (incremental) media restore: serve traffic *during* recovery.

The offline path (:func:`repro.recovery.media_recovery.run_media_recovery`)
is stop-the-world: the database is unavailable from media failure until
the full image is restored and the whole media log replayed.  Sauer &
Härder's instant-restore observation is that nothing forces that: restore
state is page-granular, so an access to a not-yet-restored page can
trigger *single-page* restore (copy the page from the chosen backup
generation, then replay just the media-log slice that touches it), while
eager background restore works through the remaining partitions on the
PR 5/7 worker pool.  Time-to-first-query drops from O(database) to O(one
page's restore + redo).

The pieces:

* **Restored bitmap** — one per-partition set of restored slots, keyed by
  the backup's partition structure; per-partition D/P-style frontiers
  (``pages_done``) report progress.  A page is restored exactly once, no
  matter which path gets there first.
* **Demand-driven redo evaluator** — the media-log slice
  (``log.merge_scan(scan_start, target)``, snapshotted at begin) is
  indexed by writer page.  Each record's *effect* (which stale pages it
  rewrote, with what versions) is memoized on first demand; a page's
  final version walks its writer list backwards through memoized
  effects.  Logical multi-page operations make effects interdependent
  (a record's staleness and reads depend on earlier writers of its
  write- and read-set), so effects are resolved with an explicit
  iterative work stack — no recursion, dependencies are strictly earlier
  slice indices, total work over a full drain is the same O(slice) the
  sequential replayer pays.  The per-record classification (skip vs
  replay, poisoned results, partial replays) reproduces
  :class:`~repro.recovery.redo.RedoReplayer` exactly, by induction over
  the slice — that is what makes :meth:`RestoreManager.drain`
  byte-identical to the offline outcome.
* **Lazy path** — ``CacheManager.restore_hook`` (installed by
  :meth:`repro.db.Database.begin_instant_restore`) calls
  :meth:`RestoreManager.ensure_restored` for every cache-missed read and
  every written page before an operation applies, so traffic only ever
  observes fully recovered values.
* **Eager pool** — :meth:`RestoreManager.start_background` fans
  per-partition restore out to a thread pool (or, for file-backed
  backups, ships span reads to a :class:`ProcessPoolExecutor` via the
  picklable :func:`repro.storage.file_backend.read_backup_span_file`).
  Span reads pay device cost outside the manager lock; installs are
  page-granular under the lock, so an on-demand access never waits for
  more than one page's install.

Generation selection and quarantine reuse the offline gate
(:func:`~repro.recovery.media_recovery.select_generation`): bitrot in
the newest backup falls back to an older intact generation, and when no
intact generation exists the damaged pages are seeded POISON and
quarantined exactly as the offline degrade path would.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import nullcontext
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import QUARANTINE, RESTORE_PROGRESS
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.media_recovery import (
    install_recovered_page,
    resolve_media_target,
    select_generation,
)
from repro.recovery.redo import POISON, contains_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager

__all__ = ["RestoreManager", "RestoredBitmap"]

#: Sentinel distinguishing "effect not yet computed" from "record skipped"
#: (whose memoized effect is ``None``).
_UNSET = object()


class RestoredBitmap:
    """Page-granular restore progress, keyed by the partition structure.

    One set of restored slots per partition plus a per-partition done
    counter — the restore-side analogue of the backup's D/P frontiers.
    Not internally locked; the owning :class:`RestoreManager` serializes
    access under its lock.
    """

    def __init__(self, layout):
        self.layout = layout
        self._slots: List[Set[int]] = [
            set() for _ in range(layout.num_partitions)
        ]

    def is_restored(self, pid: PageId) -> bool:
        return pid.slot in self._slots[pid.partition]

    def mark(self, pid: PageId) -> bool:
        """Mark one page restored; False if it already was."""
        slots = self._slots[pid.partition]
        if pid.slot in slots:
            return False
        slots.add(pid.slot)
        return True

    def pages_done(self, partition: int) -> int:
        return len(self._slots[partition])

    def partition_complete(self, partition: int) -> bool:
        return (
            len(self._slots[partition])
            >= self.layout.partition_size(partition)
        )

    @property
    def total_done(self) -> int:
        return sum(len(s) for s in self._slots)

    @property
    def complete(self) -> bool:
        return self.total_done >= self.layout.total_pages()


class _SliceEvaluator:
    """Demand-driven, memoized redo over one media-log slice.

    Reproduces the sequential :class:`RedoReplayer` record-for-record:
    ``_effects[i]`` is ``None`` when record ``i`` would have been skipped
    (no stale write-set page at its turn), else the ``{page: version}``
    mapping it would have installed.  Versions are built exactly the way
    the replayer builds them (``__new__`` + ``object.__setattr__``) so
    POISON and arbitrary replay results round-trip unvalidated.
    """

    def __init__(
        self,
        records: Sequence,
        base: Dict[PageId, PageVersion],
        initial_value: Any,
        fetch=None,
    ):
        self._records = list(records)
        self._base = base
        # Lazily pulls a page's backup copy into ``base`` the first time
        # the slice consults it (the single-page-read cost model); pages
        # absent from the backup read as the freshly formatted cell.
        self._fetch = fetch
        self._fetched: Set[PageId] = set()
        self._initial_value = initial_value
        # page -> ascending slice indices of records with the page in
        # their writeset (potential writers; whether one actually wrote
        # depends on its memoized effect).
        self._writers: Dict[PageId, List[int]] = {}
        for i, record in enumerate(self._records):
            for page in record.op.writeset:
                self._writers.setdefault(page, []).append(i)
        self._effects: Dict[int, Optional[Dict[PageId, PageVersion]]] = {}
        # Sequential-replay counters, valid once every effect is computed.
        self.ops_replayed = 0
        self.ops_skipped = 0
        self.partial_replays = 0
        self.poisoned: List[PageId] = []

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------ versions

    def _base_version(self, page: PageId) -> PageVersion:
        base = self._base
        if page not in base and page not in self._fetched:
            self._fetched.add(page)
            version = self._fetch(page) if self._fetch is not None else None
            if version is not None:
                base[page] = version
        version = base.get(page)
        if version is None:
            return PageVersion(self._initial_value, NULL_LSN)
        return version

    def _version_before(self, page: PageId, index: int) -> PageVersion:
        """The page's version as record ``index`` would observe it.

        Requires the effects of every writer that must be consulted to
        already be memoized (guaranteed after :meth:`_ensure_effect` on
        ``index``'s dependencies).
        """
        writers = self._writers.get(page)
        if writers:
            pos = bisect_left(writers, index) - 1
            while pos >= 0:
                effect = self._effects[writers[pos]]
                if effect is not None:
                    version = effect.get(page)
                    if version is not None:
                        return version
                pos -= 1
        return self._base_version(page)

    def final_version(self, page: PageId) -> PageVersion:
        """The page's version after the whole slice has replayed."""
        self._ensure_writers_resolved(page)
        return self._version_before(page, len(self._records))

    # ------------------------------------------------------------- effects

    def _missing_deps(self, index: int) -> List[int]:
        """Uncomputed earlier effects record ``index`` depends on.

        For each page the record writes or reads, walk its writer list
        backwards from ``index``: the first writer whose effect is
        unknown blocks resolution for that page (an earlier writer only
        matters if every later one provably skipped or did not write the
        page, which requires their effects).
        """
        record = self._records[index]
        op = record.op
        effects = self._effects
        missing: List[int] = []
        for page in list(op.writeset) + list(op.readset):
            writers = self._writers.get(page)
            if not writers:
                continue
            pos = bisect_left(writers, index) - 1
            while pos >= 0:
                j = writers[pos]
                effect = effects.get(j, _UNSET)
                if effect is _UNSET:
                    missing.append(j)
                    break
                if effect is not None and page in effect:
                    break
                pos -= 1
        return missing

    def _ensure_effect(self, index: int) -> None:
        """Memoize record ``index``'s effect (iterative, no recursion).

        The work stack revisits an index after its newly discovered
        dependencies resolve; every dependency is a strictly earlier
        index, so the computation terminates, and each record's effect
        is computed exactly once.
        """
        if index in self._effects:
            return
        stack = [index]
        effects = self._effects
        while stack:
            i = stack[-1]
            if i in effects:
                stack.pop()
                continue
            todo = [j for j in self._missing_deps(i) if j not in effects]
            if todo:
                stack.extend(todo)
                continue
            effects[i] = self._compute_effect(i)
            stack.pop()

    def _compute_effect(
        self, index: int
    ) -> Optional[Dict[PageId, PageVersion]]:
        """Record ``index``'s effect, with all dependencies memoized.

        Mirrors one iteration of ``RedoReplayer.replay`` verbatim: the
        LSN redo test per write-set page, reads from the pre-record
        versions, exception → POISON for the stale pages.
        """
        record = self._records[index]
        op = record.op
        lsn = record.lsn
        stale = [
            page
            for page in op.writeset
            if self._version_before(page, index).page_lsn < lsn
        ]
        if not stale:
            self.ops_skipped += 1
            return None
        if len(stale) < len(op.writeset):
            self.partial_replays += 1
        reads = {
            page: self._version_before(page, index).value
            for page in op.readset
        }
        try:
            result = op.apply(reads)
        except Exception:
            result = {page: POISON for page in stale}
            self.poisoned.extend(stale)
        self.ops_replayed += 1
        effect: Dict[PageId, PageVersion] = {}
        for page in stale:
            version = PageVersion.__new__(PageVersion)
            # Bypass value checking: POISON and arbitrary replay results
            # are stored as-is, exactly like the sequential replayer.
            object.__setattr__(version, "value", result[page])
            object.__setattr__(version, "page_lsn", lsn)
            effect[page] = version
        return effect

    def _ensure_writers_resolved(self, page: PageId) -> None:
        """Memoize the effects :meth:`_version_before` will consult."""
        writers = self._writers.get(page)
        if not writers:
            return
        pos = len(writers) - 1
        while pos >= 0:
            j = writers[pos]
            self._ensure_effect(j)
            effect = self._effects[j]
            if effect is not None and page in effect:
                return
            pos -= 1

    def evaluate_all(self) -> None:
        """Memoize every record's effect, in slice order.

        After this the counters (``ops_replayed``/``ops_skipped``/...)
        equal the sequential replayer's for the same slice and base.
        """
        for i in range(len(self._records)):
            self._ensure_effect(i)

    def final_state(self) -> Dict[PageId, PageVersion]:
        """The exact ``state`` dict the sequential replayer would leave.

        Key materialization matters for outcome parity: a record's
        write-set pages enter the state when their staleness is tested;
        its read-set pages enter only if the record actually replays.
        Requires :meth:`evaluate_all` first.
        """
        state: Dict[PageId, PageVersion] = dict(self._base)
        initial = self._initial_value
        for i, record in enumerate(self._records):
            op = record.op
            for page in op.writeset:
                if page not in state:
                    state[page] = PageVersion(initial, NULL_LSN)
            effect = self._effects[i]
            if effect is None:
                continue
            for page in op.readset:
                if page not in state:
                    state[page] = PageVersion(initial, NULL_LSN)
            state.update(effect)
        return state


class RestoreManager:
    """Coordinates one instant media restore.

    Lifecycle: construct → :meth:`begin` (select generation, snapshot
    the media-log slice, re-format stable) → traffic flows through the
    cache manager's ``restore_hook`` (:meth:`ensure_restored`) while
    :meth:`start_background` works through partitions → :meth:`drain`
    completes everything outstanding and returns a
    :class:`RecoveryOutcome` byte-identical to the offline path's.

    One re-entrant lock guards the bitmap, the evaluator's memo tables,
    and page installs; backup span reads (the device-cost part) run
    outside it.
    """

    def __init__(
        self,
        stable: StableDatabase,
        backup: BackupDatabase,
        log: LogManager,
        to_lsn: Optional[LSN] = None,
        fallback: Sequence[BackupDatabase] = (),
        oracle: Optional[Mapping[PageId, Any]] = None,
        initial_value: Any = None,
        tracer=None,
        metrics=None,
        io_guard=None,
        redo_workers: int = 1,
    ):
        self.stable = stable
        self.backup = backup
        self.log = log
        self.to_lsn = to_lsn
        self.fallback = list(fallback)
        self.oracle = oracle
        self.initial_value = initial_value
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        # redo_workers > 1: the background sweep additionally *primes*
        # the evaluator's memo table with the dependency-aware parallel
        # replayer (see _prime_effects), composed with the same pool.
        self.redo_workers = redo_workers
        self._primed = False
        # Context-manager factory wrapped around restore-driven stable
        # I/O (Database passes ``_faults_suspended``: recovery I/O is
        # driven by the recovery algorithm, not the workload under test).
        self._io_guard = io_guard or nullcontext
        self._lock = threading.RLock()
        self.bitmap = RestoredBitmap(stable.layout)
        self.chosen: Optional[BackupDatabase] = None
        self.target: Optional[LSN] = None
        self.quarantine_seed: List[PageId] = []
        self._seeds: Set[PageId] = set()
        self._evaluator: Optional[_SliceEvaluator] = None
        self._poison_installed: Set[PageId] = set()
        self._pool = None
        self._futures: List = []
        self._began = False
        self._drained: Optional[RecoveryOutcome] = None
        self._t_begin: Optional[float] = None
        self._first_demand_ms: Optional[float] = None

    # ---------------------------------------------------------------- begin

    def begin(self) -> "RestoreManager":
        """Select the generation, snapshot the log slice, format stable.

        After this every page is marked not-yet-restored and the stable
        store is readable again (formatted to the initial value); the
        cache manager's hook lazily fills pages as traffic touches them.
        """
        if self._began:
            return self
        self.target = resolve_media_target(self.backup, self.log, self.to_lsn)
        self.chosen, self.quarantine_seed = select_generation(
            self.backup, self.target, self.log, self.fallback,
            self.tracer, self.metrics,
        )
        self._seeds = set(self.quarantine_seed)
        # Snapshot the media-log slice now: traffic served mid-restore
        # appends records beyond the target, which must not replay.
        records = list(
            self.log.merge_scan(self.chosen.media_scan_start_lsn, self.target)
        )
        base: Dict[PageId, PageVersion] = {}
        for pid in self.quarantine_seed:
            base[pid] = PageVersion(POISON, NULL_LSN)
        self._base = base
        self._evaluator = _SliceEvaluator(
            records, base, self.initial_value, fetch=self._fetch_base,
        )
        with self._io_guard():
            # Re-format every cell to the initial value (clears the
            # failed flag); real content lands page-by-page.
            self.stable.restore_from({}, initial_value=self.initial_value)
        self._t_begin = time.perf_counter()
        self._began = True
        if self.tracer.enabled:
            self.tracer.emit(
                RESTORE_PROGRESS, phase="begin",
                backup_id=self.chosen.backup_id, target_lsn=self.target,
                records=len(records),
                quarantine_seeds=len(self.quarantine_seed),
            )
        return self

    def _fetch_base(self, pid: PageId) -> Optional[PageVersion]:
        """One page's backup copy, for the evaluator's lazy base.

        Quarantine seeds are already seeded POISON in the base (never
        fetched); everything else comes from the chosen (vetted-intact)
        generation's verified read.
        """
        if pid in self._seeds:
            return None
        return self.chosen.read_page(pid)

    # ------------------------------------------------------------ lazy path

    def ensure_restored(self, pid: PageId, source: str = "on-demand") -> bool:
        """Restore one page if it is not restored yet.

        The cache manager's hook: called for every cache-missed read and
        every page an operation is about to write, before the access
        proceeds.  Returns True when this call performed the restore.
        """
        if not self._began:
            raise RuntimeError("RestoreManager.begin() has not run")
        if not self.stable.layout.contains(pid):
            return False
        with self._lock:
            if self.bitmap.is_restored(pid):
                return False
            self._restore_page_locked(pid, source)
            return True

    def _restore_page_locked(self, pid: PageId, source: str) -> None:
        """Compute and install one page's recovered version (lock held)."""
        version = self._evaluator.final_version(pid)
        with self._io_guard():
            installed = install_recovered_page(
                self.stable, pid, version, self.initial_value,
                self.tracer, self.metrics, kind="instant",
            )
        if not installed and contains_poison(version.value):
            self._poison_installed.add(pid)
        self.bitmap.mark(pid)
        if self.metrics is not None:
            if source == "on-demand":
                self.metrics.pages_restored_on_demand += 1
            else:
                self.metrics.pages_restored_background += 1
        if source == "on-demand" and self._first_demand_ms is None:
            self._first_demand_ms = (
                time.perf_counter() - self._t_begin
            ) * 1000.0
            if self.metrics is not None:
                self.metrics.time_to_first_query_ms = self._first_demand_ms
        if self.tracer.enabled:
            self.tracer.emit(
                RESTORE_PROGRESS, phase="page", page=str(pid), source=source,
            )

    @property
    def time_to_first_query_ms(self) -> Optional[float]:
        """Wall time from begin() to the first on-demand restore."""
        return self._first_demand_ms

    # ------------------------------------------------------------ eager pool

    def start_background(
        self, workers: int = 2, executor: str = "thread"
    ) -> None:
        """Fan eager per-partition restore out to a worker pool.

        ``executor="process"`` ships backup span reads to a
        :class:`ProcessPoolExecutor` via the picklable
        :func:`~repro.storage.file_backend.read_backup_span_file` when
        the chosen backup is file-backed (it falls back to threads
        otherwise — an in-memory image cannot be read by another
        process).  Installs are always performed by the submitting
        worker thread, page-granular under the manager lock.
        """
        if not self._began:
            raise RuntimeError("RestoreManager.begin() has not run")
        if self._pool is not None:
            return
        from concurrent.futures import ThreadPoolExecutor

        workers = max(1, workers)
        layout = self.stable.layout
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="instant-restore"
        )
        self._span_pool = None
        if executor == "process" and getattr(self.chosen, "path", None):
            self._span_pool = self._make_process_pool(workers)
        self._futures = [
            self._pool.submit(self._restore_partition, partition)
            for partition in range(layout.num_partitions)
        ]
        if self.redo_workers > 1:
            # Prime alongside the partition sweep: the heavy replay runs
            # off the manager lock, so on-demand traffic is never
            # blocked, and every subsequent per-page restore becomes a
            # memo lookup.  drain() joins this future with the others.
            self._futures.append(self._pool.submit(self._prime_effects))

    @staticmethod
    def _make_process_pool(workers: int):
        from concurrent.futures import ProcessPoolExecutor

        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            return ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (ImportError, ValueError):
            from concurrent.futures import ProcessPoolExecutor as Pool

            return Pool(max_workers=workers)

    def _restore_partition(self, partition: int) -> int:
        """Eager-restore one partition (worker-thread body).

        The span read (device cost) runs outside the lock so concurrent
        partitions overlap like independent disk arms; each page install
        takes the lock individually so on-demand traffic never queues
        behind more than one page.
        """
        layout = self.stable.layout
        size = layout.partition_size(partition)
        span = self._read_backup_span(partition, 0, size)
        with self._lock:
            base = self._base
            seeds = self._seeds
            for pid, version in span:
                if pid not in base and pid not in seeds:
                    base[pid] = version
        restored = 0
        for pid in layout.pages_in_partition(partition):
            with self._lock:
                if self.bitmap.is_restored(pid):
                    continue
                self._restore_page_locked(pid, source="background")
                restored += 1
        if self.tracer.enabled:
            self.tracer.emit(
                RESTORE_PROGRESS, phase="partition", partition=partition,
                restored=restored,
            )
        return restored

    def _read_backup_span(
        self, partition: int, start: int, stop: int
    ) -> List[Tuple[PageId, PageVersion]]:
        """One backup span, via the process pool when configured."""
        if self._span_pool is not None:
            rows = self._span_pool.submit(
                _read_backup_span_process,
                self.chosen.path, partition, start, stop,
            ).result()
            out = []
            for slot, ok, value, lsn in rows:
                pid = PageId(partition, slot)
                if pid in self._seeds:
                    continue
                if ok:
                    out.append((pid, PageVersion(value, lsn)))
                else:
                    # Opaque/non-codec record: the in-memory image is
                    # the authoritative surface (same as resolve_span).
                    version = self.chosen.read_page(pid)
                    if version is not None:
                        out.append((pid, version))
            return out
        return [
            (pid, version)
            for pid, version in self.chosen.read_span(partition, start, stop)
            if pid not in self._seeds
        ]

    # ------------------------------------------------------------- parallel

    def _prime_effects(self) -> None:
        """Batch-compute every record effect on the parallel replayer.

        With ``redo_workers > 1`` the whole media-log slice is replayed
        once by :class:`~repro.recovery.parallel_redo.ParallelRedoReplayer`
        against a private snapshot of the full backup base, off the
        manager lock; the per-record effects (identical to what
        ``_compute_effect`` would memoize, record by record — both
        mirror the serial replayer) are then installed into the
        evaluator under the lock, alongside the wholesale slice
        counters.  Effects a demand path already memoized are kept;
        they are equal by determinism.  Idempotent and safe to race
        with on-demand restores.
        """
        if self.redo_workers <= 1:
            return
        with self._lock:
            if self._primed or self._evaluator is None:
                return
            self._primed = True
            evaluator = self._evaluator
        from repro.recovery.parallel_redo import ParallelRedoReplayer

        base: Dict[PageId, PageVersion] = {}
        for pid in self.quarantine_seed:
            base[pid] = PageVersion(POISON, NULL_LSN)
        for pid, version in self.chosen.iter_pages():
            if pid not in base and pid not in self._seeds:
                base[pid] = version
        # Per-worker Metrics shards are absorbed into this carrier on
        # the prime thread (which owns it), then merged into the shared
        # instance under the manager lock.
        carrier = self.metrics.shard() if self.metrics is not None else None
        # No tracer: the demand-driven evaluator emits no REDO_OP
        # events, and priming must not change the instant path's
        # event stream.
        replayer = ParallelRedoReplayer(
            initial_value=self.initial_value,
            workers=self.redo_workers,
            metrics=carrier,
        )
        stats, computed = replayer.replay_with_effects(
            evaluator._records, base
        )
        with self._lock:
            effects = evaluator._effects
            for index, effect in enumerate(computed):
                if index not in effects:
                    effects[index] = effect
            evaluator.ops_replayed = stats.ops_replayed
            evaluator.ops_skipped = stats.ops_skipped
            evaluator.partial_replays = stats.partial_replays
            evaluator.poisoned = list(stats.poisoned)
            if carrier is not None:
                self.metrics.absorb(carrier)

    # ---------------------------------------------------------------- drain

    def drain(self) -> RecoveryOutcome:
        """Finish the restore and return the offline-equivalent outcome.

        Joins the background pool, restores every page still pending,
        evaluates any record whose effect was never demanded (so the
        replay counters match the sequential pass), and assembles the
        same :class:`RecoveryOutcome` the offline path returns —
        including quarantine bookkeeping and oracle diffs.
        """
        if self._drained is not None:
            return self._drained
        if not self._began:
            self.begin()
        for future in self._futures:
            future.result()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if getattr(self, "_span_pool", None) is not None:
            self._span_pool.shutdown(wait=True)
            self._span_pool = None
        # No eager sweep ran (or it never primed): parallelize the bulk
        # of the remaining evaluation here instead of walking it
        # serially through evaluate_all below.
        self._prime_effects()
        layout = self.stable.layout
        with self._lock:
            for partition in range(layout.num_partitions):
                if self.bitmap.partition_complete(partition):
                    continue
                for pid in layout.pages_in_partition(partition):
                    if not self.bitmap.is_restored(pid):
                        self._restore_page_locked(pid, source="background")
            evaluator = self._evaluator
            evaluator.evaluate_all()
            # Load every backup page the demand paths never touched so
            # final_state's base matches the offline restore image.
            for pid, version in self.chosen.iter_pages():
                if pid not in self._base and pid not in self._seeds:
                    self._base[pid] = version
            state = evaluator.final_state()
            # Out-of-layout replay targets exist only in ``state`` (the
            # offline path traces/drops them at install; the per-page
            # paths never see them) — install parity is handled by
            # install_recovered_page in both paths.
            for pid, version in state.items():
                if not layout.contains(pid):
                    with self._io_guard():
                        install_recovered_page(
                            self.stable, pid, version, self.initial_value,
                            self.tracer, self.metrics, kind="instant",
                        )
            poisoned = sorted(
                pid
                for pid, version in state.items()
                if contains_poison(version.value)
            )
            quarantined: List[PageId] = []
            if self.quarantine_seed:
                quarantined = poisoned
                poisoned = []
                if self.tracer.enabled:
                    for pid in quarantined:
                        self.tracer.emit(
                            QUARANTINE, page=str(pid), kind="instant"
                        )
            quarantined_set = set(quarantined)
            diffs: List = []
            if self.oracle is not None:
                diffs = [
                    d
                    for d in diff_states(state, self.oracle, self.initial_value)
                    if d[0] not in quarantined_set
                ]
            outcome = RecoveryOutcome(
                state=state,
                replayed=evaluator.ops_replayed,
                skipped=evaluator.ops_skipped,
                poisoned=poisoned,
                diffs=diffs,
                kind="media",
                quarantined=quarantined,
            )
            self._drained = outcome
        if self.tracer.enabled:
            self.tracer.emit(
                RESTORE_PROGRESS, phase="complete",
                pages=self.bitmap.total_done,
                replayed=outcome.replayed, skipped=outcome.skipped,
                quarantined=len(outcome.quarantined),
            )
        return outcome

    @property
    def complete(self) -> bool:
        return self.bitmap.complete

    def progress(self) -> Dict[int, int]:
        """Pages restored per partition (the restore-side frontiers)."""
        with self._lock:
            return {
                partition: self.bitmap.pages_done(partition)
                for partition in range(self.stable.layout.num_partitions)
            }


def _read_backup_span_process(path, partition, start, stop):
    """Process-pool entry: returns picklable (slot, ok, value, lsn) rows."""
    from repro.storage.file_backend import OK, read_backup_span_file

    return [
        (slot, status == OK, value, lsn)
        for slot, status, value, lsn in read_backup_span_file(
            path, partition, start, stop
        )
    ]
