"""Shared value codec: immutable page values ⇄ JSON-safe tagged data.

Used by the backup archive (`storage/archive.py`) and the log
serializer (`wal/serialize.py`).  Deliberately not pickle: encoded data
is inspectable, diffable, and safe to load.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError

_INF = float("inf")


class CodecError(ReproError):
    """A value could not be encoded or decoded."""


def encode_value(value: Any):
    """Encode an immutable page value as JSON-safe tagged data."""
    from repro.ids import PageId

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, PageId):
        return {"t": "pid", "p": value.partition, "s": value.slot}
    if isinstance(value, float):
        if value == _INF:
            return {"t": "inf"}
        if value == -_INF:
            return {"t": "-inf"}
        return {"t": "f", "v": value}
    if isinstance(value, bytes):
        return {"t": "b", "v": value.hex()}
    if isinstance(value, tuple):
        return {"t": "t", "v": [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        # Mixed-type members are not mutually comparable; sort by a
        # stable type-aware key for deterministic output.
        members = sorted(value, key=lambda v: (type(v).__name__, repr(v)))
        return {"t": "fs", "v": [encode_value(item) for item in members]}
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: Any):
    if data is None or isinstance(data, (bool, int, str)):
        return data
    if isinstance(data, dict):
        tag = data.get("t")
        if tag == "pid":
            from repro.ids import PageId

            return PageId(data["p"], data["s"])
        if tag == "inf":
            return _INF
        if tag == "-inf":
            return -_INF
        if tag == "f":
            return float(data["v"])
        if tag == "b":
            return bytes.fromhex(data["v"])
        if tag == "t":
            return tuple(decode_value(item) for item in data["v"])
        if tag == "fs":
            return frozenset(decode_value(item) for item in data["v"])
    raise CodecError(f"corrupt encoded value: {data!r}")
