"""Log-shipping standby replica (remote backup for disaster recovery).

The paper's related work (King et al. [6]) maintains "a remote backup
copy for disaster recovery" by shipping the log.  This module builds
that on the reproduction's machinery, and shows why the paper's backup
protocol matters for standbys too:

* a standby is **seeded** from an online fuzzy backup — which is only a
  correct starting point because the engine kept that backup
  recoverable under logical operations (a naive-dump seed can be
  silently wrong, as `tests/integration/test_standby.py` demonstrates);
* after seeding, the standby **applies the shipped log** continuously
  with the same LSN redo test used everywhere else; applying is
  idempotent, so re-shipping overlapping ranges is harmless;
* **failover** promotes the standby into a fresh, fully functional
  :class:`~repro.db.Database` whose state equals the primary's at the
  promotion point.

Lag is measured in LSNs: ``standby.lag()`` is how far behind the
primary's log end the replica has applied.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import NoBackupError, ReproError
from repro.ids import LSN, PageId
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.wal.log_manager import LogManager


class StandbyReplica:
    """A warm replica fed by the primary's log stream."""

    def __init__(
        self,
        layout: Layout,
        primary_log: LogManager,
        initial_value: Any = None,
    ):
        self.layout = layout
        self.primary_log = primary_log
        self.initial_value = initial_value
        self._state: Dict[PageId, PageVersion] = {
            pid: PageVersion(initial_value, 0) for pid in layout.all_pages()
        }
        self.applied_through: LSN = 0
        self._replayer = RedoReplayer(initial_value=initial_value)
        self._promoted = False

    # --------------------------------------------------------------- seeding

    @classmethod
    def seed_from_backup(
        cls,
        backup: BackupDatabase,
        primary_log: LogManager,
        layout: Layout,
        initial_value: Any = None,
    ) -> "StandbyReplica":
        """Initialize a standby from an online backup + its media log.

        The replica starts from the fuzzy image and immediately applies
        the media log from the backup's scan start — the identical
        roll-forward media recovery performs, so everything the engine
        guaranteed for B holds for the standby's starting state.
        """
        if not backup.is_complete:
            raise NoBackupError(
                f"backup {backup.backup_id} is {backup.status.value}"
            )
        replica = cls(layout, primary_log, initial_value)
        for pid, version in backup.pages().items():
            replica._state[pid] = version
        replica.applied_through = backup.media_scan_start_lsn - 1
        replica.catch_up()
        return replica

    # -------------------------------------------------------------- shipping

    def catch_up(self, up_to: Optional[LSN] = None) -> int:
        """Apply shipped records; returns how many were processed."""
        if self._promoted:
            raise ReproError("standby already promoted")
        target = (
            self.primary_log.end_lsn if up_to is None
            else min(up_to, self.primary_log.end_lsn)
        )
        if target <= self.applied_through:
            return 0
        records = self.primary_log.merge_scan(self.applied_through + 1, target)
        stats = self._replayer.replay(records, self._state)
        processed = target - self.applied_through
        self.applied_through = target
        return processed

    def lag(self) -> int:
        """LSNs the primary has logged that this replica has not applied."""
        return max(0, self.primary_log.end_lsn - self.applied_through)

    def read_page(self, page_id: PageId) -> Any:
        version = self._state.get(page_id)
        return self.initial_value if version is None else version.value

    def is_consistent_with(self, expected: Dict[PageId, Any]) -> bool:
        for pid, value in expected.items():
            if self.read_page(pid) != value:
                return False
        return True

    def poisoned_pages(self):
        return surviving_poison(self._state)

    # -------------------------------------------------------------- failover

    def promote(self, policy: str = "general") -> "Database":
        """Fail over: turn the replica into a serving database.

        The standby applies everything it can still reach, then becomes
        a fresh :class:`Database` whose stable state is the replica
        state.  (The new primary starts its own log; in a real system
        the old log would be archived alongside.)
        """
        from repro.db import Database

        self.catch_up()
        poisoned = self.poisoned_pages()
        if poisoned:
            raise ReproError(
                f"cannot promote: {len(poisoned)} unrecoverable pages "
                f"(first: {poisoned[0]!r})"
            )
        self._promoted = True
        sizes = [
            self.layout.partition_size(p)
            for p in range(self.layout.num_partitions)
        ]
        db = Database(
            pages_per_partition=sizes,
            policy=policy,
            initial_value=self.initial_value,
        )
        # New LSN epoch: the promoted primary starts its own log at 1,
        # so every inherited page is stamped back to LSN 0 — otherwise
        # stale high page LSNs would make the redo test skip new work.
        epoch_zero = {
            pid: PageVersion(version.value, 0)
            for pid, version in self._state.items()
        }
        db.stable.restore_from(epoch_zero, self.initial_value)
        # The inherited values are the new oracle's ground truth.
        for pid, version in epoch_zero.items():
            if version.value != self.initial_value:
                db.oracle._state[pid] = version.value  # noqa: SLF001
        return db

    def __repr__(self):
        return (
            f"StandbyReplica(applied_through={self.applied_through}, "
            f"lag={self.lag()}, promoted={self._promoted})"
        )
