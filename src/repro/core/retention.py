"""Log retention: how far the log may be physically truncated.

Crash recovery needs the log from the dirty-page truncation point; media
recovery needs it from the **scan start of every backup still retained**
(plus any backup in progress).  The safe physical truncation point is
the minimum of all of these.

Iw/oF is what makes this interesting (section 3.2): identity-write
records advance rLSNs "permitting the truncation of the log in the same
way that flushing does" — so a hot page that is never flushed does not
pin the log, as long as it keeps being identity-logged.

Retiring old backups releases their log ranges; the oldest retained
backup bounds how much media-recovery history survives.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NoBackupError
from repro.ids import LSN
from repro.storage.backup_db import BackupDatabase


class LogRetention:
    """Tracks which backups pin which log prefixes."""

    def __init__(self, cm, engine):
        self.cm = cm
        self.engine = engine
        self._retired_ids = set()

    def retained_backups(self) -> List[BackupDatabase]:
        return [
            backup
            for backup in self.engine.completed
            if backup.backup_id not in self._retired_ids
        ]

    def retire_backup(self, backup: BackupDatabase) -> None:
        """Release a backup's pin on the log (it can no longer be used
        for media recovery once the log is truncated past it)."""
        self._retired_ids.add(backup.backup_id)

    def is_retired(self, backup: BackupDatabase) -> bool:
        return backup.backup_id in self._retired_ids

    def is_usable(self, backup: BackupDatabase) -> bool:
        """Can this backup still be rolled forward with the current log?"""
        if self.is_retired(backup):
            return False
        return (
            backup.media_scan_start_lsn
            >= self.cm.log.first_retained_lsn
        )

    def safe_truncation_point(self) -> LSN:
        """Largest LSN such that everything before it is dispensable."""
        log = self.cm.log
        candidates = [self.cm.rec.truncation_point(log.end_lsn)]
        for backup in self.retained_backups():
            candidates.append(backup.media_scan_start_lsn)
        active = self.engine.active
        if active is not None and not active.is_sealed:
            candidates.append(active.backup.media_scan_start_lsn)
        return min(candidates)

    def truncate_log(self) -> int:
        """Physically truncate the log to the safe point; returns the
        number of records discarded."""
        return self.cm.log.truncate_prefix(self.safe_truncation_point())

    def latest_usable_backup(self) -> BackupDatabase:
        for backup in reversed(self.retained_backups()):
            if self.is_usable(backup):
                return backup
        raise NoBackupError(
            "no retained backup's media log survives on the truncated log"
        )
