"""Log retention: how far the log may be physically truncated.

Crash recovery needs the log from the dirty-page truncation point; media
recovery needs it from the **scan start of every backup still retained**
(plus any backup in progress).  The safe physical truncation point is
the minimum of all of these.

Incremental chains (section 6.1) sharpen the backup term: restoring a
retained incremental replays from its *base full backup's* scan start
(``run_media_recovery_chain``), so a retained link pins the log from
the root of its base chain, not from its own (much later) scan start.
For the same reason a mid-chain generation cannot be retired while
later links still chain through it — their overlay would silently miss
its pages — so :meth:`LogRetention.retire_backup` rejects that with
:class:`~repro.errors.ChainPinnedError`; compaction (which merges the
chain into one standalone generation and then retires the sources
newest-first) is the supported release path.

Iw/oF is what makes this interesting (section 3.2): identity-write
records advance rLSNs "permitting the truncation of the log in the same
way that flushing does" — so a hot page that is never flushed does not
pin the log, as long as it keeps being identity-logged.

Retiring old backups releases their log ranges; the oldest retained
backup bounds how much media-recovery history survives.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ChainPinnedError, NoBackupError
from repro.ids import LSN
from repro.storage.backup_db import BackupDatabase


class LogRetention:
    """Tracks which backups pin which log prefixes."""

    def __init__(self, cm, engine):
        self.cm = cm
        self.engine = engine
        self._retired_ids = set()

    def retained_backups(self) -> List[BackupDatabase]:
        return [
            backup
            for backup in self.engine.completed
            if backup.backup_id not in self._retired_ids
        ]

    def _base_chain_ids(self, backup: BackupDatabase) -> List[int]:
        """Backup ids this backup's restore chain passes through
        (excluding its own), walking ``base_backup_id`` to the root."""
        by_id = {b.backup_id: b for b in self.engine.completed}
        ids: List[int] = []
        seen = {backup.backup_id}
        current = backup
        while True:
            base_id = getattr(current, "base_backup_id", None)
            if base_id is None or base_id in seen:
                return ids
            ids.append(base_id)
            seen.add(base_id)
            base = by_id.get(base_id)
            if base is None:  # dangling reference: stop at the break
                return ids
            current = base

    def pin_lsn(self, backup: BackupDatabase) -> LSN:
        """The log position this retained backup pins.

        A standalone full backup pins its own scan start.  An
        incremental pins the scan start of its base chain's *root*: its
        restore overlays the whole chain and replays from there.  A
        dangling chain (root already gone) degrades to the oldest
        reachable link's scan start.
        """
        by_id = {b.backup_id: b for b in self.engine.completed}
        pin = backup.media_scan_start_lsn
        for base_id in self._base_chain_ids(backup):
            base = by_id.get(base_id)
            if base is not None:
                pin = min(pin, base.media_scan_start_lsn)
        return pin

    def retire_backup(self, backup: BackupDatabase) -> None:
        """Release a backup's pin on the log (it can no longer be used
        for media recovery once the log is truncated past it).

        A generation some *retained* backup still chains through cannot
        be retired: raising :class:`ChainPinnedError` here is what keeps
        every retained incremental restorable.  Compact first (the
        compactor retires its sources newest-first, which never trips
        this check).
        """
        dependents = [
            b.backup_id
            for b in self.retained_backups()
            if b.backup_id != backup.backup_id
            and backup.backup_id in self._base_chain_ids(b)
        ]
        if dependents:
            raise ChainPinnedError(backup.backup_id, dependents)
        self._retired_ids.add(backup.backup_id)

    def is_retired(self, backup: BackupDatabase) -> bool:
        return backup.backup_id in self._retired_ids

    def is_usable(self, backup: BackupDatabase) -> bool:
        """Can this backup still be rolled forward with the current log?"""
        if self.is_retired(backup):
            return False
        return (
            self.pin_lsn(backup)
            >= self.cm.log.first_retained_lsn
        )

    def safe_truncation_point(self) -> LSN:
        """Largest LSN such that everything before it is dispensable."""
        log = self.cm.log
        candidates = [self.cm.rec.truncation_point(log.end_lsn)]
        for backup in self.retained_backups():
            candidates.append(self.pin_lsn(backup))
        active = self.engine.active
        if active is not None and not active.is_sealed:
            candidates.append(active.backup.media_scan_start_lsn)
        return min(candidates)

    def truncate_log(self) -> int:
        """Physically truncate the log to the safe point; returns the
        number of records discarded."""
        return self.cm.log.truncate_prefix(self.safe_truncation_point())

    def latest_usable_backup(self) -> BackupDatabase:
        for backup in reversed(self.retained_backups()):
            if self.is_usable(backup):
                return backup
        raise NoBackupError(
            "no retained backup's media log survives on the truncated log"
        )
