"""Backup progress tracking: D, P, and Done/Doubt/Pend (section 3.4).

Positions are integers ``0 .. size-1`` in the partition's backup order.
``done`` and ``pending`` are boundary counts:

* ``Done(X)``  ⟺ ``#X < done``      — X has been copied to B;
* ``Pend(X)``  ⟺ ``#X >= pending``  — X has not yet been copied;
* ``Doubt(X)`` ⟺ ``done <= #X < pending``.

Between backups ``done == pending == 0``: no object is done, every object
is pending for whatever backup starts next — which is exactly why the
flush policies need no separate "backup active" flag: an idle partition
classifies every page Pend, and Pend means "flush plainly".

The step protocol mirrors Figure 3: ``begin(P1)`` opens the first step;
after the doubt region ``[done, pending)`` has been copied,
``advance(P2)`` moves D up to P and P to the next boundary;
``finish()`` resets to idle after the final step's copying completes.
"""

from __future__ import annotations

import enum

from repro.errors import BackupError


class BackupRegion(enum.Enum):
    DONE = "done"
    DOUBT = "doubt"
    PEND = "pend"


class PartitionProgress:
    def __init__(self, partition: int, size: int):
        if size <= 0:
            raise BackupError(f"partition {partition} has no pages")
        self.partition = partition
        self.size = size
        self.done = 0
        self.pending = 0
        # Monotone counters for tests / metrics.
        self.steps_taken = 0
        self.backups_seen = 0

    # --------------------------------------------------------------- queries

    @property
    def active(self) -> bool:
        """A backup is sweeping this partition."""
        return self.pending > 0 or self.done > 0

    def classify(self, position: int) -> BackupRegion:
        if not 0 <= position < self.size:
            raise BackupError(
                f"position {position} outside partition "
                f"{self.partition} (size {self.size})"
            )
        if position < self.done:
            return BackupRegion.DONE
        if position >= self.pending:
            return BackupRegion.PEND
        return BackupRegion.DOUBT

    def classify_successor_max(self, max_position: int) -> BackupRegion:
        """Region of a successor set summarized by MAX(X) (section 4.2).

        ``max_position`` may be the MIN sentinel (-1) when S(X) is empty;
        an empty successor set is trivially Done — no successor will ever
        appear in B ahead of X.
        """
        if max_position < self.done:
            return BackupRegion.DONE
        if max_position >= self.pending:
            return BackupRegion.PEND
        return BackupRegion.DOUBT

    def doubt_range(self):
        """Positions currently in doubt, as a ``range``."""
        return range(self.done, self.pending)

    # ----------------------------------------------------------- transitions

    def begin(self, first_boundary: int) -> None:
        if self.active:
            raise BackupError(
                f"partition {self.partition} already has an active backup"
            )
        if not 0 < first_boundary <= self.size:
            raise BackupError(
                f"first boundary {first_boundary} out of range "
                f"(0, {self.size}]"
            )
        self.done = 0
        self.pending = first_boundary
        self.steps_taken = 1
        self.backups_seen += 1

    def advance(self, next_boundary: int) -> None:
        if not self.active:
            raise BackupError("advance() without an active backup")
        if next_boundary <= self.pending:
            raise BackupError(
                f"boundary must increase: {next_boundary} <= {self.pending}"
            )
        if next_boundary > self.size:
            raise BackupError(
                f"boundary {next_boundary} beyond partition size {self.size}"
            )
        self.done = self.pending
        self.pending = next_boundary
        self.steps_taken += 1

    def finish(self) -> None:
        if not self.active:
            raise BackupError("finish() without an active backup")
        if self.pending != self.size:
            raise BackupError(
                f"finish() before the last step: P={self.pending}, "
                f"size={self.size}"
            )
        self.done = 0
        self.pending = 0

    def abort(self) -> None:
        """Reset after an aborted backup (crash during the sweep)."""
        self.done = 0
        self.pending = 0

    def __repr__(self):
        return (
            f"Progress(partition={self.partition}, D={self.done}, "
            f"P={self.pending}, size={self.size})"
        )
