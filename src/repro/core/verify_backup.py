"""Offline backup validation: is this image + this log recoverable?

Before trusting a backup for disaster recovery, an operator wants a
verdict *without* doing a restore.  ``validate_backup`` audits a
completed backup against the media log:

1. **log coverage** — every record from the backup's scan-start LSN must
   still be on the (possibly truncated) log;
2. **order soundness** — no read-write installation edge is violated by
   the image (the Figure 1 condition), via
   :func:`~repro.recovery.explain.find_order_violations`;
3. **page accounting** — for full backups, every layout page is present;
   for incrementals, pages absent from the image must be either covered
   by the base chain or untouched since it;
4. (optionally) a **trial restore** into a scratch store, verified
   against a caller-supplied expected state.

The verdict lists every finding; an empty finding list means the backup
is safe to rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import LogTruncatedError
from repro.ids import PageId
from repro.recovery.explain import find_order_violations
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.wal.log_manager import LogManager


@dataclass(frozen=True)
class Finding:
    severity: str  # "fatal" | "warning"
    code: str
    detail: str


@dataclass
class ValidationReport:
    backup_id: int
    findings: List[Finding] = field(default_factory=list)
    pages_checked: int = 0
    records_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "fatal" for f in self.findings)

    def fatal(self, code: str, detail: str) -> None:
        self.findings.append(Finding("fatal", code, detail))

    def warn(self, code: str, detail: str) -> None:
        self.findings.append(Finding("warning", code, detail))

    def summary(self) -> str:
        status = "OK" if self.ok else "UNSAFE"
        return (
            f"backup {self.backup_id}: {status} "
            f"({len(self.findings)} finding(s), "
            f"{self.pages_checked} pages, "
            f"{self.records_scanned} log records)"
        )


def validate_backup(
    backup: BackupDatabase,
    log: LogManager,
    layout: Layout,
    base_chain: Sequence[BackupDatabase] = (),
    initial_value: Any = None,
) -> ValidationReport:
    """Audit ``backup`` against ``log``; see the module docstring."""
    report = ValidationReport(backup_id=backup.backup_id)

    if not backup.is_complete:
        report.fatal(
            "incomplete",
            f"backup status is {backup.status.value}; only completed "
            "backups are restorable",
        )
        return report

    # 1. Log coverage: the media log suffix must still exist.
    if backup.media_scan_start_lsn < log.first_retained_lsn:
        report.fatal(
            "log-truncated",
            f"media log scan start {backup.media_scan_start_lsn} "
            f"precedes the retained log ({log.first_retained_lsn})",
        )
        return report
    try:
        records = list(log.merge_scan(backup.media_scan_start_lsn))
    except LogTruncatedError as exc:  # pragma: no cover - guarded above
        report.fatal("log-truncated", str(exc))
        return report
    report.records_scanned = len(records)

    # 1b. Integrity audit: every page image must match its envelope —
    # a corrupt page restores garbage no matter how sound the order is.
    for pid in backup.damaged_pages():
        report.fatal(
            "corrupt-page",
            f"page {pid!r} fails its integrity check (checksum "
            "mismatch); restoring it would silently propagate damage",
        )

    # 2. Order soundness (the Figure 1 condition).
    image = backup.pages()
    report.pages_checked = len(image)
    for violation in find_order_violations(image, records, initial_value):
        report.fatal(
            "order-violation",
            f"operation LSN {violation.reader_lsn}'s replay input "
            f"({violation.page!r}) was overwritten by LSN "
            f"{violation.writer_lsn} inside the image; lost targets: "
            f"{violation.lost_targets}",
        )

    # 3. Page accounting.
    is_incremental = getattr(backup, "base_backup_id", None) is not None
    covered = set(image)
    for link in base_chain:
        covered |= set(link.pages())
    missing = [pid for pid in layout.all_pages() if pid not in covered]
    if missing:
        if is_incremental and not base_chain:
            report.warn(
                "needs-base",
                f"incremental backup: {len(missing)} pages not in the "
                "image; supply the base chain to complete the audit",
            )
        elif is_incremental:
            report.fatal(
                "chain-gap",
                f"{len(missing)} pages absent from the whole chain, "
                f"first: {missing[0]!r}",
            )
        else:
            report.fatal(
                "missing-pages",
                f"full backup missing {len(missing)} pages, "
                f"first: {missing[0]!r}",
            )

    # 4. Backup-order discipline (warning only: it is how the engine
    # guarantees the † property's timing argument).
    order = backup.copy_order()
    per_partition: dict = {}
    for pid in order:
        last = per_partition.get(pid.partition)
        if last is not None and pid.slot < last:
            report.warn(
                "unordered-copy",
                f"partition {pid.partition} copied out of backup order "
                f"at {pid!r}",
            )
            break
        per_partition[pid.partition] = pid.slot
    return report
