"""The paper's primary contribution: high-speed on-line backup that keeps
the backup database recoverable while logical operations are logged.

Key pieces:

* :class:`~repro.core.progress.PartitionProgress` — the D/P progress
  bounds and Done/Doubt/Pend classification (section 3.4);
* :class:`~repro.core.latch.BackupLatch` — the per-partition backup latch
  synchronizing the backup process with cache-manager flushes;
* :mod:`~repro.core.policy` — the flush policies: the general-operation
  rule of section 3.5 and the tree-operation rule of section 4.2;
* :class:`~repro.core.tree_meta.TreeOpTracker` — S(X) successor metadata:
  MAX(X) and violation flags;
* :class:`~repro.core.backup_engine.BackupEngine` — the online fuzzy
  sweep, full and incremental;
* :class:`~repro.core.naive_backup.NaiveFuzzyDump` — the conventional
  (broken-under-logical-ops) baseline of section 1.2;
* :class:`~repro.core.linked_flush.LinkedFlushBackup` — the "completely
  unrealistic" strawman of section 1.3, for the cost comparison;
* :mod:`~repro.core.analysis` — the closed forms of section 5.
"""

from repro.core.partial_recovery import (
    check_partition_confinement,
    run_partition_media_recovery,
)
from repro.core.progress import BackupRegion, PartitionProgress
from repro.core.retention import LogRetention
from repro.core.standby import StandbyReplica
from repro.core.latch import BackupLatch
from repro.core.policy import (
    FlushDecision,
    GeneralOpsPolicy,
    TreeOpsPolicy,
    PageOrientedPolicy,
)
from repro.core.tree_meta import TreeOpTracker, TreeMeta
from repro.core.backup_engine import BackupEngine, BackupRun
from repro.core.naive_backup import NaiveFuzzyDump
from repro.core.linked_flush import LinkedFlushBackup
from repro.core import analysis

__all__ = [
    "BackupRegion",
    "PartitionProgress",
    "BackupLatch",
    "FlushDecision",
    "GeneralOpsPolicy",
    "TreeOpsPolicy",
    "PageOrientedPolicy",
    "TreeOpTracker",
    "TreeMeta",
    "BackupEngine",
    "BackupRun",
    "NaiveFuzzyDump",
    "LinkedFlushBackup",
    "LogRetention",
    "StandbyReplica",
    "check_partition_confinement",
    "run_partition_media_recovery",
    "analysis",
]
