"""Closed-form extra-logging analysis (section 5).

The model: a backup runs in N equal steps over a uniformly updated
database.  At step m the done fraction is (m-1)/N, the pending fraction is
1 - m/N, the doubt fraction 1/N.

General logical operations (section 5.1) log on every ¬Pend flush:

    Prob_m{log} = m/N
    Prob{log}   = (1/N) Σ m/N = (1/2)(1 + 1/N)

Tree operations (section 5.2), assuming each page has exactly one
successor uniformly placed:

    Prob_m{log} = (m/N)(1 - (m-1)/N) - 1/(2N²)
    Prob{log}   = 1/6 + 1/(2N) - 1/(6N²)

These are the curves of Figure 5; the simulation benchmark measures the
same quantities empirically and overlays them.
"""

from __future__ import annotations

from typing import List


def general_step_probability(m: int, steps: int) -> float:
    """Prob_m{log} for general operations at step m (1-based)."""
    _check(m, steps)
    return m / steps


def general_extra_logging(steps: int) -> float:
    """Average Prob{log} for general operations over an N-step backup."""
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    return 0.5 * (1.0 + 1.0 / steps)


def tree_step_probability(m: int, steps: int) -> float:
    """Prob_m{log} for tree operations at step m (1-based)."""
    _check(m, steps)
    n = steps
    return (m / n) * (1.0 - (m - 1) / n) - 1.0 / (2.0 * n * n)


def tree_extra_logging(steps: int) -> float:
    """Average Prob{log} for tree operations over an N-step backup."""
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    n = steps
    return 1.0 / 6.0 + 1.0 / (2.0 * n) - 1.0 / (6.0 * n * n)


def general_asymptote() -> float:
    """Limit of the general-operation curve as N → ∞."""
    return 0.5


def tree_asymptote() -> float:
    """Limit of the tree-operation curve: one flush in six."""
    return 1.0 / 6.0


def reduction_fraction(steps: int, kind: str = "general") -> float:
    """Fraction of the total achievable logging reduction reached by N.

    Section 5.3: "most of the reduction in logging (almost 90%) has been
    achieved with an eight step backup".  The total achievable reduction
    runs from the N=1 cost to the asymptote.
    """
    if kind == "general":
        cost, start, limit = (
            general_extra_logging(steps),
            general_extra_logging(1),
            general_asymptote(),
        )
    elif kind == "tree":
        cost, start, limit = (
            tree_extra_logging(steps),
            tree_extra_logging(1),
            tree_asymptote(),
        )
    else:
        raise ValueError(f"kind must be 'general' or 'tree', got {kind!r}")
    return (start - cost) / (start - limit)


def figure5_series(step_counts: List[int] = None):
    """The two Figure 5 series: (N, general, tree) rows."""
    step_counts = step_counts or [1, 2, 4, 8, 16, 32]
    return [
        (n, general_extra_logging(n), tree_extra_logging(n))
        for n in step_counts
    ]


def _check(m: int, steps: int) -> None:
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    if not 1 <= m <= steps:
        raise ValueError(f"step m={m} out of range [1, {steps}]")
