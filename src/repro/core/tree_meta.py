"""Tree-operation successor metadata (section 4.2).

For each dirty page X the tracker maintains:

* ``max_succ`` — ``MAX(X) = max{#y : y ∈ S(X)}`` over X's successors and
  potential successors, computed incrementally: when ``W_L(Y, X)`` (read
  Y, write X) appears, ``MAX(X) = max(#Y, MAX(Y))``.  ``MIN_POS`` (-1)
  plays the role of the paper's "MAX(Y) = 0 if Y has no successors".
* ``violation`` — set when ``#X < #y`` for an immediate successor y of X,
  or when ``violation(y)`` is set; i.e. some (transitive) successor
  follows X in backup order, so the † property cannot be relied on.

S(X) is fixed the first time X is updated (an object can only be "new"
once); subsequent operations add predecessors but never successors, so
``max_succ`` never grows after first update — an invariant the property
tests verify.

Operations spanning partitions defeat position comparison; the tracker
conservatively marks the new page violated in that case (the paper's
"no single operation can read or write objects from more than a single
partition" assumption, enforced softly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ids import PageId
from repro.storage.layout import MIN_POS, Layout
from repro.wal.records import LogRecord


@dataclass
class TreeMeta:
    """Successor summary for one dirty page."""

    max_succ: int = MIN_POS
    violation: bool = False

    @property
    def has_successors(self) -> bool:
        return self.max_succ > MIN_POS or self.violation


class TreeOpTracker:
    def __init__(self, layout: Layout):
        self._layout = layout
        self._meta: Dict[PageId, TreeMeta] = {}

    def meta(self, page: PageId) -> TreeMeta:
        """Metadata for ``page``; empty (no successors) if untracked."""
        return self._meta.get(page) or TreeMeta()

    def observe(self, record: LogRecord) -> None:
        """Update successor metadata for a newly logged operation.

        Page-oriented operations never add successors (section 4.1);
        general logical operations are outside the tree class and the tree
        policy must not be used with them.  Operations declare their
        (predecessor, successor) pairs via ``Operation.successor_pairs``.
        """
        for pred, succ in record.op.successor_pairs():
            self._observe_pair(pred, succ)

    def _observe_pair(self, pred: PageId, succ: PageId) -> None:
        succ_meta = self._meta.get(succ) or TreeMeta()
        pred_meta = self._meta.setdefault(pred, TreeMeta())
        if pred.partition != succ.partition:
            # Cross-partition positions are incomparable: conservative.
            pred_meta.violation = True
            pred_meta.max_succ = self._layout.max_pos(pred.partition)
            return
        succ_pos = self._layout.position(succ)
        pred_pos = self._layout.position(pred)
        pred_meta.max_succ = max(
            pred_meta.max_succ, succ_pos, succ_meta.max_succ
        )
        if pred_pos < succ_pos or succ_meta.violation:
            pred_meta.violation = True

    def clear(self, page: PageId) -> None:
        """Drop metadata once the page's updates are installed."""
        self._meta.pop(page, None)

    def tracked_count(self) -> int:
        return len(self._meta)
