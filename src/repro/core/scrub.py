"""Integrity scrubber: walk every store and report silent damage.

Real systems run a background scrub precisely because checksummed reads
only catch corruption on pages that happen to be read; a rotted page in
a cold region (or in a sealed backup) waits silently until the worst
moment — media recovery.  The scrubber closes that window: it audits

* the **stable database** (every page cell against its envelope),
* the **log** (every retained record against its append-time CRC),
* every **completed backup** held by the engine (page envelopes plus the
  offline recoverability audit of :mod:`repro.core.verify_backup`),

and, for shipped artifacts, **archive files** and **log files** via the
tolerant loaders.  Every finding emits a ``corruption_detected`` obs
event, so a scrub shows up on the same timeline as the fault that caused
the damage and the recovery that later healed it.  The CLI front end
(``python -m repro scrub``) exits nonzero on fatal findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.obs.events import CORRUPTION_DETECTED
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged item: where it was found and what is wrong."""

    site: str  # "stable" | "log" | "backup" | "archive" | "log-file"
    severity: str  # "fatal" | "warning"
    detail: str


@dataclass
class ScrubReport:
    findings: List[ScrubFinding] = field(default_factory=list)
    pages_scanned: int = 0
    records_scanned: int = 0
    backups_scanned: int = 0
    bytes_scanned: int = 0
    #: Per-generation rows from a chain scrub (:func:`scrub_chain`):
    #: dicts with backup_id / kind / pages / bytes_scanned / damaged.
    generations: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "fatal" for f in self.findings)

    @property
    def damage_count(self) -> int:
        return len(self.findings)

    def add(self, site: str, severity: str, detail: str, tracer=None) -> None:
        self.findings.append(ScrubFinding(site, severity, detail))
        if tracer is not None and tracer.enabled:
            tracer.emit(
                CORRUPTION_DETECTED, site=site, severity=severity,
                detail=detail,
            )

    def summary(self) -> str:
        status = "CLEAN" if not self.findings else (
            "DAMAGED" if not self.ok else "WARNINGS"
        )
        tail = (
            f", {self.bytes_scanned} bytes" if self.bytes_scanned else ""
        )
        return (
            f"scrub {status}: {len(self.findings)} finding(s) over "
            f"{self.pages_scanned} pages, {self.records_scanned} log "
            f"records, {self.backups_scanned} backup(s){tail}"
        )


def scrub_database(db, validate_backups: bool = True) -> ScrubReport:
    """Audit a :class:`~repro.db.Database`'s stores in place.

    ``validate_backups`` additionally runs the offline recoverability
    audit (:func:`~repro.core.verify_backup.validate_backup`) on every
    completed backup, folding its findings in — a backup can be
    bit-perfect yet still unrestorable (truncated media log), and the
    scrubber should say so.
    """
    tracer = getattr(db, "tracer", NULL_TRACER)
    report = ScrubReport()

    # Stable database: raw envelope scan (works on failed media too).
    report.pages_scanned += len(db.stable)
    for pid in db.stable.damaged_pages():
        report.add(
            "stable", "fatal",
            f"page {pid} fails its integrity check", tracer,
        )

    # Log: every retained record against its append-time CRC.
    report.records_scanned += len(db.log)
    for lsn in db.log.damaged_records():
        report.add(
            "log", "fatal",
            f"log record at LSN {lsn} fails its integrity check", tracer,
        )

    # Backups: page envelopes, then the offline restorability audit.
    for backup in db.engine.completed:
        report.backups_scanned += 1
        report.pages_scanned += backup.copied_count()
        damaged = set(backup.damaged_pages())
        for pid in sorted(damaged):
            report.add(
                "backup", "fatal",
                f"backup {backup.backup_id} page {pid} fails its "
                "integrity check", tracer,
            )
        if validate_backups:
            try:
                audit = db.validate_backup(backup)
            except Exception as exc:  # audit itself must not kill a scrub
                report.add(
                    "backup", "warning",
                    f"backup {backup.backup_id} audit failed: {exc}",
                    tracer,
                )
                continue
            for finding in audit.findings:
                if finding.code == "corrupt-page":
                    continue  # already reported page-by-page above
                report.add(
                    "backup", finding.severity,
                    f"backup {backup.backup_id} [{finding.code}] "
                    f"{finding.detail}", tracer,
                )
    return report


def _generation_bytes(backup) -> int:
    """Serialized size of one generation (the format-2 archive encoding).

    The chain scrub reports per-generation ``bytes_scanned`` in the same
    units :func:`scrub_archive` reports for shipped files: the bytes the
    image occupies as a format-2 JSONL archive, computed by encoding
    each page exactly as :func:`repro.storage.archive.save_backup`
    would — without writing anything.
    """
    import json

    from repro.storage.archive import FORMAT_VERSION, _encode

    pages = backup.pages()
    header = {
        "format": FORMAT_VERSION,
        "backup_id": backup.backup_id,
        "media_scan_start_lsn": backup.media_scan_start_lsn,
        "completion_lsn": backup.completion_lsn,
        "base_backup_id": getattr(backup, "base_backup_id", None),
        "page_count": len(pages),
    }
    total = len(json.dumps(header, separators=(",", ":"))) + 1
    for pid in sorted(pages):
        entry = {
            "partition": pid.partition,
            "slot": pid.slot,
            "lsn": pages[pid].page_lsn,
            "value": _encode(pages[pid].value),
            "crc": backup.stored_checksum(pid),
        }
        total += len(json.dumps(entry, separators=(",", ":"))) + 1
    return total


def scrub_chain(archive, tracer=None) -> ScrubReport:
    """Chain-aware verification: manifest → generations → log ranges.

    Walks the archive tier end-to-end instead of scrubbing generations
    as unrelated images:

    * the **manifest** must load and pass its CRC envelope, and every
      generation it names must resolve to a sealed image whose
      bookkeeping (scan start, completion LSN, base link) matches the
      record;
    * the **chain structure** must validate (full base, ordered links);
    * every **generation's pages** are checked against their integrity
      envelopes, with per-generation ``bytes_scanned`` reported;
    * the **log range** each restore needs must survive: the base's
      scan start at or after the log's first retained LSN.

    ``archive`` is an :class:`~repro.archive.manager.ArchiveManager`.
    """
    from repro.core.incremental import validate_chain
    from repro.errors import ManifestError, NoBackupError, RecoveryError

    db = archive.db
    tracer = tracer if tracer is not None else getattr(
        db, "tracer", NULL_TRACER
    )
    report = ScrubReport()

    # Manifest: reload from the store so the scrub audits what a fresh
    # reader would see, not this process's cached copy.
    blob = archive.store.load()
    if blob is None:
        if archive.manifest.generations:
            report.add(
                "manifest", "fatal",
                "manifest store is empty but the manager holds "
                f"{len(archive.manifest.generations)} generation(s)",
                tracer,
            )
        return report
    from repro.archive.manifest import ChainManifest

    try:
        manifest = ChainManifest.from_bytes(blob)
    except ManifestError as exc:
        report.add("manifest", "fatal", str(exc), tracer)
        return report

    images = {
        b.backup_id: b for b in db.engine.completed if b.is_complete
    }
    # (image, record) pairs so the per-generation scan below stays
    # aligned with the manifest even when an image is missing.
    pairs = []
    for record in manifest.generations:
        image = images.get(record.backup_id)
        if image is None:
            report.add(
                "manifest", "fatal",
                f"manifest names backup {record.backup_id} but no such "
                "image exists in the backup store", tracer,
            )
            continue
        if image.media_scan_start_lsn != record.media_scan_start_lsn:
            report.add(
                "manifest", "fatal",
                f"generation {record.backup_id}: manifest scan start "
                f"{record.media_scan_start_lsn} != image "
                f"{image.media_scan_start_lsn}", tracer,
            )
        if image.completion_lsn != record.completion_lsn:
            report.add(
                "manifest", "fatal",
                f"generation {record.backup_id}: manifest completion "
                f"{record.completion_lsn} != image "
                f"{image.completion_lsn}", tracer,
            )
        pairs.append((image, record))

    chain = [image for image, _ in pairs]
    if chain:
        try:
            validate_chain(chain)
        except (NoBackupError, RecoveryError) as exc:
            report.add("manifest", "fatal", f"chain invalid: {exc}", tracer)

        # Log coverage: every restore through this chain replays from
        # the base's scan start.
        base = chain[0]
        if base.media_scan_start_lsn < db.log.first_retained_lsn:
            report.add(
                "log", "fatal",
                f"chain base {base.backup_id} needs the log from LSN "
                f"{base.media_scan_start_lsn} but it is truncated to "
                f"{db.log.first_retained_lsn}", tracer,
            )

    for image, record in pairs:
        report.backups_scanned += 1
        report.pages_scanned += image.copied_count()
        damaged = image.damaged_pages()
        gen_bytes = _generation_bytes(image)
        report.bytes_scanned += gen_bytes
        report.generations.append({
            "backup_id": image.backup_id,
            "kind": record.kind,
            "pages": image.copied_count(),
            "bytes_scanned": gen_bytes,
            "damaged": [str(p) for p in damaged],
        })
        for pid in damaged:
            report.add(
                "backup", "fatal",
                f"generation {image.backup_id} page {pid} fails its "
                "integrity check", tracer,
            )
    return report


def scrub_archive(path: str, tracer=None) -> ScrubReport:
    """Audit one archived backup file (see :mod:`repro.storage.archive`).

    Uses the streaming verifier, so peak memory is one page no matter
    how large the archive is, and the report carries ``bytes_scanned``.
    """
    from repro.storage.archive import verify_archive

    report = ScrubReport()
    audit = verify_archive(path)
    report.backups_scanned = 1
    report.pages_scanned = audit.pages_scanned
    report.bytes_scanned = audit.bytes_scanned
    for pid in audit.damaged:
        report.add(
            "archive", "fatal",
            f"{path}: page {pid} fails its integrity check", tracer,
        )
    return report


def scrub_log_file(path: str, tracer=None) -> ScrubReport:
    """Audit one serialized log file via the tolerant loader."""
    from repro.wal.serialize import load_log

    report = ScrubReport()
    log = load_log(path, repair_tail=True)
    report.records_scanned = len(log)
    if log.tail_repair_dropped:
        report.add(
            "log-file", "fatal",
            f"{path}: {log.tail_repair_dropped} record(s) beyond LSN "
            f"{log.end_lsn} are damaged or undecodable "
            "(surviving prefix loads cleanly)", tracer,
        )
    return report
