"""Integrity scrubber: walk every store and report silent damage.

Real systems run a background scrub precisely because checksummed reads
only catch corruption on pages that happen to be read; a rotted page in
a cold region (or in a sealed backup) waits silently until the worst
moment — media recovery.  The scrubber closes that window: it audits

* the **stable database** (every page cell against its envelope),
* the **log** (every retained record against its append-time CRC),
* every **completed backup** held by the engine (page envelopes plus the
  offline recoverability audit of :mod:`repro.core.verify_backup`),

and, for shipped artifacts, **archive files** and **log files** via the
tolerant loaders.  Every finding emits a ``corruption_detected`` obs
event, so a scrub shows up on the same timeline as the fault that caused
the damage and the recovery that later healed it.  The CLI front end
(``python -m repro scrub``) exits nonzero on fatal findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.obs.events import CORRUPTION_DETECTED
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged item: where it was found and what is wrong."""

    site: str  # "stable" | "log" | "backup" | "archive" | "log-file"
    severity: str  # "fatal" | "warning"
    detail: str


@dataclass
class ScrubReport:
    findings: List[ScrubFinding] = field(default_factory=list)
    pages_scanned: int = 0
    records_scanned: int = 0
    backups_scanned: int = 0
    bytes_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "fatal" for f in self.findings)

    @property
    def damage_count(self) -> int:
        return len(self.findings)

    def add(self, site: str, severity: str, detail: str, tracer=None) -> None:
        self.findings.append(ScrubFinding(site, severity, detail))
        if tracer is not None and tracer.enabled:
            tracer.emit(
                CORRUPTION_DETECTED, site=site, severity=severity,
                detail=detail,
            )

    def summary(self) -> str:
        status = "CLEAN" if not self.findings else (
            "DAMAGED" if not self.ok else "WARNINGS"
        )
        tail = (
            f", {self.bytes_scanned} bytes" if self.bytes_scanned else ""
        )
        return (
            f"scrub {status}: {len(self.findings)} finding(s) over "
            f"{self.pages_scanned} pages, {self.records_scanned} log "
            f"records, {self.backups_scanned} backup(s){tail}"
        )


def scrub_database(db, validate_backups: bool = True) -> ScrubReport:
    """Audit a :class:`~repro.db.Database`'s stores in place.

    ``validate_backups`` additionally runs the offline recoverability
    audit (:func:`~repro.core.verify_backup.validate_backup`) on every
    completed backup, folding its findings in — a backup can be
    bit-perfect yet still unrestorable (truncated media log), and the
    scrubber should say so.
    """
    tracer = getattr(db, "tracer", NULL_TRACER)
    report = ScrubReport()

    # Stable database: raw envelope scan (works on failed media too).
    report.pages_scanned += len(db.stable)
    for pid in db.stable.damaged_pages():
        report.add(
            "stable", "fatal",
            f"page {pid} fails its integrity check", tracer,
        )

    # Log: every retained record against its append-time CRC.
    report.records_scanned += len(db.log)
    for lsn in db.log.damaged_records():
        report.add(
            "log", "fatal",
            f"log record at LSN {lsn} fails its integrity check", tracer,
        )

    # Backups: page envelopes, then the offline restorability audit.
    for backup in db.engine.completed:
        report.backups_scanned += 1
        report.pages_scanned += backup.copied_count()
        damaged = set(backup.damaged_pages())
        for pid in sorted(damaged):
            report.add(
                "backup", "fatal",
                f"backup {backup.backup_id} page {pid} fails its "
                "integrity check", tracer,
            )
        if validate_backups:
            try:
                audit = db.validate_backup(backup)
            except Exception as exc:  # audit itself must not kill a scrub
                report.add(
                    "backup", "warning",
                    f"backup {backup.backup_id} audit failed: {exc}",
                    tracer,
                )
                continue
            for finding in audit.findings:
                if finding.code == "corrupt-page":
                    continue  # already reported page-by-page above
                report.add(
                    "backup", finding.severity,
                    f"backup {backup.backup_id} [{finding.code}] "
                    f"{finding.detail}", tracer,
                )
    return report


def scrub_archive(path: str, tracer=None) -> ScrubReport:
    """Audit one archived backup file (see :mod:`repro.storage.archive`).

    Uses the streaming verifier, so peak memory is one page no matter
    how large the archive is, and the report carries ``bytes_scanned``.
    """
    from repro.storage.archive import verify_archive

    report = ScrubReport()
    audit = verify_archive(path)
    report.backups_scanned = 1
    report.pages_scanned = audit.pages_scanned
    report.bytes_scanned = audit.bytes_scanned
    for pid in audit.damaged:
        report.add(
            "archive", "fatal",
            f"{path}: page {pid} fails its integrity check", tracer,
        )
    return report


def scrub_log_file(path: str, tracer=None) -> ScrubReport:
    """Audit one serialized log file via the tolerant loader."""
    from repro.wal.serialize import load_log

    report = ScrubReport()
    log = load_log(path, repair_tail=True)
    report.records_scanned = len(log)
    if log.tail_repair_dropped:
        report.add(
            "log-file", "fatal",
            f"{path}: {log.tail_repair_dropped} record(s) beyond LSN "
            f"{log.end_lsn} are damaged or undecodable "
            "(surviving prefix loads cleanly)", tracer,
        )
    return report
