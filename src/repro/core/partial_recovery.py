"""Partition-level media recovery (section 6.3, direction 2).

"Media failure might affect only a small part of the database.  With
logical operations, it may not be easy to determine the database part
upon which its recovery depends.  Preventing operations from having
operands from more than one partition makes a partition the unit of
media recovery."

This module implements exactly that:

* :func:`check_partition_confinement` — verifies that a log range never
  has an operation spanning partitions (the precondition);
* :func:`run_partition_media_recovery` — after losing ONE partition,
  restore just that partition from a backup and roll forward replaying
  only the operations that touch it.  Pages of healthy partitions are
  never read or written.

If the log contains a cross-partition operation touching the failed
partition, the function refuses with
:class:`~repro.errors.RecoveryError` — recovering would require pages
from other partitions whose current (newer) state may not reproduce the
needed inputs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


def op_partitions(record: LogRecord) -> set:
    op = record.op
    return {p.partition for p in (op.readset | op.writeset)}


def check_partition_confinement(
    log: LogManager, from_lsn: LSN = 1
) -> List[LogRecord]:
    """All records whose operation spans more than one partition."""
    return [
        record
        for record in log.merge_scan(max(from_lsn, log.first_retained_lsn))
        if len(op_partitions(record)) > 1
    ]


def run_partition_media_recovery(
    stable,
    partition: int,
    backup: BackupDatabase,
    log: LogManager,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
) -> RecoveryOutcome:
    """Restore one failed partition from ``backup`` and roll it forward.

    ``stable`` must expose per-partition failure
    (:class:`repro.storage.stable_db.StableDatabase` via
    ``restore_partition_from``).
    """
    tracer = tracer or NULL_TRACER
    if backup is None or not backup.is_complete:
        raise NoBackupError("partition recovery requires a completed backup")
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="partition", phase="begin",
                    partition=partition, backup_id=backup.backup_id)

    # Precondition: no operation in the roll-forward range may span the
    # failed partition and any other.
    offenders = [
        record
        for record in log.merge_scan(backup.media_scan_start_lsn)
        if partition in op_partitions(record)
        and len(op_partitions(record)) > 1
    ]
    if offenders:
        raise RecoveryError(
            f"partition {partition} is not the unit of media recovery: "
            f"{len(offenders)} cross-partition operation(s), first at "
            f"LSN {offenders[0].lsn}"
        )

    # Restore just the failed partition's pages from the backup image.
    versions = {
        pid: ver
        for pid, ver in backup.pages().items()
        if pid.partition == partition
    }
    with tracer.span("recovery.partition.restore"):
        stable.restore_partition_from(partition, versions, initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="partition", phase="restore",
                    scan_start_lsn=backup.media_scan_start_lsn,
                    pages=len(versions))

    # Roll forward only the operations confined to this partition.
    state: Dict[PageId, PageVersion] = {
        pid: stable.read_page(pid)
        for pid in stable.layout.pages_in_partition(partition)
    }
    replayer = RedoReplayer(initial_value=initial_value, tracer=tracer)
    relevant = (
        record
        for record in log.merge_scan(backup.media_scan_start_lsn)
        if op_partitions(record) == {partition}
    )
    with tracer.span("recovery.partition.redo"):
        stats = replayer.replay(relevant, state)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="partition", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    diffs: List[Tuple[PageId, Any, Any]] = []
    if oracle is not None:
        expected = {
            pid: value
            for pid, value in oracle.items()
            if pid.partition == partition
        }
        diffs = diff_states(state, expected, initial_value)
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="partition", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned))
    for pid, ver in state.items():
        stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="partition", phase="complete",
                    ok=not poisoned and not diffs)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="partition",
    )
