"""Flush policies: when does installing a write-graph node need Iw/oF?

Each policy answers one question for a page X about to be flushed while a
backup may be in progress: must X's value also be written to the log
(an Iw/oF identity write) to keep the backup recoverable?

* :class:`GeneralOpsPolicy` — section 3.5: log unless ``Pend(X)``.
  (Done and Doubt both log; Doubt "may be unnecessary, but we cannot
  determine this".)

* :class:`TreeOpsPolicy` — section 4.2 / Figure 4: using the successor
  summary ``MAX(X)`` and the ``violation`` flag,

  - ``Pend(X)`` or ``Done(S(X))``                     → no logging;
  - ``Doubt(X)`` and ``Doubt(S(X))`` and ¬violation   → no logging
    (the † property holds: every successor precedes X in backup order,
    so flush order to the backup cannot be violated);
  - everything else                                    → Iw/oF.

* :class:`PageOrientedPolicy` — the degenerate case: page-oriented
  operations never have flush-order dependencies, so no logging is ever
  needed (this is the conventional fuzzy dump of section 1.2).

Policies are pure deciders over (region of X, successor metadata); the
cache manager reads the regions under the partition's backup latch.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.progress import BackupRegion, PartitionProgress
from repro.core.tree_meta import TreeMeta


@dataclass(frozen=True)
class FlushDecision:
    """Outcome of a policy check for one page flush."""

    needs_iwof: bool
    region: BackupRegion
    successor_region: Optional[BackupRegion] = None
    reason: str = ""


class FlushPolicy(abc.ABC):
    """Decides Iw/oF for a page at ``position`` given partition progress."""

    name: str

    @abc.abstractmethod
    def decide(
        self,
        position: int,
        progress: PartitionProgress,
        meta: TreeMeta,
        will_be_copied: bool = True,
    ) -> FlushDecision:
        """``will_be_copied`` is False when an incremental backup will not
        copy this page even though its position is still pending (the page
        is outside the incremental copy set) — Pend then gives no
        guarantee and the page must be treated as Done."""


def _effective_region(
    position: int, progress: PartitionProgress, will_be_copied: bool
) -> BackupRegion:
    region = progress.classify(position)
    if region is BackupRegion.PEND and not will_be_copied:
        return BackupRegion.DONE
    return region


class PageOrientedPolicy(FlushPolicy):
    """No flush-order dependencies ⇒ never any extra logging."""

    name = "page-oriented"

    def decide(self, position, progress, meta, will_be_copied=True):
        region = _effective_region(position, progress, will_be_copied)
        return FlushDecision(
            needs_iwof=False, region=region, reason="page-oriented ops"
        )


class GeneralOpsPolicy(FlushPolicy):
    """Section 3.5: log (Iw/oF) whenever ¬Pend(X)."""

    name = "general"

    def decide(self, position, progress, meta, will_be_copied=True):
        region = _effective_region(position, progress, will_be_copied)
        if region is BackupRegion.PEND:
            return FlushDecision(
                needs_iwof=False,
                region=region,
                reason="Pend(X): flush will reach B",
            )
        return FlushDecision(
            needs_iwof=True,
            region=region,
            reason=f"{region.value}(X): X may be absent from B",
        )


class TreeOpsPolicy(FlushPolicy):
    """Section 4.2 / Figure 4: exploit S(X) to avoid most Iw/oF logging."""

    name = "tree"

    def decide(self, position, progress, meta, will_be_copied=True):
        region = _effective_region(position, progress, will_be_copied)
        succ_region = progress.classify_successor_max(meta.max_succ)
        if region is BackupRegion.PEND:
            return FlushDecision(
                False, region, succ_region, "Pend(X): X will appear in B"
            )
        if succ_region is BackupRegion.DONE:
            # MAX(X) < D: every successor's location was already copied,
            # and successors' updates always flush after X (write-graph
            # order), so no successor update can reach B — order safe.
            return FlushDecision(
                False, region, succ_region, "Done(S(X)): no successor in B"
            )
        if (
            region is BackupRegion.DOUBT
            and succ_region is BackupRegion.DOUBT
            and not meta.violation
        ):
            return FlushDecision(
                False,
                region,
                succ_region,
                "Doubt(X) & Doubt(S(X)) & †: flush order safe",
            )
        return FlushDecision(
            True,
            region,
            succ_region,
            f"{region.value}(X) & {succ_region.value}(S(X))"
            + (" & violation" if meta.violation else ""),
        )
