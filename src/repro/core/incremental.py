"""Incremental backup support (section 6.1).

The engine itself takes incremental backups when handed an ``update_set``
(the pages updated since the base backup); this module supplies the
restore side: overlaying a chain [full, inc₁, inc₂, …] and rolling
forward from the *base full backup's* media-log scan start (see
``run_media_recovery_chain`` for why the widest window is required).

Soundness sketch (matching the paper's two aspects):

1. every page not updated since the base carries its base-backup value;
2. every page updated since the base is in some incremental's copy set
   and was either captured fuzzily by that sweep or its operations are at
   or after that sweep's scan-start truncation point — the same Iw/oF and
   progress-tracking machinery as a full backup guarantees order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, NULL_LSN, PageId
from repro.obs.events import (
    CHAIN_FALLBACK,
    CORRUPTION_DETECTED,
    QUARANTINE,
    RECOVERY_PHASE,
)
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.parallel_redo import make_replayer
from repro.recovery.redo import (
    POISON,
    contains_poison,
    surviving_poison,
)
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def validate_chain(chain: Sequence[BackupDatabase]) -> None:
    """Check a restore chain: full base, then incrementals in order."""
    if not chain:
        raise NoBackupError("empty backup chain")
    for backup in chain:
        if not backup.is_complete:
            raise NoBackupError(
                f"backup {backup.backup_id} is {backup.status.value}"
            )
    base = chain[0]
    if getattr(base, "base_backup_id", None) is not None:
        raise RecoveryError(
            f"chain base {base.backup_id} is itself incremental"
        )
    previous = base
    for link in chain[1:]:
        base_id = getattr(link, "base_backup_id", None)
        if base_id is None:
            raise RecoveryError(
                f"backup {link.backup_id} is a full backup, not a link"
            )
        if link.media_scan_start_lsn < previous.media_scan_start_lsn:
            raise RecoveryError(
                f"chain out of order: {link.backup_id} starts before "
                f"{previous.backup_id}"
            )
        previous = link


def run_media_recovery_chain(
    stable: StableDatabase,
    chain: Sequence[BackupDatabase],
    log: LogManager,
    to_lsn: Optional[LSN] = None,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
    redo_workers: int = 1,
    metrics=None,
) -> RecoveryOutcome:
    """Restore from a full+incremental chain and roll forward.

    Roll-forward starts at the **base full backup's** media-log scan
    start, not the last link's: a page whose update was unflushed when
    an earlier link fuzzily copied it is covered only by that earlier
    link's media-log window, and the update may have been flushed (and
    thus truncated out of later links' windows) before the next link
    began.  The LSN redo test makes the wider scan cost-only, never
    wrong.
    """
    tracer = tracer or NULL_TRACER
    validate_chain(chain)
    last = chain[-1]
    target = log.end_lsn if to_lsn is None else to_lsn
    if last.completion_lsn is not None and target < last.completion_lsn:
        raise RecoveryError(
            f"cannot roll forward to LSN {target}: last chain link "
            f"completed at {last.completion_lsn}"
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="begin",
                    links=len(chain), target_lsn=target)

    # Overlay the chain: later links override earlier ones.  Damaged
    # link versions (checksum failures) are skipped, so the page falls
    # back to an earlier link's copy — replay starts from the *base*
    # scan start, which covers every update a later copy reflected, so
    # the earlier copy plus redo is sound (cost-only, never wrong).  A
    # page damaged everywhere it appears has no intact source and is
    # seeded for quarantine.
    versions: Dict[PageId, PageVersion] = {}
    damaged_anywhere: set = set()
    for backup in chain:
        damaged = set(backup.damaged_pages())
        if damaged and tracer.enabled:
            tracer.emit(
                CORRUPTION_DETECTED, site="backup",
                backup_id=backup.backup_id,
                pages=[str(p) for p in sorted(damaged)],
            )
        damaged_anywhere |= damaged
        for pid, ver in backup.pages().items():
            if pid in damaged:
                continue
            versions[pid] = ver
    quarantine_seed: List[PageId] = sorted(
        pid for pid in damaged_anywhere if pid not in versions
    )
    healed_by_chain = sorted(
        pid for pid in damaged_anywhere if pid in versions
    )
    if damaged_anywhere and tracer.enabled:
        tracer.emit(
            CHAIN_FALLBACK, action="skip-damaged-link-pages",
            healed=[str(p) for p in healed_by_chain],
            unrepairable=[str(p) for p in quarantine_seed],
        )
    with tracer.span("recovery.media_chain.restore"):
        stable.restore_from(versions, initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="restore",
                    scan_start_lsn=chain[0].media_scan_start_lsn)

    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    for pid in quarantine_seed:
        state[pid] = PageVersion(POISON, NULL_LSN)
    replayer = make_replayer(
        initial_value=initial_value,
        tracer=tracer,
        redo_workers=redo_workers,
        metrics=metrics,
    )
    with tracer.span("recovery.media_chain.redo"):
        stats = replayer.replay(
            log.merge_scan(chain[0].media_scan_start_lsn, target), state
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    quarantined: List[PageId] = []
    if quarantine_seed:
        quarantined = poisoned
        poisoned = []
        if tracer.enabled:
            for pid in quarantined:
                tracer.emit(QUARANTINE, page=str(pid), kind="media-chain")
    quarantined_set = set(quarantined)
    diffs = []
    if oracle is not None:
        diffs = [
            d
            for d in diff_states(state, oracle, initial_value)
            if d[0] not in quarantined_set
        ]
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned),
                        quarantined=len(quarantined))
    for pid, ver in state.items():
        if not stable.layout.contains(pid):
            continue
        if contains_poison(ver.value):
            stable.install_version(pid, PageVersion(initial_value, NULL_LSN))
            continue
        stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="complete",
                    ok=not poisoned and not diffs,
                    quarantined=len(quarantined))
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="media-chain",
        quarantined=quarantined,
    )
