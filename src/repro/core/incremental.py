"""Incremental backup support (section 6.1).

The engine itself takes incremental backups when handed an ``update_set``
(the pages updated since the base backup); this module supplies the
restore side: overlaying a chain [full, inc₁, inc₂, …] and rolling
forward from the *base full backup's* media-log scan start (see
``run_media_recovery_chain`` for why the widest window is required).

Soundness sketch (matching the paper's two aspects):

1. every page not updated since the base carries its base-backup value;
2. every page updated since the base is in some incremental's copy set
   and was either captured fuzzily by that sweep or its operations are at
   or after that sweep's scan-start truncation point — the same Iw/oF and
   progress-tracking machinery as a full backup guarantees order.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import NoBackupError, RecoveryError
from repro.ids import LSN, PageId
from repro.obs.events import RECOVERY_PHASE
from repro.obs.tracer import NULL_TRACER
from repro.recovery.explain import RecoveryOutcome, diff_states
from repro.recovery.redo import RedoReplayer, surviving_poison
from repro.storage.backup_db import BackupDatabase
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager


def validate_chain(chain: Sequence[BackupDatabase]) -> None:
    """Check a restore chain: full base, then incrementals in order."""
    if not chain:
        raise NoBackupError("empty backup chain")
    for backup in chain:
        if not backup.is_complete:
            raise NoBackupError(
                f"backup {backup.backup_id} is {backup.status.value}"
            )
    base = chain[0]
    if getattr(base, "base_backup_id", None) is not None:
        raise RecoveryError(
            f"chain base {base.backup_id} is itself incremental"
        )
    previous = base
    for link in chain[1:]:
        base_id = getattr(link, "base_backup_id", None)
        if base_id is None:
            raise RecoveryError(
                f"backup {link.backup_id} is a full backup, not a link"
            )
        if link.media_scan_start_lsn < previous.media_scan_start_lsn:
            raise RecoveryError(
                f"chain out of order: {link.backup_id} starts before "
                f"{previous.backup_id}"
            )
        previous = link


def run_media_recovery_chain(
    stable: StableDatabase,
    chain: Sequence[BackupDatabase],
    log: LogManager,
    to_lsn: Optional[LSN] = None,
    oracle: Optional[Mapping[PageId, Any]] = None,
    initial_value: Any = None,
    tracer=None,
) -> RecoveryOutcome:
    """Restore from a full+incremental chain and roll forward.

    Roll-forward starts at the **base full backup's** media-log scan
    start, not the last link's: a page whose update was unflushed when
    an earlier link fuzzily copied it is covered only by that earlier
    link's media-log window, and the update may have been flushed (and
    thus truncated out of later links' windows) before the next link
    began.  The LSN redo test makes the wider scan cost-only, never
    wrong.
    """
    tracer = tracer or NULL_TRACER
    validate_chain(chain)
    last = chain[-1]
    target = log.end_lsn if to_lsn is None else to_lsn
    if last.completion_lsn is not None and target < last.completion_lsn:
        raise RecoveryError(
            f"cannot roll forward to LSN {target}: last chain link "
            f"completed at {last.completion_lsn}"
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="begin",
                    links=len(chain), target_lsn=target)

    # Overlay the chain: later links override earlier ones.
    versions: Dict[PageId, PageVersion] = {}
    for backup in chain:
        versions.update(backup.pages())
    with tracer.span("recovery.media_chain.restore"):
        stable.restore_from(versions, initial_value=initial_value)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="restore",
                    scan_start_lsn=chain[0].media_scan_start_lsn)

    state: Dict[PageId, PageVersion] = {
        pid: ver for pid, ver in stable.iter_pages()
    }
    replayer = RedoReplayer(initial_value=initial_value, tracer=tracer)
    with tracer.span("recovery.media_chain.redo"):
        stats = replayer.replay(
            log.scan(chain[0].media_scan_start_lsn, target), state
        )
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="redo",
                    replayed=stats.ops_replayed, skipped=stats.ops_skipped)
    poisoned = surviving_poison(state)
    diffs = []
    if oracle is not None:
        diffs = diff_states(state, oracle, initial_value)
        if tracer.enabled:
            tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="verify",
                        diffs=len(diffs), poisoned=len(poisoned))
    for pid, ver in state.items():
        if stable.layout.contains(pid):
            stable.install_version(pid, ver)
    if tracer.enabled:
        tracer.emit(RECOVERY_PHASE, kind="media-chain", phase="complete",
                    ok=not poisoned and not diffs)
    return RecoveryOutcome(
        state=state,
        replayed=stats.ops_replayed,
        skipped=stats.ops_skipped,
        poisoned=poisoned,
        diffs=diffs,
        kind="media-chain",
    )
