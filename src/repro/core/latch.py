"""The per-partition backup latch (section 3.4, "Synchronization").

The backup process takes the latch **exclusive** to move D and P; the
cache manager takes it **shared** around a flush so the progress values it
read cannot change mid-flush.  Share mode lets a multi-threaded cache
manager flush concurrently.

The latch is genuinely thread-safe: it is a share/exclusive lock built on
:class:`threading.Condition`, and the parallel backup engine's worker
threads take it shared around their span reads while the planning thread
takes it exclusive to move D/P.  Cross-thread conflicts **block** until
the latch frees, like any real latch.  Same-thread conflicts — acquiring
exclusive while this thread already holds it shared, re-entering
exclusive, releasing without a hold — can never be satisfied by waiting
and still raise :class:`~repro.errors.LatchError` immediately: within one
thread the latch remains a protocol verifier, and the engine/cache-manager
code paths are written so the discipline is exercised on every progress
change and every flush.  Hold counts are tracked so tests can assert the
discipline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional

from repro.errors import LatchError
from repro.obs.events import LATCH_ACQUIRE
from repro.obs.tracer import NULL_TRACER


class BackupLatch:
    def __init__(self, partition: int):
        self.partition = partition
        self._cond = threading.Condition(threading.Lock())
        # Thread ident -> number of shared holds by that thread.
        self._shared_by: Dict[int, int] = {}
        self._exclusive_owner: Optional[int] = None
        # Acquisition counters for tests.
        self.shared_acquisitions = 0
        self.exclusive_acquisitions = 0
        # Tracer (repro.obs): acquisitions emit latch_acquire events.
        self.tracer = NULL_TRACER

    # --------------------------------------------------------------- shared

    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            while self._exclusive_owner is not None:
                if self._exclusive_owner == me:
                    raise LatchError(
                        f"partition {self.partition}: shared acquire while "
                        "held exclusive (backup is moving D/P)"
                    )
                self._cond.wait()
            self._shared_by[me] = self._shared_by.get(me, 0) + 1
            self.shared_acquisitions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                LATCH_ACQUIRE, partition=self.partition, mode="shared"
            )

    def release_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._shared_by.get(me, 0)
            if count <= 0:
                raise LatchError(
                    f"partition {self.partition}: shared release without hold"
                )
            if count == 1:
                del self._shared_by[me]
                if not self._shared_by:
                    self._cond.notify_all()
            else:
                self._shared_by[me] = count - 1

    @contextmanager
    def shared(self):
        self.acquire_shared()
        try:
            yield self
        finally:
            self.release_shared()

    # ------------------------------------------------------------ exclusive

    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            while True:
                if self._exclusive_owner == me:
                    raise LatchError(
                        f"partition {self.partition}: exclusive acquire "
                        "while held exclusive"
                    )
                mine = self._shared_by.get(me, 0)
                if mine:
                    raise LatchError(
                        f"partition {self.partition}: exclusive acquire "
                        f"while {mine} shared holder(s) are flushing"
                    )
                if self._exclusive_owner is None and not self._shared_by:
                    break
                self._cond.wait()
            self._exclusive_owner = me
            self.exclusive_acquisitions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                LATCH_ACQUIRE, partition=self.partition, mode="exclusive"
            )

    def release_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._exclusive_owner != me:
                raise LatchError(
                    f"partition {self.partition}: exclusive release "
                    "without hold"
                )
            self._exclusive_owner = None
            self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        self.acquire_exclusive()
        try:
            yield self
        finally:
            self.release_exclusive()

    # --------------------------------------------------------------- status

    @property
    def held_shared(self) -> bool:
        return bool(self._shared_by)

    @property
    def held_exclusive(self) -> bool:
        return self._exclusive_owner is not None

    def __repr__(self):
        holds = sum(self._shared_by.values())
        mode = (
            "X"
            if self._exclusive_owner is not None
            else f"S[{holds}]"
            if holds
            else "free"
        )
        return f"BackupLatch(partition={self.partition}, {mode})"
