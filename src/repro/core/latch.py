"""The per-partition backup latch (section 3.4, "Synchronization").

The backup process takes the latch **exclusive** to move D and P; the
cache manager takes it **shared** around a flush so the progress values it
read cannot change mid-flush.  Share mode lets a multi-threaded cache
manager flush concurrently.

The simulation is cooperative (single OS thread), so the latch's job here
is protocol verification: conflicting acquisitions raise
:class:`~repro.errors.LatchError`, and the engine/cache-manager code paths
are written so the discipline is exercised on every progress change and
every flush.  Hold counts are tracked so tests can assert the discipline.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import LatchError
from repro.obs.events import LATCH_ACQUIRE
from repro.obs.tracer import NULL_TRACER


class BackupLatch:
    def __init__(self, partition: int):
        self.partition = partition
        self._shared_holders = 0
        self._exclusive = False
        # Acquisition counters for tests.
        self.shared_acquisitions = 0
        self.exclusive_acquisitions = 0
        # Tracer (repro.obs): acquisitions emit latch_acquire events.
        self.tracer = NULL_TRACER

    # --------------------------------------------------------------- shared

    def acquire_shared(self) -> None:
        if self._exclusive:
            raise LatchError(
                f"partition {self.partition}: shared acquire while held "
                "exclusive (backup is moving D/P)"
            )
        self._shared_holders += 1
        self.shared_acquisitions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                LATCH_ACQUIRE, partition=self.partition, mode="shared"
            )

    def release_shared(self) -> None:
        if self._shared_holders <= 0:
            raise LatchError(
                f"partition {self.partition}: shared release without hold"
            )
        self._shared_holders -= 1

    @contextmanager
    def shared(self):
        self.acquire_shared()
        try:
            yield self
        finally:
            self.release_shared()

    # ------------------------------------------------------------ exclusive

    def acquire_exclusive(self) -> None:
        if self._exclusive:
            raise LatchError(
                f"partition {self.partition}: exclusive acquire while held "
                "exclusive"
            )
        if self._shared_holders:
            raise LatchError(
                f"partition {self.partition}: exclusive acquire while "
                f"{self._shared_holders} shared holder(s) are flushing"
            )
        self._exclusive = True
        self.exclusive_acquisitions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                LATCH_ACQUIRE, partition=self.partition, mode="exclusive"
            )

    def release_exclusive(self) -> None:
        if not self._exclusive:
            raise LatchError(
                f"partition {self.partition}: exclusive release without hold"
            )
        self._exclusive = False

    @contextmanager
    def exclusive(self):
        self.acquire_exclusive()
        try:
            yield self
        finally:
            self.release_exclusive()

    # --------------------------------------------------------------- status

    @property
    def held_shared(self) -> bool:
        return self._shared_holders > 0

    @property
    def held_exclusive(self) -> bool:
        return self._exclusive

    def __repr__(self):
        mode = (
            "X"
            if self._exclusive
            else f"S[{self._shared_holders}]"
            if self._shared_holders
            else "free"
        )
        return f"BackupLatch(partition={self.partition}, {mode})"
