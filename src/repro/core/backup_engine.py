"""The on-line backup engine (section 3): the paper's contribution.

A :class:`BackupRun` sweeps the stable database in backup order, in N
coarse steps per partition.  The cache manager is bypassed for the copy
itself — pages are read straight from S — and the only synchronization is
the per-partition backup latch taken exclusively when D/P move (the
"loosely coupled" design of section 1.4).

Incremental backups (section 6.1) pass an ``update_set``: only those
pages are copied, the progress frontier still sweeping the full position
space so the flush policies stay meaningful.  A page outside the set that
is flushed while still "pending" would silently miss the backup, so the
run either (a) treats it as Done — forcing Iw/oF (conservative), or
(b) with ``dynamic_extend`` adds it to the copy set on the spot, since
the frontier has yet to reach it.

Section 3.4 observes that disjoint partitions with partition-local D/P
bounds "permit us to back up partitions in parallel".
:class:`ParallelBackupRun` realizes that: planning (and every D/P move)
stays on the coordinating thread, the planned span *reads* fan out to a
``concurrent.futures.ThreadPoolExecutor`` taking the per-partition latch
shared, and the span *records* into B happen back on the coordinator in
plan order — so a parallel sweep produces a byte-identical sealed backup
to the serial batched sweep while overlapping the per-span device time of
independent partitions (and, on multi-core hosts, their CRC work).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from typing import Dict, List, Optional, Set

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.cache_manager import CacheManager
from repro.errors import BackupError, BackupInProgressError, TornWriteError
from repro.ids import PageId
from repro.obs import events as ev
from repro.sim.faults import with_retries
from repro.storage.backup_db import BackupDatabase


class BackupRun:
    """State of one in-progress backup sweep."""

    def __init__(
        self,
        cm: "CacheManager",
        backup: BackupDatabase,
        steps: int,
        update_set: Optional[Set[PageId]] = None,
        dynamic_extend: bool = True,
        batched: bool = True,
    ):
        self.cm = cm
        self.backup = backup
        self.steps = steps
        self.layout = cm.layout
        self.dynamic_extend = dynamic_extend
        # Batched sweeps copy contiguous runs of pages per partition with
        # one bulk read per run; the serial path copies page-at-a-time in
        # strict round-robin order.  Both produce the same backup content
        # (only the copy *order* differs within a single copy_some call).
        self.batched = batched
        # None means full backup: copy everything.
        self.copy_set: Optional[Set[PageId]] = (
            set(update_set) if update_set is not None else None
        )
        self.skipped_pages = 0
        self._boundaries: Dict[int, List[int]] = {}
        self._step_index: Dict[int, int] = {}
        self._cursor: Dict[int, int] = {}
        # Pages (copied or skipped) the frontier has yet to pass, summed
        # over all partitions — makes ``finished_copying`` O(1) instead of
        # a per-call scan over every partition cursor.
        self._remaining_total = self.layout.total_pages()
        self._sealed = False
        if cm.tracer.enabled:
            cm.tracer.emit(
                ev.BACKUP_BEGIN,
                backup_id=backup.backup_id,
                steps=steps,
                batched=batched,
                incremental=self.copy_set is not None,
                scan_start=backup.media_scan_start_lsn,
            )
        for partition in range(self.layout.num_partitions):
            boundaries = self.layout.step_boundaries(partition, steps)
            self._boundaries[partition] = boundaries
            self._step_index[partition] = 0
            self._cursor[partition] = 0
            with cm.progress_transaction(partition) as progress:
                progress.begin(boundaries[0])
        if self.copy_set is not None:
            self.cm.copy_set_filter = self.will_copy

    # ------------------------------------------------------------- filtering

    def will_copy(self, page_id: PageId) -> bool:
        """Will this page's location be captured by the sweep?

        Called by the cache manager under the partition's shared latch,
        so the progress values are stable while we consult them.
        """
        if self.copy_set is None or page_id in self.copy_set:
            return True
        if not self.dynamic_extend:
            return False
        progress = self.cm.progress[page_id.partition]
        position = self.layout.position(page_id)
        if progress.active and position >= progress.pending:
            # Frontier has not reached it: extend the copy set.
            self.copy_set.add(page_id)
            return True
        return False

    # --------------------------------------------------------------- copying

    @property
    def is_sealed(self) -> bool:
        return self._sealed

    @property
    def finished_copying(self) -> bool:
        return self._remaining_total <= 0

    def copy_some(self, pages: int = 1, batched: Optional[bool] = None) -> int:
        """Copy up to ``pages`` pages of the sweep.

        Returns the number of pages actually copied (skipped pages — those
        outside an incremental copy set — do not count but do advance the
        frontier).

        The batched path (the run's default, overridable per call) copies
        the same page set a serial round-robin sweep would, but as
        contiguous per-partition runs with one bulk read and one step
        check per run; step boundaries still move D/P under the exclusive
        latch at exactly the same frontier positions.  Use
        ``batched=False`` for strict page-at-a-time round-robin order
        (e.g. when exploring interleavings).
        """
        if self._sealed:
            raise BackupError("backup already sealed")
        use_batched = self.batched if batched is None else batched
        with self.cm.tracer.span(
            "backup.sweep", pages=pages, batched=use_batched
        ):
            if use_batched:
                return self._copy_batched(pages)
            return self._copy_serial(pages)

    # -------------------------------------------------------- serial copying

    def _copy_serial(self, pages: int) -> int:
        """Page-at-a-time round-robin sweep (the paper's Figure 3 loop)."""
        copied = 0
        while copied < pages and self._remaining_total > 0:
            advanced = False
            for partition in range(self.layout.num_partitions):
                if copied >= pages:
                    break
                if self._copy_next(partition):
                    advanced = True
                    cursor = self._cursor[partition]
                    page_id = PageId(partition, cursor - 1)
                    if self.copy_set is None or page_id in self.copy_set:
                        copied += 1
            if not advanced:
                break
        return copied

    def _copy_next(self, partition: int) -> bool:
        """Copy (or skip) the next page of ``partition``; advance steps."""
        size = self.layout.partition_size(partition)
        cursor = self._cursor[partition]
        if cursor >= size:
            return False
        progress = self.cm.progress[partition]
        if cursor >= progress.pending:
            # Current step's doubt region exhausted: advance under latch.
            self._advance_step(partition)
        page_id = PageId(partition, cursor)
        if self.copy_set is None or page_id in self.copy_set:
            metrics = self.cm.metrics
            version = with_retries(
                lambda: self.cm.stable.read_page(page_id), metrics=metrics
            )
            with_retries(
                lambda: self.backup.record_page(page_id, version),
                metrics=metrics,
            )
            metrics.backup_pages_copied += 1
        else:
            self.skipped_pages += 1
        self._cursor[partition] = cursor + 1
        self._remaining_total -= 1
        return True

    # ------------------------------------------------------- batched copying

    def _copy_batched(self, pages: int) -> int:
        """Copy the same page set as ``_copy_serial`` via bulk runs.

        Planning first reproduces the serial round-robin schedule with
        pure integer arithmetic (advancing cursors and step boundaries at
        identical frontier positions), accumulating contiguous
        per-partition spans; the pages are then copied with one bulk
        stable read and one bulk backup record per span.  No cache
        manager activity can interleave inside a single call, so the
        resulting backup content is identical to the serial path's.
        """
        spans: List[tuple] = []
        if self.copy_set is None:
            copied = self._plan_full(pages, spans)
        else:
            copied = self._plan_filtered(pages, spans)
        if not spans:
            return copied
        stable = self.cm.stable
        metrics = self.cm.metrics
        for partition, start, stop in spans:
            entries = with_retries(
                lambda: stable.read_pages(
                    [PageId(partition, slot) for slot in range(start, stop)]
                ),
                metrics=metrics,
            )
            self._record_span(entries)
            metrics.backup_pages_copied += stop - start
            metrics.backup_bulk_reads += 1
        return copied

    def _record_span(self, entries) -> None:
        """Record one bulk span into B, surviving torn span writes.

        A torn write lands only a prefix (the device reports how much);
        the remainder is re-issued from the already-read versions — the
        backup process still holds its copy buffer, so no re-read of S is
        needed and the span's content is unchanged.  After a resumed
        span the whole span is verified against its integrity envelopes:
        a tear is exactly when a device may have written garbage, so the
        claim "torn spans are detected by checksums" is made true here
        rather than assumed.
        """
        metrics = self.cm.metrics
        entries = list(entries)
        start = 0
        torn = False
        while start < len(entries):
            try:
                with_retries(
                    lambda: self.backup.record_pages(entries[start:]),
                    metrics=metrics,
                )
                break
            except TornWriteError as tear:
                start += tear.landed
                metrics.torn_spans_resumed += 1
                torn = True
        if torn:
            self.backup.verify_pages(pid for pid, _ver in entries)

    def _plan_full(self, budget: int, spans: List[tuple]) -> int:
        """Plan a full-backup batch: round-robin budget split, O(steps).

        A serial sweep deals the budget one page per active partition per
        round, partitions dropping out as they exhaust; the final partial
        round favours lower-numbered partitions.  That allocation is
        computed here in closed form per phase, never per page.
        """
        capacity: Dict[int, int] = {}
        for partition in range(self.layout.num_partitions):
            cap = self.layout.partition_size(partition) - self._cursor[partition]
            if cap > 0:
                capacity[partition] = cap
        active = sorted(capacity)
        allocation: Dict[int, int] = {}
        remaining = budget
        while remaining > 0 and active:
            rounds = min(
                remaining // len(active),
                min(capacity[p] for p in active),
            )
            if rounds:
                for p in active:
                    allocation[p] = allocation.get(p, 0) + rounds
                    capacity[p] -= rounds
                remaining -= rounds * len(active)
                active = [p for p in active if capacity[p] > 0]
                continue
            # Partial final round: one page each, lowest partitions first.
            for p in active[:remaining]:
                allocation[p] = allocation.get(p, 0) + 1
            remaining = 0
        copied = 0
        for partition in sorted(allocation):
            count = allocation[partition]
            copied += count
            self._remaining_total -= count
            self._append_runs(partition, count, spans)
        return copied

    def _append_runs(
        self, partition: int, count: int, spans: List[tuple]
    ) -> None:
        """Split ``count`` pages from the partition's cursor into spans,
        advancing D/P under the exclusive latch exactly where the serial
        sweep would (whenever the frontier meets the pending boundary)."""
        pos = self._cursor[partition]
        progress = self.cm.progress[partition]
        left = count
        while left > 0:
            if pos >= progress.pending:
                self._advance_step(partition)
            run = min(left, progress.pending - pos)
            spans.append((partition, pos, pos + run))
            pos += run
            left -= run
        self._cursor[partition] = pos

    def _plan_filtered(self, budget: int, spans: List[tuple]) -> int:
        """Plan an incremental batch: the serial schedule page by page.

        Membership in the copy set must be tested per page, so the plan
        walks the round-robin schedule exactly — but only with integer
        work, coalescing consecutive copied pages into spans for the bulk
        read/record stage.
        """
        num_partitions = self.layout.num_partitions
        sizes = [
            self.layout.partition_size(p) for p in range(num_partitions)
        ]
        progress_map = self.cm.progress
        copy_set = self.copy_set
        open_spans: Dict[int, List[int]] = {}
        copied = 0
        while copied < budget and self._remaining_total > 0:
            advanced = False
            for partition in range(num_partitions):
                if copied >= budget:
                    break
                pos = self._cursor[partition]
                if pos >= sizes[partition]:
                    continue
                progress = progress_map[partition]
                if pos >= progress.pending:
                    self._advance_step(partition)
                if PageId(partition, pos) in copy_set:
                    span = open_spans.get(partition)
                    if span is not None and span[1] == pos:
                        span[1] = pos + 1
                    else:
                        if span is not None:
                            spans.append((partition, span[0], span[1]))
                        open_spans[partition] = [pos, pos + 1]
                    copied += 1
                else:
                    self.skipped_pages += 1
                self._cursor[partition] = pos + 1
                self._remaining_total -= 1
                advanced = True
            if not advanced:
                break
        for partition, span in open_spans.items():
            spans.append((partition, span[0], span[1]))
        return copied

    def _advance_step(self, partition: int) -> None:
        index = self._step_index[partition] + 1
        boundaries = self._boundaries[partition]
        if index >= len(boundaries):
            raise BackupError(
                f"partition {partition}: no further step boundaries"
            )
        with self.cm.progress_transaction(partition) as progress:
            progress.advance(boundaries[index])
            if self.cm.tracer.enabled:
                self.cm.tracer.emit(
                    ev.BACKUP_STEP_ADVANCE,
                    partition=partition,
                    step=progress.steps_taken,
                    done=progress.done,
                    pending=progress.pending,
                )
        self._step_index[partition] = index

    def seal(self) -> BackupDatabase:
        """Complete the backup: final D/P reset under the latches."""
        if self._sealed:
            raise BackupError("backup already sealed")
        if not self.finished_copying:
            raise BackupError("seal() before all pages were copied")
        self.backup.complete(self.cm.log.end_lsn)
        for partition in range(self.layout.num_partitions):
            with self.cm.progress_transaction(partition) as progress:
                progress.finish()
        if self.cm.copy_set_filter is self.will_copy:
            self.cm.copy_set_filter = None
        self._sealed = True
        self.cm.metrics.backups_completed += 1
        if self.cm.tracer.enabled:
            self.cm.tracer.emit(
                ev.BACKUP_COMPLETE,
                backup_id=self.backup.backup_id,
                completion_lsn=self.backup.completion_lsn,
                pages=self.cm.metrics.backup_pages_copied,
            )
        return self.backup

    def abort(self) -> None:
        self.backup.abort()
        for partition in range(self.layout.num_partitions):
            progress = self.cm.progress[partition]
            if progress.active:
                progress.abort()
        if self.cm.copy_set_filter is self.will_copy:
            self.cm.copy_set_filter = None
        self._sealed = True
        self.cm.metrics.backups_aborted += 1
        if self.cm.tracer.enabled:
            self.cm.tracer.emit(
                ev.BACKUP_ABORT, backup_id=self.backup.backup_id
            )


class ParallelBackupRun(BackupRun):
    """A batched sweep whose span reads run on a thread pool.

    The division of labour keeps the paper's protocol — and the backup
    image — deterministic:

    * **Planning** (``_plan_full`` / ``_plan_filtered``) runs on the
      coordinating thread, so every D/P advance happens under the
      exclusive latch in exactly the serial schedule's order.
    * **Span reads** are submitted to the pool.  Each worker takes the
      span's partition latch *shared* around its bulk read (coexisting
      with concurrent flushes, excluded by a D/P move) and accumulates
      I/O-retry accounting into a private metrics shard.
    * **Span records** into B are consumed on the coordinating thread in
      plan order — B's insertion order, and therefore the sealed image
      and its archive serialization, are byte-identical to the serial
      batched sweep's.

    Faults raised inside a worker (transients exhaust their retries,
    crashes, media failures) propagate to the coordinator via
    ``future.result()``; before re-raising, the remaining span futures
    are cancelled and awaited so no worker touches the stores while the
    caller unwinds into crash recovery.  Metric shards are absorbed
    deterministically on both paths.
    """

    def __init__(
        self,
        cm: "CacheManager",
        backup: BackupDatabase,
        steps: int,
        update_set: Optional[Set[PageId]] = None,
        dynamic_extend: bool = True,
        workers: int = 2,
    ):
        if workers < 1:
            raise BackupError("ParallelBackupRun needs workers >= 1")
        super().__init__(
            cm,
            backup,
            steps,
            update_set=update_set,
            dynamic_extend=dynamic_extend,
            batched=True,
        )
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=f"backup-{self.backup.backup_id}",
            )
        return self._pool

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _read_span(self, span, shard):
        partition, start, stop = span
        stable = self.cm.stable
        with self.cm.latches[partition].shared():
            return with_retries(
                lambda: stable.read_pages(
                    [PageId(partition, slot) for slot in range(start, stop)]
                ),
                metrics=shard,
            )

    def _copy_batched(self, pages: int) -> int:
        spans: List[tuple] = []
        if self.copy_set is None:
            copied = self._plan_full(pages, spans)
        else:
            copied = self._plan_filtered(pages, spans)
        if not spans:
            return copied
        pool = self._ensure_pool()
        metrics = self.cm.metrics
        tasks = []
        for span in spans:
            shard = metrics.shard()
            tasks.append((span, shard, pool.submit(self._read_span, span, shard)))
        try:
            for (partition, start, stop), _shard, future in tasks:
                entries = future.result()
                self._record_span(entries)
                metrics.backup_pages_copied += stop - start
                metrics.backup_bulk_reads += 1
        except BaseException:
            # Quiesce the pool before unwinding: a worker still reading
            # while the caller runs crash recovery would race the stores.
            for _span, _shard, future in tasks:
                future.cancel()
            futures_wait([task[2] for task in tasks])
            raise
        finally:
            for _span, shard, _future in tasks:
                metrics.absorb(shard)
        return copied

    def seal(self) -> BackupDatabase:
        self._shutdown_pool()
        return super().seal()

    def abort(self) -> None:
        self._shutdown_pool()
        super().abort()


class ProcessPoolBackupRun(ParallelBackupRun):
    """A batched sweep whose span reads run in worker *processes*.

    Requires a file-backed stable database: the coordinator plans spans
    and captures picklable ``(path, [(slot, offset, length)])`` tasks
    under the shared partition latch
    (:meth:`~repro.storage.file_backend.FileStableDatabase.span_task`,
    which runs the same protocol-boundary checks as ``read_pages``);
    workers are shared-nothing — they ``pread`` and checksum-verify raw
    record bytes and return plain data, never exceptions.  Because the
    page files are append-only, the captured offsets remain a consistent
    snapshot no matter what is installed concurrently.  Records are
    consumed on the coordinator in plan order, so the sealed image is
    byte-identical to the serial and thread-parallel sweeps.
    """

    def __init__(
        self,
        cm: "CacheManager",
        backup: BackupDatabase,
        steps: int,
        update_set: Optional[Set[PageId]] = None,
        dynamic_extend: bool = True,
        workers: int = 2,
    ):
        super().__init__(
            cm,
            backup,
            steps,
            update_set=update_set,
            dynamic_extend=dynamic_extend,
            workers=workers,
        )
        if not hasattr(cm.stable, "span_task"):
            raise BackupError(
                "executor='process' requires a file-backed stable database "
                "(span tasks must be picklable shared-nothing file reads)"
            )

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                ctx = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._pool

    def _submit_span(self, span, pool):
        from repro.storage.file_backend import read_span_file

        partition, start, stop = span
        stable = self.cm.stable
        with self.cm.latches[partition].shared():
            path, entries = with_retries(
                lambda: stable.span_task(partition, start, stop),
                metrics=self.cm.metrics,
            )
        return pool.submit(read_span_file, path, entries)

    def _copy_batched(self, pages: int) -> int:
        spans: List[tuple] = []
        if self.copy_set is None:
            copied = self._plan_full(pages, spans)
        else:
            copied = self._plan_filtered(pages, spans)
        if not spans:
            return copied
        pool = self._ensure_pool()
        metrics = self.cm.metrics
        stable = self.cm.stable
        tasks = [(span, self._submit_span(span, pool)) for span in spans]
        try:
            for (partition, start, stop), future in tasks:
                rows = future.result()
                self._record_span(stable.resolve_span(partition, rows))
                metrics.backup_pages_copied += stop - start
                metrics.backup_bulk_reads += 1
        except BaseException:
            for _span, future in tasks:
                future.cancel()
            futures_wait([task[1] for task in tasks])
            raise
        return copied


class BackupEngine:
    """Creates and tracks backup runs against one cache manager.

    ``storage`` (a :class:`~repro.storage.api.StorageBackend`) is the
    factory every backup image is created through — the file backend
    lands each image on its own append-only file.  Without one, plain
    in-memory :class:`BackupDatabase` images are constructed directly.
    """

    def __init__(self, cm: "CacheManager", storage=None):
        self.cm = cm
        self.storage = storage
        self.completed: List[BackupDatabase] = []
        self.active: Optional[BackupRun] = None
        self._next_id = 1
        # Optional FaultPlane propagated to every backup image created.
        self.faults = None

    def attach_faults(self, plane):
        """Attach a fault plane, propagated to every image created."""
        self.faults = plane
        return plane

    def _create_backup(self, scan_start, base_backup_id):
        if self.storage is not None:
            backup = self.storage.create_backup(
                self._next_id, scan_start, base_backup_id=base_backup_id
            )
        else:
            backup = BackupDatabase(
                self._next_id, scan_start, base_backup_id=base_backup_id
            )
        backup.attach_faults(self.faults)
        self._next_id += 1
        return backup

    def allocate_backup(self, scan_start, base_backup_id=None):
        """Create an engine-numbered backup image outside a sweep.

        The archive compactor's entry point: a merged generation is not
        produced by a D/P sweep, but it must still come from the same id
        space, the same storage backend, and the same fault plane as
        swept images (so BACKUP_RECORD faults fire during compaction
        writes too).  The caller records pages and seals it explicitly.
        """
        return self._create_backup(scan_start, base_backup_id)

    def start_backup(
        self,
        steps: int = 8,
        update_set: Optional[Set[PageId]] = None,
        base_backup: Optional[BackupDatabase] = None,
        dynamic_extend: bool = True,
        batched: bool = True,
        workers: int = 1,
        executor: str = "thread",
    ) -> BackupRun:
        if self.active is not None and not self.active.is_sealed:
            raise BackupInProgressError("a backup is already in progress")
        if workers > 1 and not batched:
            raise BackupError(
                "parallel sweeps (workers > 1) require batched=True"
            )
        if executor not in ("thread", "process"):
            raise BackupError(f"unknown sweep executor {executor!r}")
        scan_start = self.cm.rec.truncation_point(self.cm.log.end_lsn)
        # The scan start may not exceed end_lsn + 1; for media recovery we
        # additionally never scan later than the backup's own start point.
        scan_start = min(scan_start, self.cm.log.end_lsn + 1)
        backup = self._create_backup(
            scan_start,
            base_backup.backup_id if base_backup is not None else None,
        )
        if workers > 1 and executor == "process":
            run: BackupRun = ProcessPoolBackupRun(
                self.cm,
                backup,
                steps,
                update_set=update_set,
                dynamic_extend=dynamic_extend,
                workers=workers,
            )
        elif workers > 1:
            run = ParallelBackupRun(
                self.cm,
                backup,
                steps,
                update_set=update_set,
                dynamic_extend=dynamic_extend,
                workers=workers,
            )
        else:
            run = BackupRun(
                self.cm,
                backup,
                steps,
                update_set=update_set,
                dynamic_extend=dynamic_extend,
                batched=batched,
            )
        self.active = run
        return run

    def copy_some(self, pages: int = 1) -> int:
        if self.active is None or self.active.is_sealed:
            raise BackupError("no backup in progress")
        copied = self.active.copy_some(pages)
        if self.active.finished_copying:
            self.completed.append(self.active.seal())
            self.active = None
        return copied

    def run_to_completion(self, pages_per_tick: int = 8, tick=None) -> BackupDatabase:
        """Drive the active backup to completion, optionally invoking
        ``tick()`` between copy batches (for interleaved workloads)."""
        if self.active is None:
            raise BackupError("no backup in progress")
        while self.active is not None:
            self.copy_some(pages_per_tick)
            if tick is not None and self.active is not None:
                tick()
        return self.completed[-1]

    def abort_active(self) -> None:
        if self.active is not None and not self.active.is_sealed:
            self.active.abort()
        self.active = None

    def latest_backup(self) -> Optional[BackupDatabase]:
        return self.completed[-1] if self.completed else None


class ParallelBackupEngine(BackupEngine):
    """A :class:`BackupEngine` whose runs sweep on a thread pool.

    Convenience front for the concurrent subsystem: every
    :meth:`start_backup` defaults to ``workers`` pool threads (pass
    ``workers=`` explicitly to override per run, ``workers=1`` for a
    plain serial run).  ``Database`` routes here automatically when a
    :class:`~repro.core.config.BackupConfig` carries ``workers > 1``.
    """

    def __init__(self, cm: "CacheManager", workers: int = 4, storage=None):
        if workers < 1:
            raise BackupError("ParallelBackupEngine needs workers >= 1")
        super().__init__(cm, storage=storage)
        self.workers = workers

    def start_backup(
        self,
        steps: int = 8,
        update_set: Optional[Set[PageId]] = None,
        base_backup: Optional[BackupDatabase] = None,
        dynamic_extend: bool = True,
        batched: bool = True,
        workers: Optional[int] = None,
        executor: str = "thread",
    ) -> BackupRun:
        return super().start_backup(
            steps,
            update_set=update_set,
            base_backup=base_backup,
            dynamic_extend=dynamic_extend,
            batched=batched,
            workers=self.workers if workers is None else workers,
            executor=executor,
        )
