"""The on-line backup engine (section 3): the paper's contribution.

A :class:`BackupRun` sweeps the stable database in backup order, in N
coarse steps per partition.  The cache manager is bypassed for the copy
itself — pages are read straight from S — and the only synchronization is
the per-partition backup latch taken exclusively when D/P move (the
"loosely coupled" design of section 1.4).

Incremental backups (section 6.1) pass an ``update_set``: only those
pages are copied, the progress frontier still sweeping the full position
space so the flush policies stay meaningful.  A page outside the set that
is flushed while still "pending" would silently miss the backup, so the
run either (a) treats it as Done — forcing Iw/oF (conservative), or
(b) with ``dynamic_extend`` adds it to the copy set on the spot, since
the frontier has yet to reach it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.cache_manager import CacheManager
from repro.errors import BackupError, BackupInProgressError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase


class BackupRun:
    """State of one in-progress backup sweep."""

    def __init__(
        self,
        cm: "CacheManager",
        backup: BackupDatabase,
        steps: int,
        update_set: Optional[Set[PageId]] = None,
        dynamic_extend: bool = True,
    ):
        self.cm = cm
        self.backup = backup
        self.steps = steps
        self.layout = cm.layout
        self.dynamic_extend = dynamic_extend
        # None means full backup: copy everything.
        self.copy_set: Optional[Set[PageId]] = (
            set(update_set) if update_set is not None else None
        )
        self.skipped_pages = 0
        self._boundaries: Dict[int, List[int]] = {}
        self._step_index: Dict[int, int] = {}
        self._cursor: Dict[int, int] = {}
        self._sealed = False
        for partition in range(self.layout.num_partitions):
            boundaries = self.layout.step_boundaries(partition, steps)
            self._boundaries[partition] = boundaries
            self._step_index[partition] = 0
            self._cursor[partition] = 0
            with cm.progress_transaction(partition) as progress:
                progress.begin(boundaries[0])
        if self.copy_set is not None:
            self.cm.copy_set_filter = self.will_copy

    # ------------------------------------------------------------- filtering

    def will_copy(self, page_id: PageId) -> bool:
        """Will this page's location be captured by the sweep?

        Called by the cache manager under the partition's shared latch,
        so the progress values are stable while we consult them.
        """
        if self.copy_set is None or page_id in self.copy_set:
            return True
        if not self.dynamic_extend:
            return False
        progress = self.cm.progress[page_id.partition]
        position = self.layout.position(page_id)
        if progress.active and position >= progress.pending:
            # Frontier has not reached it: extend the copy set.
            self.copy_set.add(page_id)
            return True
        return False

    # --------------------------------------------------------------- copying

    @property
    def is_sealed(self) -> bool:
        return self._sealed

    @property
    def finished_copying(self) -> bool:
        return all(
            self._cursor[p] >= self.layout.partition_size(p)
            for p in self._cursor
        )

    def copy_some(self, pages: int = 1) -> int:
        """Copy up to ``pages`` pages, round-robin across partitions.

        Returns the number of pages actually copied (skipped pages — those
        outside an incremental copy set — do not count but do advance the
        frontier).
        """
        if self._sealed:
            raise BackupError("backup already sealed")
        copied = 0
        while copied < pages and not self.finished_copying:
            advanced = False
            for partition in range(self.layout.num_partitions):
                if copied >= pages:
                    break
                if self._copy_next(partition):
                    advanced = True
                    cursor = self._cursor[partition]
                    page_id = PageId(partition, cursor - 1)
                    if self.copy_set is None or page_id in self.copy_set:
                        copied += 1
            if not advanced:
                break
        return copied

    def _copy_next(self, partition: int) -> bool:
        """Copy (or skip) the next page of ``partition``; advance steps."""
        size = self.layout.partition_size(partition)
        cursor = self._cursor[partition]
        if cursor >= size:
            return False
        progress = self.cm.progress[partition]
        if cursor >= progress.pending:
            # Current step's doubt region exhausted: advance under latch.
            self._advance_step(partition)
        page_id = PageId(partition, cursor)
        if self.copy_set is None or page_id in self.copy_set:
            version = self.cm.stable.read_page(page_id)
            self.backup.record_page(page_id, version)
            self.cm.metrics.backup_pages_copied += 1
        else:
            self.skipped_pages += 1
        self._cursor[partition] = cursor + 1
        return True

    def _advance_step(self, partition: int) -> None:
        index = self._step_index[partition] + 1
        boundaries = self._boundaries[partition]
        if index >= len(boundaries):
            raise BackupError(
                f"partition {partition}: no further step boundaries"
            )
        with self.cm.progress_transaction(partition) as progress:
            progress.advance(boundaries[index])
        self._step_index[partition] = index

    def seal(self) -> BackupDatabase:
        """Complete the backup: final D/P reset under the latches."""
        if self._sealed:
            raise BackupError("backup already sealed")
        if not self.finished_copying:
            raise BackupError("seal() before all pages were copied")
        self.backup.complete(self.cm.log.end_lsn)
        for partition in range(self.layout.num_partitions):
            with self.cm.progress_transaction(partition) as progress:
                progress.finish()
        if self.cm.copy_set_filter is self.will_copy:
            self.cm.copy_set_filter = None
        self._sealed = True
        self.cm.metrics.backups_completed += 1
        return self.backup

    def abort(self) -> None:
        self.backup.abort()
        for partition in range(self.layout.num_partitions):
            progress = self.cm.progress[partition]
            if progress.active:
                progress.abort()
        if self.cm.copy_set_filter is self.will_copy:
            self.cm.copy_set_filter = None
        self._sealed = True
        self.cm.metrics.backups_aborted += 1


class BackupEngine:
    """Creates and tracks backup runs against one cache manager."""

    def __init__(self, cm: "CacheManager"):
        self.cm = cm
        self.completed: List[BackupDatabase] = []
        self.active: Optional[BackupRun] = None
        self._next_id = 1

    def start_backup(
        self,
        steps: int = 8,
        update_set: Optional[Set[PageId]] = None,
        base_backup: Optional[BackupDatabase] = None,
        dynamic_extend: bool = True,
    ) -> BackupRun:
        if self.active is not None and not self.active.is_sealed:
            raise BackupInProgressError("a backup is already in progress")
        scan_start = self.cm.rec.truncation_point(self.cm.log.end_lsn)
        # The scan start may not exceed end_lsn + 1; for media recovery we
        # additionally never scan later than the backup's own start point.
        scan_start = min(scan_start, self.cm.log.end_lsn + 1)
        backup = BackupDatabase(self._next_id, scan_start)
        backup.base_backup_id = (
            base_backup.backup_id if base_backup is not None else None
        )
        self._next_id += 1
        run = BackupRun(
            self.cm,
            backup,
            steps,
            update_set=update_set,
            dynamic_extend=dynamic_extend,
        )
        self.active = run
        return run

    def copy_some(self, pages: int = 1) -> int:
        if self.active is None or self.active.is_sealed:
            raise BackupError("no backup in progress")
        copied = self.active.copy_some(pages)
        if self.active.finished_copying:
            self.completed.append(self.active.seal())
            self.active = None
        return copied

    def run_to_completion(self, pages_per_tick: int = 8, tick=None) -> BackupDatabase:
        """Drive the active backup to completion, optionally invoking
        ``tick()`` between copy batches (for interleaved workloads)."""
        if self.active is None:
            raise BackupError("no backup in progress")
        while self.active is not None:
            self.copy_some(pages_per_tick)
            if tick is not None and self.active is not None:
                tick()
        return self.completed[-1]

    def abort_active(self) -> None:
        if self.active is not None and not self.active.is_sealed:
            self.active.abort()
        self.active = None

    def latest_backup(self) -> Optional[BackupDatabase]:
        return self.completed[-1] if self.completed else None
