"""The "linked flush" strawman (section 1.3) — correct but unrealistic.

The paper's hypothetical "logical" solution stages all copying from S to
B through the cache manager and flushes dirty data synchronously to both
S and B.  We realize the cost-equivalent: before copying each page, force
its pending operations through the cache manager (a cascading write-graph
flush), then copy the now-current stable value to B.  Every such forced
flush is a cache-manager stall the asynchronous engine avoids; the
benchmark compares ``forced_flushes`` and cache traffic against the real
engine's plain copies plus its (few) Iw/oF records.

Because each page is current in S at the moment it is copied and all
flushing respects write-graph order, the resulting backup is trivially
recoverable — at the price the paper calls "completely unrealistic".
"""

from __future__ import annotations

from typing import List, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.cache_manager import CacheManager
from repro.errors import BackupError
from repro.storage.backup_db import BackupDatabase


class LinkedFlushBackup:
    def __init__(self, cm: "CacheManager", storage=None):
        self.cm = cm
        self.storage = storage
        self.completed: List[BackupDatabase] = []
        self._next_id = 1
        self.forced_flushes = 0
        self.pages_copied = 0

    def run(self) -> BackupDatabase:
        """Take a complete linked-flush backup in one synchronous pass."""
        scan_start = self.cm.rec.truncation_point(self.cm.log.end_lsn)
        scan_start = min(scan_start, self.cm.log.end_lsn + 1)
        if self.storage is not None:
            backup = self.storage.create_backup(self._next_id, scan_start)
        else:
            backup = BackupDatabase(self._next_id, scan_start)
        self._next_id += 1
        before = self.cm.metrics.page_flushes
        for page_id in self.cm.layout.all_pages():
            if self.cm.is_dirty(page_id):
                self.cm.flush_page(page_id, cascade=True)
                self.cm.metrics.linked_flushes += 1
            version = self.cm.stable.read_page(page_id)
            backup.record_page(page_id, version)
            self.pages_copied += 1
        self.forced_flushes += self.cm.metrics.page_flushes - before
        backup.complete(self.cm.log.end_lsn)
        self.completed.append(backup)
        self.cm.metrics.backups_completed += 1
        return backup

    def latest_backup(self) -> Optional[BackupDatabase]:
        return self.completed[-1] if self.completed else None
