"""The conventional fuzzy dump (section 1.2) — the broken baseline.

``NaiveFuzzyDump`` copies pages from S to B in physical order with **no**
coordination with the cache manager beyond fixing the media-log scan
start when it begins.  With page-oriented operations this is exactly the
classic high-speed online backup and is perfectly correct.  With logical
operations it is the algorithm Figure 1 shows to be unrecoverable: the
cache manager keeps flushing without Iw/oF (it never learns a backup is
running), so flush-order dependencies are violated *for B*.
"""

from __future__ import annotations

from typing import List, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.cache_manager import CacheManager
from repro.errors import BackupError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase


class NaiveFuzzyDump:
    def __init__(self, cm: "CacheManager", storage=None):
        self.cm = cm
        self.storage = storage
        self.completed: List[BackupDatabase] = []
        self.active: Optional[BackupDatabase] = None
        self._pages: List[PageId] = []
        self._cursor = 0
        self._next_id = 1

    def start_backup(self) -> BackupDatabase:
        if self.active is not None:
            raise BackupError("naive dump already in progress")
        scan_start = self.cm.rec.truncation_point(self.cm.log.end_lsn)
        scan_start = min(scan_start, self.cm.log.end_lsn + 1)
        if self.storage is not None:
            self.active = self.storage.create_backup(self._next_id, scan_start)
        else:
            self.active = BackupDatabase(self._next_id, scan_start)
        self._next_id += 1
        self._pages = list(self.cm.layout.all_pages())
        self._cursor = 0
        return self.active

    def copy_some(self, pages: int = 1) -> int:
        if self.active is None:
            raise BackupError("no naive dump in progress")
        copied = 0
        while copied < pages and self._cursor < len(self._pages):
            page_id = self._pages[self._cursor]
            version = self.cm.stable.read_page(page_id)
            self.active.record_page(page_id, version)
            self.cm.metrics.backup_pages_copied += 1
            self._cursor += 1
            copied += 1
        if self._cursor >= len(self._pages):
            self.active.complete(self.cm.log.end_lsn)
            self.completed.append(self.active)
            self.active = None
            self.cm.metrics.backups_completed += 1
        return copied

    def run_to_completion(self, pages_per_tick: int = 8, tick=None) -> BackupDatabase:
        while self.active is not None:
            self.copy_some(pages_per_tick)
            if tick is not None and self.active is not None:
                tick()
        return self.completed[-1]

    def latest_backup(self) -> Optional[BackupDatabase]:
        return self.completed[-1] if self.completed else None
