"""``BackupConfig``: one value object for all backup knobs.

``Database.start_backup`` / ``run_backup`` historically grew a scatter
of positional/keyword arguments (``steps``, ``incremental``,
``dynamic_extend``, ``batched``, ``pages_per_tick``) spread across two
calls.  ``BackupConfig`` gathers them into a single frozen dataclass so
a backup's shape can be named once, passed around, and compared; the
legacy keyword signatures remain as deprecated aliases.

>>> from repro.core.config import BackupConfig
>>> BackupConfig(steps=4, batched=False)
BackupConfig(steps=4, pages_per_tick=8, incremental=False, dynamic_extend=True, batched=False, engine='engine', workers=1, log_streams=1, backend='memory', data_dir=None, executor='thread', incremental_every=None, compact_threshold=None, redo_workers=1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

#: Engine choices: the paper's loosely-coupled engine, the conventional
#: (broken-under-logical-ops) fuzzy dump, and the linked-flush strawman.
ENGINES = ("engine", "naive", "linked")

#: Storage backends (see repro.storage.api.open_backend).
BACKENDS = ("memory", "file")

#: Sweep executors: threads share the process; the process pool requires
#: the file backend (span tasks must be picklable shared-nothing reads).
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class BackupConfig:
    """How a backup is taken.

    ``steps``          — coarse sweep steps per partition (D/P protocol);
    ``pages_per_tick`` — copy batch size for ``run_backup``;
    ``incremental``    — copy only pages updated since the last backup;
    ``dynamic_extend`` — extend an incremental copy set on the fly when a
                         pending page outside it is flushed;
    ``batched``        — bulk per-partition spans vs page-at-a-time
                         round-robin copying;
    ``engine``         — ``"engine"`` (section 3), ``"naive"`` (§1.2
                         fuzzy dump) or ``"linked"`` (§1.3 strawman);
    ``workers``        — sweep thread count: 1 copies on the calling
                         thread, >1 fans the batched span reads out to a
                         thread pool (§3.4: disjoint partitions "permit
                         us to back up partitions in parallel");
    ``log_streams``    — WAL stream count for the database under test: 1
                         keeps the plain single-stream
                         :class:`~repro.wal.log_manager.LogManager`, >1
                         stripes the log across that many streams with
                         group commit
                         (:class:`~repro.wal.multi_log.MultiLogManager`).
                         A harness knob — it shapes the *database* the
                         harnesses (faultsweep, experiments) construct,
                         not the backup algorithm itself, which is
                         stream-agnostic via ``merge_scan``;
    ``backend``        — storage backend: ``"memory"`` (python dicts) or
                         ``"file"`` (real fds, offsets and ``fsync``;
                         see :mod:`repro.storage.file_backend`).  Like
                         ``log_streams``, a harness knob resolved by
                         :func:`repro.storage.api.open_backend`;
    ``data_dir``       — directory for the file backend's page/log/backup
                         files (default: a fresh temporary directory);
    ``executor``       — sweep executor for ``workers > 1``:
                         ``"thread"`` (the PR 5 thread pool) or
                         ``"process"`` (a ``ProcessPoolExecutor`` over
                         picklable file-span reads; file backend only);
    ``incremental_every`` — archive-tier scheduling knob
                         (``Database.attach_archive``): take the next
                         incremental generation once this many LSNs
                         accumulated since the last generation sealed
                         (``None`` = no automatic incrementals);
    ``compact_threshold`` — archive-tier scheduling knob: compact the
                         chain once it carries this many incremental
                         links (``None`` = never compact automatically);
    ``redo_workers``   — recovery replay thread count: 1 keeps the
                         serial LSN-order
                         :class:`~repro.recovery.redo.RedoReplayer`,
                         >1 fans replay out to a dependency-aware
                         worker pool
                         (:class:`~repro.recovery.parallel_redo.ParallelRedoReplayer`)
                         with byte-identical outcomes.  Like
                         ``log_streams``, a harness knob — it shapes
                         the ``Database`` the harnesses construct and
                         reaches every recovery flavour (crash, media,
                         chain, selective, instant restore, PITR).
    """

    steps: int = 8
    pages_per_tick: int = 8
    incremental: bool = False
    dynamic_extend: bool = True
    batched: bool = True
    engine: str = "engine"
    workers: int = 1
    log_streams: int = 1
    backend: str = "memory"
    data_dir: Optional[str] = None
    executor: str = "thread"
    incremental_every: Optional[int] = None
    compact_threshold: Optional[int] = None
    redo_workers: int = 1

    def __post_init__(self):
        if self.steps < 1:
            raise ReproError("BackupConfig.steps must be >= 1")
        if self.pages_per_tick < 1:
            raise ReproError("BackupConfig.pages_per_tick must be >= 1")
        if self.engine not in ENGINES:
            raise ReproError(
                f"unknown backup engine {self.engine!r}; choose from "
                f"{list(ENGINES)}"
            )
        if self.incremental and self.engine != "engine":
            raise ReproError(
                "incremental backups require the section-3 engine"
            )
        if self.workers < 1:
            raise ReproError("BackupConfig.workers must be >= 1")
        if self.workers > 1 and not self.batched:
            raise ReproError(
                "parallel sweeps (workers > 1) require batched=True: the "
                "thread pool fans out the batched per-partition span reads"
            )
        if self.workers > 1 and self.engine != "engine":
            raise ReproError(
                "parallel sweeps (workers > 1) require the section-3 engine"
            )
        if self.log_streams < 1:
            raise ReproError("BackupConfig.log_streams must be >= 1")
        if self.backend not in BACKENDS:
            raise ReproError(
                f"unknown storage backend {self.backend!r}; choose from "
                f"{list(BACKENDS)}"
            )
        if self.data_dir is not None and self.backend != "file":
            raise ReproError(
                "BackupConfig.data_dir is only meaningful with "
                "backend='file'"
            )
        if self.executor not in EXECUTORS:
            raise ReproError(
                f"unknown sweep executor {self.executor!r}; choose from "
                f"{list(EXECUTORS)}"
            )
        if self.executor == "process" and self.backend != "file":
            raise ReproError(
                "executor='process' requires backend='file': process "
                "workers read picklable (path, offset) span tasks, which "
                "only the file backend provides"
            )
        if self.incremental_every is not None and self.incremental_every < 1:
            raise ReproError(
                "BackupConfig.incremental_every must be >= 1 (or None)"
            )
        if self.compact_threshold is not None and self.compact_threshold < 1:
            raise ReproError(
                "BackupConfig.compact_threshold must be >= 1 (or None)"
            )
        if self.redo_workers < 1:
            raise ReproError("BackupConfig.redo_workers must be >= 1")
