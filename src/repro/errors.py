"""Exception hierarchy for the repro package.

Every failure mode a caller may want to catch has its own exception type.
``ReproError`` is the common base so ``except ReproError`` catches anything
raised deliberately by this library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for stable-database / backup-database failures."""


class PageNotFoundError(StorageError):
    """A page id was not present in the store being read."""

    def __init__(self, page_id):
        super().__init__(f"page {page_id!r} not found")
        self.page_id = page_id


class PartitionError(StorageError):
    """A partition id was invalid or inconsistent with the layout."""


class MediaFailureError(StorageError):
    """The stable database has suffered a (simulated) media failure.

    Reads against failed media raise this until the database is restored
    from a backup.
    """


class CorruptPageError(StorageError):
    """A page image failed its integrity check (checksum mismatch).

    Raised by the stable database, a backup database, or the archive
    loader when the stored CRC32 envelope of a page does not match the
    page's content — bit rot, a misdirected write, or a damaged archive
    file.  ``store`` names where the bad page was found (``"stable"``,
    ``"backup"``, ``"archive"``).
    """

    def __init__(self, page_id, store: str = "stable", detail: str = ""):
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"corrupt page {page_id!r} in {store} store: "
            f"checksum mismatch{extra}"
        )
        self.page_id = page_id
        self.store = store


class FaultInjectionError(ReproError):
    """Base class for faults raised by the simulated fault plane."""


class TransientIOError(FaultInjectionError):
    """A transient I/O failure: the same request may succeed if retried.

    Injected by :class:`~repro.sim.faults.FaultPlane`; callers survive it
    with the bounded :func:`~repro.sim.faults.with_retries` helper.
    """

    def __init__(self, point: str = "?", io_index: int = 0):
        super().__init__(f"transient I/O error at {point} (io #{io_index})")
        self.point = point
        self.io_index = io_index


class TornWriteError(FaultInjectionError):
    """A multi-part write landed only a prefix before failing.

    ``landed`` counts the parts that reached the device; the caller is
    responsible for re-issuing the remainder (backup spans) — torn
    *stable* multi-page installs instead surface as
    :class:`SimulatedCrash` and are rolled back by the shadow journal at
    recovery time.
    """

    def __init__(self, point: str = "?", landed: int = 0, total: int = 0):
        super().__init__(
            f"torn write at {point}: {landed}/{total} parts landed"
        )
        self.point = point
        self.landed = landed
        self.total = total


class SimulatedCrash(FaultInjectionError):
    """The system halted mid-I/O (injected crash-at-I/O-point).

    Harnesses catch this, call ``db.crash()``, run recovery, and assert
    the oracle state — the fine-grained recoverability check.
    """

    def __init__(self, point: str = "?", io_index: int = 0, torn: bool = False):
        detail = " after a torn multi-page write" if torn else ""
        super().__init__(
            f"simulated crash at {point} (io #{io_index}){detail}"
        )
        self.point = point
        self.io_index = io_index
        self.torn = torn


class LogError(ReproError):
    """Base class for log-manager failures."""


class WALViolationError(LogError):
    """The write-ahead-log protocol was violated.

    Raised when a page whose last update's log record has not yet been
    forced to stable storage is about to be flushed.
    """


class LogTruncatedError(LogError):
    """A log record before the truncation point was requested."""


class CorruptLogRecordError(LogError):
    """A log record failed its integrity check (checksum mismatch).

    Raised when the CRC32 stamped on a record at append time no longer
    matches its payload — bit rot on the log device or a damaged log
    file.  Crash recovery treats the first corrupt record as the end of
    the trustworthy log and truncates the tail there (torn-tail repair).
    """

    def __init__(self, lsn, detail: str = ""):
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"corrupt log record at LSN {lsn}: checksum mismatch{extra}"
        )
        self.lsn = lsn


class RecoveryError(ReproError):
    """Base class for crash / media recovery failures."""


class UnrecoverableError(RecoveryError):
    """Recovery completed but the resulting state is not explainable.

    This is the error the paper's Figure 1 scenario produces when a naive
    fuzzy dump is taken while logical operations are being logged: the
    moved records exist neither in the backup nor on the log.
    """


class CacheError(ReproError):
    """Base class for cache-manager failures."""


class FlushOrderError(CacheError):
    """A flush was attempted that violates the write-graph flush order."""


class LatchError(ReproError):
    """Backup latch misuse (e.g. releasing a latch that is not held)."""


class BackupError(ReproError):
    """Base class for backup-engine failures."""


class BackupInProgressError(BackupError):
    """An operation conflicts with an active backup."""


class NoBackupError(BackupError):
    """Media recovery was requested but no completed backup exists."""


class ChainPinnedError(BackupError):
    """A mid-chain generation cannot be retired while later links need it.

    Retiring a backup that some non-retired incremental's base chain
    passes through would leave those dependents unrestorable (their
    overlay would miss the retired generation's pages).  Compaction is
    the supported way to release a mid-chain generation: merge it into a
    successor first, then retire it.  ``dependents`` lists the backup
    ids still chained through the rejected one.
    """

    def __init__(self, backup_id, dependents):
        self.backup_id = backup_id
        self.dependents = list(dependents)
        super().__init__(
            f"cannot retire backup {backup_id}: generations "
            f"{self.dependents} are chained through it (compact first)"
        )


class ManifestError(BackupError):
    """The archive chain manifest is unreadable or inconsistent.

    Raised when the manifest blob fails its CRC32 envelope, parses to an
    unknown format, or names generations the backup store does not hold.
    """


class OperationError(ReproError):
    """An operation was malformed or could not be applied."""


class WriteGraphError(ReproError):
    """Write-graph invariant violation (cycles after collapse, etc.)."""
