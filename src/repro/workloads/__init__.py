"""Seeded workload generators for the experiments and tests."""

from repro.workloads.generators import (
    copy_chain_workload,
    fresh_copy_workload,
    mixed_logical_workload,
    page_oriented_workload,
    tree_split_workload,
)

__all__ = [
    "page_oriented_workload",
    "fresh_copy_workload",
    "copy_chain_workload",
    "mixed_logical_workload",
    "tree_split_workload",
]
