"""Workload generators.

Each generator is an iterator of :class:`~repro.ops.base.Operation`
driven by a seeded :class:`random.Random`, so runs are reproducible.

* :func:`page_oriented_workload` — uniform physiological updates; the
  traditional setting where a naive fuzzy dump is already correct.
* :func:`fresh_copy_workload` — the section-5 measurement shape: each
  operation reads a uniformly random initialized page and writes a fresh
  (or recycled-clean) page.  Every flushed page has exactly one
  successor, matching the analysis assumptions of sections 5.1/5.2.
  Emitted as ``CopyOp`` (general class) or ``WriteNew`` (tree class).
* :func:`copy_chain_workload` — adversarial chains ``copy(X₁,X₂),
  copy(X₂,X₃)…`` plus overwrites of sources: deep write-graph paths.
* :func:`mixed_logical_workload` — a stress mix of physical,
  physiological, copy, and multi-target logical operations.
* :func:`tree_split_workload` — MovRec/RmvRec pairs plus record inserts:
  the B-tree-shaped tree-operation workload.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Set

from repro.ids import PageId
from repro.ops.base import Operation
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec, WriteNew
from repro.storage.layout import Layout


def _all_pages(layout: Layout) -> List[PageId]:
    return list(layout.all_pages())


def page_oriented_workload(
    layout: Layout, seed: int = 0, count: Optional[int] = None
) -> Iterator[Operation]:
    """Uniform single-page updates: increments and physical writes."""
    rng = random.Random(seed)
    pages = _all_pages(layout)
    emitted = 0
    while count is None or emitted < count:
        page = rng.choice(pages)
        if rng.random() < 0.3:
            yield PhysicalWrite(page, rng.randrange(1_000_000))
        else:
            yield PhysiologicalWrite(page, "increment", (1,))
        emitted += 1


def fresh_copy_workload(
    layout: Layout,
    seed: int = 0,
    count: Optional[int] = None,
    tree_ops: bool = False,
    is_clean=None,
) -> Iterator[Operation]:
    """Read a random initialized page, write a fresh/recycled-clean page.

    ``is_clean(page)`` (optional) gates recycling: a previously written
    page is reused as a target only once it reports clean — keeping every
    dirty page's successor count at exactly one, per the section 5 model.
    """
    rng = random.Random(seed)
    pages = _all_pages(layout)
    rng.shuffle(pages)
    initialized: List[PageId] = []
    fresh: List[PageId] = pages[:]
    emitted = 0
    # Seed the database with a handful of initialized source pages.
    for _ in range(min(8, len(fresh))):
        page = fresh.pop()
        initialized.append(page)
        yield PhysicalWrite(page, (("seed", page.slot),))
        emitted += 1
    while count is None or emitted < count:
        if fresh:
            target = fresh.pop()
        else:
            candidates = [
                p
                for p in initialized
                if is_clean is None or is_clean(p)
            ]
            if not candidates:
                return
            target = rng.choice(candidates)
        sources = [p for p in initialized if p != target]
        if not sources:
            return
        source = rng.choice(sources)
        if tree_ops:
            yield WriteNew(source, target, "copy_value")
        else:
            yield CopyOp(source, target)
        if target not in initialized:
            initialized.append(target)
        emitted += 1


def copy_chain_workload(
    layout: Layout,
    seed: int = 0,
    count: int = 100,
    chain_length: int = 4,
) -> Iterator[Operation]:
    """Chains of copies followed by overwrites of the chain's sources."""
    rng = random.Random(seed)
    pages = _all_pages(layout)
    emitted = 0
    while emitted < count:
        chain = rng.sample(pages, min(chain_length + 1, len(pages)))
        head = chain[0]
        yield PhysicalWrite(head, ("chain-head", rng.randrange(1 << 16)))
        emitted += 1
        for src, dst in zip(chain, chain[1:]):
            if emitted >= count:
                return
            yield CopyOp(src, dst)
            emitted += 1
            if emitted >= count:
                return
            # Overwrite the source: creates the flush dependency.
            yield PhysiologicalWrite(src, "stamp", (rng.randrange(1 << 16),))
            emitted += 1


def mixed_logical_workload(
    layout: Layout, seed: int = 0, count: int = 200
) -> Iterator[Operation]:
    """A stress mix exercising every general operation form."""
    rng = random.Random(seed)
    pages = _all_pages(layout)
    emitted = 0
    while emitted < count:
        roll = rng.random()
        if roll < 0.25:
            yield PhysicalWrite(rng.choice(pages), rng.randrange(1 << 20))
        elif roll < 0.55:
            yield PhysiologicalWrite(
                rng.choice(pages), "stamp", (rng.randrange(1 << 16),)
            )
        elif roll < 0.85:
            src, dst = rng.sample(pages, 2)
            yield CopyOp(src, dst)
        else:
            k = rng.randrange(2, 4)
            reads = rng.sample(pages, k)
            writes = rng.sample(pages, rng.randrange(1, 3))
            yield GeneralLogicalOp(
                reads, writes, "concat_sorted", per_target=False
            )
        emitted += 1


def tree_split_workload(
    layout: Layout,
    seed: int = 0,
    count: int = 200,
    records_per_page: int = 8,
) -> Iterator[Operation]:
    """B-tree-shaped tree operations: inserts and MovRec/RmvRec splits.

    Pages hold sorted ``(key, payload)`` tuples; when a page fills up it
    splits into a fresh page via the logical MovRec/RmvRec pair.
    """
    rng = random.Random(seed)
    pages = _all_pages(layout)
    rng.shuffle(pages)
    fresh = pages[:]
    live: List[PageId] = []
    fill: dict = {}
    emitted = 0
    # Initialize one live page.
    first = fresh.pop()
    live.append(first)
    fill[first] = 0
    yield PhysicalWrite(first, ())
    emitted += 1
    key_counter = 0
    while emitted < count:
        page = rng.choice(live)
        if fill[page] >= records_per_page and fresh:
            new = fresh.pop()
            split_key = key_counter - fill[page] // 2
            yield MovRec(page, split_key, new)
            emitted += 1
            if emitted >= count:
                return
            yield RmvRec(page, split_key)
            emitted += 1
            live.append(new)
            moved = fill[page] // 2
            fill[new] = moved
            fill[page] -= moved
        else:
            key_counter += 1
            yield PhysiologicalWrite(
                page, "insert_record", (key_counter, f"v{key_counter}")
            )
            fill[page] = fill.get(page, 0) + 1
            emitted += 1
