"""Skewed (hotspot) workloads — for the §5.3 amortization ablation.

"Further, multiple updates can accumulate in each object before we log
or flush it.  Hence, as is common in database systems, the cost of
flushing (and logging) is amortised over several updating operations."

The generator sends ``hot_fraction`` of updates to ``hot_pages`` pages
(a classic 90/10-style hotspot), mixing physiological updates with
occasional logical copies out of the hot set, so hot pages stay dirty
and keep accumulating updates between installs.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.ids import PageId
from repro.ops.base import Operation
from repro.ops.logical import CopyOp
from repro.ops.physiological import PhysiologicalWrite
from repro.storage.layout import Layout


def hotspot_workload(
    layout: Layout,
    seed: int = 0,
    count: Optional[int] = None,
    hot_pages: int = 4,
    hot_fraction: float = 0.9,
    copy_fraction: float = 0.1,
) -> Iterator[Operation]:
    """Updates concentrated on a small hot set.

    ``copy_fraction`` of operations copy a hot page to a uniformly
    random cold page — the logical operations that make the hot pages
    write-graph predecessors.
    """
    rng = random.Random(seed)
    pages = list(layout.all_pages())
    if hot_pages >= len(pages):
        raise ValueError("hot set must be smaller than the database")
    hot = pages[:hot_pages]
    cold = pages[hot_pages:]
    emitted = 0
    while count is None or emitted < count:
        if rng.random() < copy_fraction:
            yield CopyOp(rng.choice(hot), rng.choice(cold))
        else:
            target = (
                rng.choice(hot)
                if rng.random() < hot_fraction
                else rng.choice(cold)
            )
            yield PhysiologicalWrite(
                target, "stamp", (rng.randrange(1 << 16),)
            )
        emitted += 1
