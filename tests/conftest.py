"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.ids import PageId
from repro.storage.layout import Layout


@pytest.fixture
def layout():
    return Layout([32])


@pytest.fixture
def layout_multi():
    return Layout([16, 24, 8])


@pytest.fixture
def db():
    return Database(pages_per_partition=[32], policy="general")


@pytest.fixture
def tree_db():
    return Database(pages_per_partition=[64], policy="tree")


@pytest.fixture
def rng():
    return random.Random(0)


def pid(slot: int, partition: int = 0) -> PageId:
    return PageId(partition, slot)


def drive_backup_interleaved(db, op_iter, steps=4, ops_per_tick=2,
                             installs_per_tick=2, pages_per_tick=4, seed=0):
    """Run a backup to completion with the op stream interleaved."""
    rng = random.Random(seed)
    db.start_backup(BackupConfig(steps=steps))
    while db.backup_in_progress():
        db.backup_step(pages_per_tick)
        for _ in range(ops_per_tick):
            op = next(op_iter, None)
            if op is not None:
                db.execute(op)
        db.install_some(installs_per_tick, rng)
    return db.latest_backup()
