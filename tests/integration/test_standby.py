"""Integration: the log-shipping standby replica.

The standby applies the primary's log with the same redo machinery; its
seed comes from an online backup — which is exactly where the paper's
protocol matters: a standby seeded from a NAIVE fuzzy dump can be
silently wrong under logical operations, while the engine's backup
seeds correctly for every interleaving.
"""

import random

import pytest

from repro.core.standby import StandbyReplica
from repro.db import Database
from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.tree import MovRec, RmvRec
from repro.workloads import mixed_logical_workload


def pid(slot):
    return PageId(0, slot)


def primary_with_backup(seed=0, pages=48, ops=80):
    db = Database(pages_per_partition=[pages], policy="general")
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=100_000)
    for _ in range(ops // 2):
        db.execute(next(source))
        if rng.random() < 0.3:
            db.install_some(1, rng)
    db.start_backup(steps=4)
    while db.backup_in_progress():
        db.backup_step(8)
        db.execute(next(source))
        db.install_some(1, rng)
    for _ in range(ops // 2):
        db.execute(next(source))
        if rng.random() < 0.3:
            db.install_some(1, rng)
    return db, db.latest_backup(), rng, source


class TestSeedAndCatchUp:
    def test_seeded_standby_matches_primary(self):
        db, backup, _, _ = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        assert standby.lag() == 0
        assert standby.is_consistent_with(db.oracle_state())

    def test_standby_tracks_ongoing_updates(self):
        db, backup, rng, source = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        for _ in range(30):
            db.execute(next(source))
        assert standby.lag() == 30
        processed = standby.catch_up()
        assert processed == 30
        assert standby.is_consistent_with(db.oracle_state())

    def test_incremental_catch_up_in_chunks(self):
        db, backup, _, source = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        for _ in range(20):
            db.execute(next(source))
        end = db.log.end_lsn
        standby.catch_up(up_to=end - 10)
        assert standby.lag() == 10
        standby.catch_up()
        assert standby.lag() == 0
        assert standby.is_consistent_with(db.oracle_state())

    def test_reapplying_overlap_is_idempotent(self):
        db, backup, _, _ = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        before = {p: standby.read_page(p) for p in db.layout.all_pages()}
        # Force a re-apply of an already-applied range.
        standby.applied_through -= 15
        standby.catch_up()
        after = {p: standby.read_page(p) for p in db.layout.all_pages()}
        assert before == after


class TestSeedCorrectnessNeedsTheProtocol:
    def test_naive_dump_seed_is_wrong_under_logical_ops(self):
        """Seeding a standby from the Figure 1 naive dump carries the
        corruption into the replica."""
        db = Database(pages_per_partition=[32], policy="general")
        old, new = pid(20), pid(2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(8))))
        db.checkpoint()
        db.naive.start_backup()
        db.naive.copy_some(5)
        db.execute(MovRec(old, 3, new))
        db.execute(RmvRec(old, 3))
        db.checkpoint()
        naive_backup = db.naive.run_to_completion()
        standby = StandbyReplica.seed_from_backup(
            naive_backup, db.log, db.layout
        )
        assert not standby.is_consistent_with(db.oracle_state())

    def test_engine_seed_is_right_for_the_same_interleaving(self):
        db = Database(pages_per_partition=[32], policy="general")
        old, new = pid(20), pid(2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(8))))
        db.checkpoint()
        db.start_backup(steps=4)
        db.backup_step(5)
        db.execute(MovRec(old, 3, new))
        db.execute(RmvRec(old, 3))
        db.checkpoint()
        backup = db.run_backup()
        standby = StandbyReplica.seed_from_backup(backup, db.log, db.layout)
        assert standby.is_consistent_with(db.oracle_state())


class TestFailover:
    def test_promote_matches_primary_state(self):
        db, backup, _, source = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        for _ in range(10):
            db.execute(next(source))
        promoted = standby.promote()
        expected = db.oracle_state()
        for page, value in expected.items():
            assert promoted.stable.read_page(page).value == value

    def test_promoted_primary_fully_functional(self):
        db, backup, rng, source = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(
            backup, db.log, db.layout
        )
        promoted = standby.promote()
        # Serve new work, back up, lose media, recover — the full cycle.
        new_source = mixed_logical_workload(
            promoted.layout, seed=99, count=100_000
        )
        for _ in range(30):
            promoted.execute(next(new_source))
            promoted.install_some(1, rng)
        promoted.start_backup(steps=4)
        promoted.run_backup(pages_per_tick=16)
        promoted.media_failure()
        outcome = promoted.media_recover()
        assert outcome.ok, outcome.diffs[:3]

    def test_promoted_crash_recovery_sees_new_epoch(self):
        """Inherited pages got LSN-epoch zero: new work redoes properly."""
        db, backup, _, _ = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(backup, db.log, db.layout)
        promoted = standby.promote()
        promoted.execute(PhysicalWrite(pid(0), "new-epoch"))
        promoted.crash()  # nothing flushed: pure redo from the new log
        outcome = promoted.recover()
        assert outcome.ok
        assert promoted.stable.read_page(pid(0)).value == "new-epoch"

    def test_standby_unusable_after_promotion(self):
        db, backup, _, _ = primary_with_backup()
        standby = StandbyReplica.seed_from_backup(backup, db.log, db.layout)
        standby.promote()
        with pytest.raises(ReproError):
            standby.catch_up()
