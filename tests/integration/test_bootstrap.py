"""Integration: bootstrapping a replacement node from an archive.

The full operational loop across machines: primary backs up online,
archives to a file, ships the log; a brand-new node loads the archive,
rolls forward, and serves — state identical to the primary's.
"""

import random

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.storage.archive import load_backup, save_backup
from repro.workloads import mixed_logical_workload


def build_primary(seed=3, pages=48):
    db = Database(pages_per_partition=[pages], policy="general")
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=100_000)
    for _ in range(40):
        db.execute(next(source))
        if rng.random() < 0.3:
            db.install_some(1, rng)
    db.start_backup(steps=4)
    while db.backup_in_progress():
        db.backup_step(8)
        db.execute(next(source))
        db.install_some(1, rng)
    for _ in range(20):
        db.execute(next(source))
    return db


class TestBootstrap:
    def test_new_node_matches_primary(self, tmp_path):
        primary = build_primary()
        path = str(tmp_path / "shipped.json")
        save_backup(primary.latest_backup(), path)

        replacement = Database.bootstrap_from_backup(
            load_backup(path),
            primary.log,
            pages_per_partition=[48],
        )
        for page, value in primary.oracle_state().items():
            assert replacement.stable.read_page(page).value == value

    def test_new_node_is_fully_functional(self, tmp_path):
        primary = build_primary()
        path = str(tmp_path / "shipped.json")
        save_backup(primary.latest_backup(), path)
        replacement = Database.bootstrap_from_backup(
            load_backup(path), primary.log, pages_per_partition=[48]
        )
        rng = random.Random(9)
        for op in mixed_logical_workload(
            replacement.layout, seed=9, count=50
        ):
            replacement.execute(op)
            if rng.random() < 0.3:
                replacement.install_some(1, rng)
        replacement.crash()
        assert replacement.recover().ok
        replacement.start_backup(steps=4)
        replacement.run_backup(pages_per_tick=16)
        replacement.media_failure()
        assert replacement.media_recover().ok

    def test_bootstrap_with_tree_policy(self, tmp_path):
        primary = build_primary()
        path = str(tmp_path / "shipped.json")
        save_backup(primary.latest_backup(), path)
        replacement = Database.bootstrap_from_backup(
            load_backup(path), primary.log,
            pages_per_partition=[48], policy="tree",
        )
        assert replacement.cm.policy.name == "tree"
