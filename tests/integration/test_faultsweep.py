"""The fault sweep must report 100% recovered (the acceptance pin).

``python -m repro faultsweep --seed 0`` is the CLI form of
:func:`repro.harness.faultsweep.run_faultsweep`; this test pins the
seed-0 matrix at full recovery so a regression in any I/O-boundary
handling (retry, torn-span resume, doublewrite rollback, crash
recovery) fails the build.
"""

import pytest

from repro.harness.faultsweep import run_faultsweep


class TestFaultsweep:
    def test_seed0_quick_sweep_fully_recovers(self):
        report = run_faultsweep(seed=0, quick=True)
        assert report.total > 0
        assert report.recovered == report.total
        assert report.all_recovered
        names = {r.name for r in report.results}
        # The matrix covers every fault class for both copy engines.
        assert {
            "transient-serial", "transient-batched",
            "torn-install-serial", "torn-install-batched",
            "crash-sweep-serial", "crash-sweep-batched",
            "seeded-mix-serial", "seeded-mix-batched",
            "torn-backup-span",
        } <= names

    def test_faults_actually_fired(self):
        report = run_faultsweep(seed=0, quick=True)
        by_name = {r.name: r for r in report.results}
        assert by_name["transient-serial"].io_retries > 0
        assert by_name["crash-sweep-serial"].faults_injected > 0
        assert by_name["seeded-mix-serial"].faults_injected > 0
        assert "resumed" in by_name["torn-backup-span"].detail

    @pytest.mark.slow
    def test_seed0_exhaustive_sweep_fully_recovers(self):
        report = run_faultsweep(seed=0, stride=1)
        assert report.all_recovered

    def test_file_backend_smoke_fully_recovers(self, tmp_path):
        """The pinned file-backend smoke matrix: every fault class over
        the batched and parallel engines on real files, 100% recovered."""
        report = run_faultsweep(seed=0, backend="file",
                                data_dir=str(tmp_path))
        assert report.total > 0
        assert report.all_recovered
        names = {r.name for r in report.results}
        assert {
            "transient-batched-file", "torn-install-batched-file",
            "crash-sweep-batched-file", "seeded-mix-batched-file",
            "bitrot-stable-batched-file",
            "transient-parallel-file", "crash-sweep-parallel-file",
            "torn-backup-span-file",
        } <= names

    def test_cli_exit_code_and_output(self, capsys):
        from repro.cli import main

        code = main(["faultsweep", "--seed", "0", "--quick",
                     "--stride", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faultsweep PASS" in out
        assert "crash-sweep-batched" in out

    def test_deterministic_in_seed(self):
        a = run_faultsweep(seed=3, quick=True)
        b = run_faultsweep(seed=3, quick=True)
        assert [(r.name, r.total, r.recovered, r.faults_injected)
                for r in a.results] == [
            (r.name, r.total, r.recovered, r.faults_injected)
            for r in b.results
        ]
